#!/usr/bin/env python3
"""Diff two run reports and gate on work-metric regressions.

Usage:
  report_diff.py <old.json> <new.json> [--max-regress=1.25]
                 [--min-base=100] [--verbose]

Both files are --metrics-json run reports (schema version MIN_SCHEMA..
MAX_SCHEMA from tools/report_schema.py, see src/harness/run_report.h).
Runs are matched by name; within a v2+ run, operators are matched by
stable operator id. Versions may differ between the two files: later
versions only add sections (v3 per-machine barrier_wait_nanos and a
top-level "memory" map, v4 state digests and the "audit" section, v8 the
per-context "resources" attribution map — measured CPU/IO/allocation
totals, machine-dependent by nature), none of which are gated.

The v7 "load" section (itg_loadgen capacity curves) is diffed
structurally: a candidate whose SLO verdict drops from "pass" to "fail",
whose knee disappears, or whose knee rate falls below baseline/R is a
regression. The latency percentiles themselves are measured wall-clock
numbers — noisy across machines — so they are reported (--verbose, per
matching offered rate) but never gated.

The v9 "alerts" section gates on end state only: a candidate report that
still contains a *critical* rule in state "firing" at drain time failed
to resolve its own incident and is a structural regression (warn/info
rules and resolved critical fires are reported, never gated).

Only *deterministic work metrics* are gated — counters that are
bit-identical across thread counts and machines for the same program,
graph and mutation stream:

  per run:      supersteps, windows_loaded, edges_scanned,
                emissions_applied, recomputed_vertices,
                delta_walks.enumerated, delta_walks.pruned
  per operator: in_pos, in_neg, out_pos, out_neg, pruned, windows,
                edges, evals
  per superstep row: active_vertices, frontier, emissions, windows, edges

Measured times (seconds, wall_nanos, cpu_nanos, busy_nanos) and
thread-dependent metrics (steals, parallel_tasks, read_bytes) are
*reported* in --verbose mode but never gated: they vary run to run on a
healthy machine.

A gated metric regresses when new > old * max_regress AND old >= min_base
(the noise floor suppresses ratios over tiny counts; a metric that grows
from a base below the floor only trips the gate once it also exceeds the
floor itself). New runs/operators missing from the old report are
reported but not gated (they have no baseline). Exits 1 when any gated
metric regressed, 2 on malformed input, 0 otherwise.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from report_schema import MAX_SCHEMA, MIN_SCHEMA, SCHEMA_RANGE  # noqa: E402

RUN_GATED = [
    "supersteps", "windows_loaded", "edges_scanned", "emissions_applied",
    "recomputed_vertices",
]
DELTA_WALK_GATED = ["enumerated", "pruned"]
OPERATOR_GATED = [
    "in_pos", "in_neg", "out_pos", "out_neg", "pruned", "windows", "edges",
    "evals",
]
SUPERSTEP_GATED = ["active_vertices", "frontier", "emissions", "windows",
                   "edges"]
RUN_INFORMATIONAL = ["seconds", "read_bytes", "write_bytes", "busy_nanos"]


def fail(msg):
    print(f"report_diff: {msg}", file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict) or \
            doc.get("schema_version") not in SCHEMA_RANGE:
        fail(f"{path}: not a run report "
             f"(schema_version {MIN_SCHEMA}..{MAX_SCHEMA})")
    if not isinstance(doc.get("runs"), list):
        fail(f"{path}: runs is not a list")
    return doc


def runs_by_name(doc, path):
    out = {}
    for run in doc["runs"]:
        name = run.get("name")
        if not isinstance(name, str):
            fail(f"{path}: run without a name")
        if name in out:
            fail(f"{path}: duplicate run name {name!r}")
        out[name] = run
    return out


class Diff:
    def __init__(self, max_regress, min_base, verbose):
        self.max_regress = max_regress
        self.min_base = min_base
        self.verbose = verbose
        self.regressions = []
        self.improvements = 0
        self.compared = 0

    def check(self, where, metric, old, new):
        """Gates one deterministic metric; returns True if it regressed."""
        self.compared += 1
        if new < old:
            self.improvements += 1
        # Noise floor: tiny baselines produce meaningless ratios. The
        # metric must exceed the floor in BOTH directions to trip.
        if old < self.min_base and new < self.min_base:
            return False
        if new > old * self.max_regress and new > old:
            ratio = new / old if old else float("inf")
            self.regressions.append((where, metric, old, new, ratio))
            return True
        return False

    def info(self, where, metric, old, new):
        if self.verbose and old != new:
            ratio = new / old if old else float("inf")
            print(f"  (info) {where} {metric}: {old} -> {new} "
                  f"({ratio:.2f}x, not gated)")

    def structural(self, where, msg):
        """A non-numeric regression (lost capability, flipped verdict)."""
        self.regressions.append((where, msg, None, None, None))


def diff_operators(diff, run_name, old_run, new_run):
    old_ops = {op["id"]: op for op in old_run.get("operators", [])}
    new_ops = {op["id"]: op for op in new_run.get("operators", [])}
    for op_id in sorted(new_ops):
        new_op = new_ops[op_id]
        label = (f"{run_name} op#{op_id} "
                 f"{new_op.get('op', '?')}[{new_op.get('detail', '')}]")
        old_op = old_ops.get(op_id)
        if old_op is None:
            print(f"  (info) {label}: new operator, no baseline")
            continue
        for metric in OPERATOR_GATED:
            diff.check(label, metric, old_op.get(metric, 0),
                       new_op.get(metric, 0))
        diff.info(label, "wall_nanos", old_op.get("wall_nanos", 0),
                  new_op.get("wall_nanos", 0))
    for op_id in sorted(set(old_ops) - set(new_ops)):
        print(f"  (info) {run_name} op#{op_id}: dropped from new report")


def diff_supersteps(diff, run_name, old_run, new_run):
    old_ss = old_run.get("supersteps_profile", [])
    new_ss = new_run.get("supersteps_profile", [])
    for i, new_row in enumerate(new_ss):
        if i >= len(old_ss):
            print(f"  (info) {run_name} superstep[{i}]: no baseline row")
            continue
        label = f"{run_name} superstep[{i}]"
        for metric in SUPERSTEP_GATED:
            diff.check(label, metric, old_ss[i].get(metric, 0),
                       new_row.get(metric, 0))


def diff_runs(diff, name, old_run, new_run):
    for metric in RUN_GATED:
        diff.check(name, metric, old_run.get(metric, 0),
                   new_run.get(metric, 0))
    old_dw = old_run.get("delta_walks", {})
    new_dw = new_run.get("delta_walks", {})
    for metric in DELTA_WALK_GATED:
        diff.check(name, f"delta_walks.{metric}", old_dw.get(metric, 0),
                   new_dw.get(metric, 0))
    for metric in RUN_INFORMATIONAL:
        diff.info(name, metric, old_run.get(metric, 0),
                  new_run.get(metric, 0))
    diff_operators(diff, name, old_run, new_run)
    diff_supersteps(diff, name, old_run, new_run)


def diff_load(diff, old_doc, new_doc, max_regress):
    """Structural gate over the v7 load section (capacity curves)."""
    old_load = old_doc.get("load")
    new_load = new_doc.get("load")
    if new_load is None and old_load is None:
        return
    if old_load is None:
        print("  (info) load: new section, no baseline")
        return
    if new_load is None:
        diff.structural("load", "section dropped from new report")
        return

    old_verdict = old_load.get("slo_verdict")
    new_verdict = new_load.get("slo_verdict")
    if old_verdict == "pass" and new_verdict != "pass":
        diff.structural("load", f"slo_verdict pass -> {new_verdict!r}")
    old_knee = old_load.get("knee", {})
    new_knee = new_load.get("knee", {})
    if old_knee.get("found") and not new_knee.get("found"):
        diff.structural("load", "knee found in baseline, lost in candidate")
    elif old_knee.get("found") and new_knee.get("found"):
        old_rate = old_knee.get("offered_rate", 0.0)
        new_rate = new_knee.get("offered_rate", 0.0)
        # Capacity shrinking by more than the gate ratio is a regression;
        # the knee moving UP is an improvement, never gated.
        if old_rate > 0 and new_rate < old_rate / max_regress:
            diff.structural(
                "load", f"knee rate {old_rate:g}/s -> {new_rate:g}/s "
                        f"(below baseline/{max_regress:g})")
        diff.info("load", "knee.offered_rate", old_rate, new_rate)
        diff.info("load", "knee.p99", old_knee.get("p99", 0),
                  new_knee.get("p99", 0))

    old_points = {p["offered_rate"]: p for p in old_load.get("points", [])}
    for p in new_load.get("points", []):
        base = old_points.get(p["offered_rate"])
        label = f"load rate {p['offered_rate']:g}/s"
        if base is None:
            if diff.verbose:
                print(f"  (info) {label}: no baseline point")
            continue
        for metric in ("p50", "p99", "p999", "achieved_rate",
                       "queue_depth_max", "backpressure_stalls"):
            diff.info(label, metric, base.get(metric, 0), p.get(metric, 0))
        if base.get("slo_ok") and not p.get("slo_ok"):
            print(f"  (info) {label}: slo_ok true -> false "
                  f"(point-level, verdict gates)")


def diff_alerts(diff, new_doc):
    """Structural gate over the v9 alerts section (candidate only: the
    baseline's alert history is irrelevant, what matters is whether THIS
    run ended with an unresolved critical incident)."""
    alerts = new_doc.get("alerts")
    if alerts is None:
        return
    for rule in alerts.get("rules", []):
        name = rule.get("name", "?")
        severity = rule.get("severity")
        state = rule.get("state")
        if severity == "critical" and state == "firing":
            diff.structural(
                "alerts", f"critical alert {name!r} still firing at drain "
                          f"(fires={rule.get('fires', 0)}, "
                          f"last_value={rule.get('last_value', 0)})")
        elif rule.get("fires", 0) or state not in ("inactive", None):
            print(f"  (info) alert {name!r} [{severity}] ended {state!r}, "
                  f"fires={rule.get('fires', 0)}, "
                  f"flaps={rule.get('flaps', 0)}")


def main():
    parser = argparse.ArgumentParser(
        description="Diff run reports; exit 1 on work-metric regressions.")
    parser.add_argument("old", help="baseline report JSON")
    parser.add_argument("new", help="candidate report JSON")
    parser.add_argument("--max-regress", type=float, default=1.25,
                        help="gate ratio: fail when new > old * R "
                             "(default 1.25)")
    parser.add_argument("--min-base", type=int, default=100,
                        help="noise floor: ignore metrics where both sides "
                             "are below this count (default 100)")
    parser.add_argument("--verbose", action="store_true",
                        help="also print non-gated (time/IO) deltas")
    args = parser.parse_args()
    if args.max_regress < 1.0:
        fail("--max-regress must be >= 1.0")

    old_doc = load(args.old)
    new_doc = load(args.new)
    old_runs = runs_by_name(old_doc, args.old)
    new_runs = runs_by_name(new_doc, args.new)

    print(f"report_diff: {args.old} ({len(old_runs)} runs) vs "
          f"{args.new} ({len(new_runs)} runs), "
          f"gate {args.max_regress:g}x, floor {args.min_base}")

    diff = Diff(args.max_regress, args.min_base, args.verbose)
    for name in new_runs:
        if name not in old_runs:
            print(f"  (info) run {name!r}: new run, no baseline")
            continue
        diff_runs(diff, name, old_runs[name], new_runs[name])
    for name in old_runs:
        if name not in new_runs:
            print(f"  (info) run {name!r}: dropped from new report")
    diff_load(diff, old_doc, new_doc, args.max_regress)
    diff_alerts(diff, new_doc)

    print(f"  {diff.compared} gated metrics compared, "
          f"{diff.improvements} improved, "
          f"{len(diff.regressions)} regressed")
    if diff.regressions:
        print()
        for where, metric, old, new, ratio in diff.regressions:
            if ratio is None:
                print(f"  REGRESSION {where}: {metric}")
            else:
                print(f"  REGRESSION {where} {metric}: "
                      f"{old} -> {new} ({ratio:.2f}x > "
                      f"{args.max_regress:g}x gate)")
        sys.exit(1)
    print("  OK: no gated metric regressed")


if __name__ == "__main__":
    main()
