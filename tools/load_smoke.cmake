# ctest driver for the serving load-harness smoke test (see top-level
# CMakeLists.txt): spawns example_itg_serve with the /timeseriesz sampler
# enabled and drives it with example_itg_loadgen --sweep — concurrent
# ingest + subscriber connections on an open-loop Poisson schedule, the
# coordinated-omission-safe intended-send -> notify latency recorder, and
# knee detection against a (deliberately generous) p99 SLO. The two
# processes run as one execute_process pipeline: the loadgen polls the
# daemon's portfile, runs the sweep, sends the shutdown op, and both must
# exit 0 (the loadgen exits 3 on an SLO-verdict failure).
#
# Afterwards the loadgen's run report must pass full
# trace_summary.py validation (the "load" section: a nonzero,
# strictly-rate-ordered capacity curve with a knee consistent with the
# verdict, plus the spliced server time-series ring), the daemon's own
# report must pass too (its per-query percentile stamps are
# recomputed from the buckets bit-for-bit), and report_diff.py must
# accept the curve against the committed bench/BENCH_serve_baseline.json
# (verdict or knee regressions gate).
#
# Inputs: -DITG_SERVE=<binary> -DITG_LOADGEN=<binary>
#         -DPython3_EXECUTABLE=<python3>
#         -DTRACE_SUMMARY=<trace_summary.py>
#         -DREPORT_DIFF=<report_diff.py> -DBASELINE=<baseline json>
#         -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# The daemon publishes its telemetry port through the env portfile; the
# loadgen reads it back via --telemetry-portfile to scrape /timeseriesz.
set(ENV{ITG_TELEMETRY_PORTFILE} ${WORK_DIR}/telemetry.port)
set(ENV{ITG_THREADS} 1)

# The daemon's stdout is redirected to a log file (not the pipe): it
# prints its drain summary after the loadgen has exited, and a closed
# pipe would SIGPIPE it before the run report gets written.
execute_process(
  COMMAND sh -c "exec ${ITG_SERVE} --graph rmat:12 --port 0 \
          --portfile ${WORK_DIR}/serve.port \
          --telemetry-port 0 --timeseries-ms 25 --no-verify \
          --scratch ${WORK_DIR}/scratch \
          --metrics-json ${WORK_DIR}/serve_report.json \
          > ${WORK_DIR}/serve.log 2>&1"
  COMMAND ${ITG_LOADGEN} --portfile ${WORK_DIR}/serve.port
          --graph rmat:12 --program wcc
          --connections 2 --subscribers 2 --ops-per-batch 4
          --sweep --min-rate 30 --max-rate 90 --steps 3 --step-ms 1200
          --slo-ms 30000 --seed 11
          --telemetry-portfile ${WORK_DIR}/telemetry.port
          --metrics-json ${WORK_DIR}/load_report.json
          --shutdown
  RESULTS_VARIABLE rcs
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
message(STATUS "serve|loadgen pipeline output:\n${out}\n${err}")
foreach(rc ${rcs})
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "serve/loadgen pipeline rcs: ${rcs}\n${err}")
  endif()
endforeach()

# The report must actually carry the load section and a passing verdict
# (trace_summary only validates the section when present).
file(READ ${WORK_DIR}/load_report.json load_report)
string(FIND "${load_report}" "\"load\":{" load_at)
if(load_at EQUAL -1)
  message(FATAL_ERROR "loadgen report has no load section")
endif()
string(FIND "${load_report}" "\"slo_verdict\":\"pass\"" verdict_at)
if(verdict_at EQUAL -1)
  message(FATAL_ERROR "loadgen report verdict is not pass under a 30s SLO")
endif()
string(FIND "${load_report}" "\"server_timeseries\":" series_at)
if(series_at EQUAL -1)
  message(FATAL_ERROR
          "loadgen report did not splice the /timeseriesz server ring")
endif()

# Full schema validation of both reports: the loadgen's load section
# and the daemon's serving section (percentiles recomputed from the
# buckets must agree bit-for-bit).
foreach(report load_report.json serve_report.json)
  execute_process(
    COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
            --report ${WORK_DIR}/${report}
    RESULT_VARIABLE summary_rc
    OUTPUT_VARIABLE summary_out
    ERROR_VARIABLE summary_err)
  message(STATUS "trace_summary ${report}:\n${summary_out}")
  if(NOT summary_rc EQUAL 0)
    message(FATAL_ERROR
            "trace_summary.py --report ${report} failed "
            "(${summary_rc}):\n${summary_err}")
  endif()
endforeach()

# Capacity-curve regression gate against the committed baseline.
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${REPORT_DIFF}
          ${BASELINE} ${WORK_DIR}/load_report.json --verbose
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
message(STATUS "report_diff output:\n${diff_out}")
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR "report_diff.py failed (${diff_rc}):\n${diff_err}")
endif()
