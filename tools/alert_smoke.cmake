# ctest driver for the alert-engine smoke test (see top-level
# CMakeLists.txt): proves the full alerting loop end to end against a
# live daemon. example_itg_serve starts with a deliberately absurd
# 0.1 ms notify SLO and a 250 ms evaluation period, so the built-in
# serve_notify_p99_burn rule (critical, fast window = 2 periods) must
# fire within two evaluation ticks of real load arriving; firing must
# write one incident bundle with all five artifacts; and once the load
# stops the rule must resolve on its own. The daemon's schema-v9 run
# report then carries the whole story — and report_diff.py must accept
# it while rejecting a doctored copy whose critical rule is still
# firing at drain.
#
#   1. itg_serve --slo-ms 0.1 --alert-period-ms 250 --incident-dir ...
#      (no rule file: exercises the built-in serving defaults).
#   2. loadgen burst (no --shutdown) || alertz_check --wait-firing:
#      the burn rule fires while the burst is still running, the
#      ALERTS series appears on /metrics, /healthz goes 503 "alerting".
#   3. alertz_check --check-bundle-dir --wait-resolved: the bundle is
#      complete (flightrecorder/metrics/statusz/timeseries/profile +
#      manifest) and the rule leaves firing after the load subsides.
#   4. A bare {"op":"shutdown"} drains the daemon; its report must show
#      the burn rule fired >= 1 with a bundle written, pass
#      trace_summary.py schema validation and a report_diff.py
#      self-diff, while an injected still-firing critical alert makes
#      report_diff.py fail.
#
# Inputs: -DITG_SERVE=<binary> -DITG_LOADGEN=<binary>
#         -DPython3_EXECUTABLE=<python3>
#         -DALERTZ_CHECK=<alertz_check.py>
#         -DTRACE_SUMMARY=<trace_summary.py>
#         -DREPORT_DIFF=<report_diff.py>
#         -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(ENV{ITG_TELEMETRY_PORTFILE} ${WORK_DIR}/telemetry.port)
set(ENV{ITG_THREADS} 1)

# 1. The daemon runs in the background across all phases; stdout goes to
# a log (it prints its drain summary long after the clients exit).
execute_process(
  COMMAND sh -c "${ITG_SERVE} --graph rmat:10 --port 0 \
          --portfile ${WORK_DIR}/serve.port \
          --telemetry-port 0 --timeseries-ms 50 --no-verify \
          --scratch ${WORK_DIR}/scratch \
          --slo-ms 0.1 --alert-period-ms 250 \
          --incident-dir ${WORK_DIR}/incidents \
          --metrics-json ${WORK_DIR}/serve_report.json \
          > ${WORK_DIR}/serve.log 2>&1 & echo $! > ${WORK_DIR}/serve.pid"
  RESULT_VARIABLE launch_rc)
if(NOT launch_rc EQUAL 0)
  message(FATAL_ERROR "could not launch itg_serve (${launch_rc})")
endif()

# 2. Load burst + firing check run concurrently: the burn rule must
# reach firing while deltas are still streaming (its fast window is two
# evaluation periods, so anything beyond ~1 s of sustained load would be
# a regression), and the firing state must surface on /metrics (ALERTS
# series) and /healthz (503, reason names the rule). The burst runs in
# the background with its own log (the checker exits as soon as it sees
# firing — a pipe would SIGPIPE the still-running loadgen).
execute_process(
  COMMAND sh -c "( ${ITG_LOADGEN} --portfile ${WORK_DIR}/serve.port \
          --graph rmat:10 --program wcc \
          --connections 2 --subscribers 2 --ops-per-batch 4 \
          --rate 60 --duration-ms 6000 --slo-ms 30000 --seed 7 \
          > ${WORK_DIR}/load.log 2>&1; \
          echo $? > ${WORK_DIR}/load.rc ) &"
  RESULT_VARIABLE burst_launch_rc)
if(NOT burst_launch_rc EQUAL 0)
  message(FATAL_ERROR "could not launch the load burst")
endif()
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${ALERTZ_CHECK}
          --port-file ${WORK_DIR}/telemetry.port --timeout 30
          --expect-rule serve_ingest_queue_saturated
          --expect-rule serve_view_lag_stale
          --expect-rule serve_backpressure_stalls
          --expect-rule serve_notify_p99_burn
          --wait-firing serve_notify_p99_burn
  RESULT_VARIABLE firing_rc
  OUTPUT_VARIABLE firing_out
  ERROR_VARIABLE firing_err)
message(STATUS "firing check output:\n${firing_out}\n${firing_err}")
if(NOT firing_rc EQUAL 0)
  message(FATAL_ERROR "alertz_check firing failed "
          "(${firing_rc}):\n${firing_err}")
endif()
# Let the burst finish cleanly before checking resolution.
execute_process(
  COMMAND sh -c "for i in $(seq 1 300); do \
            test -f ${WORK_DIR}/load.rc && exit 0; sleep 0.1; \
          done; exit 1"
  RESULT_VARIABLE load_wait_rc)
if(NOT load_wait_rc EQUAL 0)
  message(FATAL_ERROR "load burst never finished")
endif()
file(READ ${WORK_DIR}/load.rc load_rc)
string(STRIP "${load_rc}" load_rc)
if(NOT load_rc EQUAL 0)
  file(READ ${WORK_DIR}/load.log load_log)
  message(FATAL_ERROR "load burst failed (${load_rc}):\n${load_log}")
endif()

# 3. After the burst: the incident bundle must be complete, and with no
# load left in the windows the rule must resolve by itself.
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${ALERTZ_CHECK}
          --port-file ${WORK_DIR}/telemetry.port --timeout 30
          --check-bundle-dir ${WORK_DIR}/incidents
          --wait-resolved serve_notify_p99_burn
  RESULT_VARIABLE resolve_rc
  OUTPUT_VARIABLE resolve_out
  ERROR_VARIABLE resolve_err)
message(STATUS "resolve check output:\n${resolve_out}\n${resolve_err}")
if(NOT resolve_rc EQUAL 0)
  message(FATAL_ERROR "alertz_check resolve failed "
          "(${resolve_rc}):\n${resolve_err}")
endif()

# 4. Graceful shutdown over the wire (a bare NDJSON shutdown op — no
# extra load, so the resolved rule stays quiet through drain).
execute_process(
  COMMAND ${Python3_EXECUTABLE} -c
          "import json, socket, sys; port = int(open(sys.argv[1]).read().strip()); s = socket.create_connection(('127.0.0.1', port), timeout=10); s.sendall((json.dumps({'op': 'shutdown'}) + '\\n').encode()); print(s.makefile().readline().strip())"
          ${WORK_DIR}/serve.port
  RESULT_VARIABLE shutdown_rc
  OUTPUT_VARIABLE shutdown_out
  ERROR_VARIABLE shutdown_err)
message(STATUS "shutdown: ${shutdown_out}")
if(NOT shutdown_rc EQUAL 0)
  message(FATAL_ERROR "shutdown op failed (${shutdown_rc}):\n${shutdown_err}")
endif()
execute_process(
  COMMAND sh -c "pid=$(cat ${WORK_DIR}/serve.pid); \
          for i in $(seq 1 200); do \
            kill -0 $pid 2>/dev/null || exit 0; sleep 0.1; \
          done; echo 'itg_serve did not exit after shutdown'; exit 1"
  RESULT_VARIABLE exit_rc)
if(NOT exit_rc EQUAL 0)
  message(FATAL_ERROR "itg_serve did not drain after the shutdown op")
endif()

# The report's alerts section: evaluations happened, the burn rule fired
# at least once, a bundle was written, and the rule is NOT firing at
# drain (resolved naturally — exactly what report_diff gates on).
file(READ ${WORK_DIR}/serve_report.json serve_report)
string(FIND "${serve_report}" "\"alerts\":{\"enabled\":true" alerts_at)
if(alerts_at EQUAL -1)
  message(FATAL_ERROR "serve report has no alerts section")
endif()
string(REGEX MATCH
       "\"name\":\"serve_notify_p99_burn\",\"severity\":\"critical\",\"state\":\"(inactive|resolved)\",\"fires\":[1-9]"
       burn_row "${serve_report}")
if(burn_row STREQUAL "")
  message(FATAL_ERROR
          "serve report: burn rule did not fire and resolve:\n"
          "${serve_report}")
endif()
string(REGEX MATCH "\"bundles_written\":[1-9]" bundles "${serve_report}")
if(bundles STREQUAL "")
  message(FATAL_ERROR "serve report: no incident bundle recorded")
endif()

# Schema validation (v9 alerts section included) + self-diff gate.
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
          --report ${WORK_DIR}/serve_report.json
  RESULT_VARIABLE summary_rc
  OUTPUT_VARIABLE summary_out
  ERROR_VARIABLE summary_err)
message(STATUS "trace_summary serve_report.json:\n${summary_out}")
if(NOT summary_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_summary.py --report failed (${summary_rc}):\n${summary_err}")
endif()
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${REPORT_DIFF}
          ${WORK_DIR}/serve_report.json ${WORK_DIR}/serve_report.json
  RESULT_VARIABLE diff_rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "report_diff.py self-diff failed (${diff_rc}):\n"
          "${diff_out}\n${diff_err}")
endif()

# Negative gate: doctor the report so the critical rule is still firing
# at drain — report_diff.py must reject it as a structural regression.
execute_process(
  COMMAND ${Python3_EXECUTABLE} -c
          "import json, sys; doc = json.load(open(sys.argv[1])); row = [r for r in doc['alerts']['rules'] if r['name'] == 'serve_notify_p99_burn'][0]; row['state'] = 'firing'; json.dump(doc, open(sys.argv[2], 'w'))"
          ${WORK_DIR}/serve_report.json ${WORK_DIR}/bad_report.json
  RESULT_VARIABLE doctor_rc
  ERROR_VARIABLE doctor_err)
if(NOT doctor_rc EQUAL 0)
  message(FATAL_ERROR "could not doctor the report: ${doctor_err}")
endif()
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${REPORT_DIFF}
          ${WORK_DIR}/serve_report.json ${WORK_DIR}/bad_report.json
  RESULT_VARIABLE bad_rc
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(bad_rc EQUAL 0)
  message(FATAL_ERROR
          "report_diff.py accepted a critical alert still firing at "
          "drain:\n${bad_out}")
endif()
message(STATUS "report_diff correctly rejected the firing alert:\n${bad_out}")
