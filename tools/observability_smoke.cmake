# ctest driver for the observability smoke test (see top-level
# CMakeLists.txt): runs example_lnga_run with ITG_TRACE and
# --metrics-json set, then schema-validates both artifacts with
# tools/trace_summary.py.
#
# Inputs: -DLNGA_RUN=<binary> -DPython3_EXECUTABLE=<python3>
#         -DTRACE_SUMMARY=<trace_summary.py> -DWORK_DIR=<scratch dir>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})
file(WRITE ${WORK_DIR}/mutations.txt
     "+ 1 2\n+ 2 3\n+ 3 1\n- 1 2\ncommit\n+ 4 5\n+ 5 6\ncommit\n")

execute_process(
  COMMAND ${LNGA_RUN} --program pr --graph rmat:8 --supersteps 3
          --mutations ${WORK_DIR}/mutations.txt
          --metrics-json ${WORK_DIR}/report.json
  RESULT_VARIABLE run_rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_out
  # New process, fresh env: the trace covers exactly this run.
  COMMAND_ECHO STDOUT)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "example_lnga_run failed (${run_rc}):\n${run_out}")
endif()

# Second run with tracing enabled (ITG_TRACE is read at process start).
set(ENV{ITG_TRACE} ${WORK_DIR}/trace.json)
execute_process(
  COMMAND ${LNGA_RUN} --program pr --graph rmat:8 --supersteps 3
          --mutations ${WORK_DIR}/mutations.txt
  RESULT_VARIABLE trace_rc
  OUTPUT_VARIABLE trace_out
  ERROR_VARIABLE trace_out)
unset(ENV{ITG_TRACE})
if(NOT trace_rc EQUAL 0)
  message(FATAL_ERROR "traced run failed (${trace_rc}):\n${trace_out}")
endif()

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
          --trace ${WORK_DIR}/trace.json --report ${WORK_DIR}/report.json
  RESULT_VARIABLE summary_rc
  OUTPUT_VARIABLE summary_out
  ERROR_VARIABLE summary_err)
message(STATUS "trace_summary output:\n${summary_out}")
if(NOT summary_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_summary.py failed (${summary_rc}):\n${summary_err}")
endif()
