# ctest driver for the standing-query serving smoke test (see top-level
# CMakeLists.txt): tools/serve_client.py spawns example_itg_serve on an
# ephemeral port, registers two standing queries (PageRank + BFS) on
# separate subscriber connections, streams delta batches while mirroring
# both views client-side against the wire digests, asserts an
# over-budget third registration is rejected with budget_exceeded,
# replays the identical stream through example_lnga_run --mutations and
# requires bit-identical final digests, shuts the daemon down over the
# wire, validates the schema-v6 "serving" run-report section, and checks
# that SIGINT stops --watch cleanly (rc 0, report written).
#
# Inputs: -DITG_SERVE=<binary> -DLNGA_RUN=<binary>
#         -DPython3_EXECUTABLE=<python3>
#         -DSERVE_CLIENT=<serve_client.py> -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${SERVE_CLIENT}
          --serve-binary ${ITG_SERVE} --lnga-binary ${LNGA_RUN}
          --workdir ${WORK_DIR} --batches 6
  RESULT_VARIABLE client_rc
  OUTPUT_VARIABLE client_out
  ERROR_VARIABLE client_err)
message(STATUS "serve_client output:\n${client_out}")
if(NOT client_rc EQUAL 0)
  message(FATAL_ERROR
          "serve_client.py failed (${client_rc}):\n${client_err}")
endif()
