"""Log-linear histogram math shared by the Python tooling.

This is the Python mirror of the C++ `itg::loglin` helpers
(src/common/metrics_registry.h): values below 2^sub_bits land in exact
unit buckets, and every power-of-two octave above splits into 2^sub_bits
linear sub-buckets, bounding the relative bucket width at 2^-sub_bits.
The serving daemon's `Histogram` uses sub_bits=3; the load driver's
`LatencyRecorder` uses sub_bits=5.

Percentile semantics match `HistogramSnapshot::PercentileUpperBound` /
`LatencyRecorder::PercentileUpperBound` exactly — same rank rule (p/100
of the total, truncated, clamped to total-1), same exclusive
upper-bound answer, same 2^64-1 sentinel for the unbounded last bucket —
so a Python validator recomputing percentiles from a report's sparse
`buckets` array must agree bit-for-bit with the numbers the C++ side
wrote. tools/check_histogram_math.py enforces that agreement in ctest
against `example_itg_loadgen --histogram-selftest`.

Consumers: serve_client.py (latency mode), trace_summary.py (schema-v7
report validation), check_histogram_math.py.
"""

UINT64_MAX = (1 << 64) - 1

# The daemon-side Histogram (metrics_registry.h) and the load driver's
# LatencyRecorder (latency_recorder.h) respectively.
HISTOGRAM_SUB_BITS = 3
RECORDER_SUB_BITS = 5


def num_buckets(sub_bits):
    """Total bucket count: exact buckets + (64 - sub_bits) octaves."""
    return (1 << sub_bits) + (64 - sub_bits) * (1 << sub_bits)


def bucket_of(value, sub_bits):
    """Bucket index holding `value` (a non-negative int < 2^64)."""
    exact = 1 << sub_bits
    if value < exact:
        return value
    p = value.bit_length() - 1
    sub = (value >> (p - sub_bits)) & (exact - 1)
    return exact + (p - sub_bits) * exact + sub


def bucket_lower_bound(b, sub_bits):
    """Smallest value mapping to bucket `b` (inverse of bucket_of)."""
    exact = 1 << sub_bits
    if b <= 0:
        return 0
    if b < exact:
        return b
    i = b - exact
    p = i // exact + sub_bits
    sub = i % exact
    return (exact + sub) << (p - sub_bits)


def bucket_upper_bound(b, sub_bits):
    """Largest value mapping to bucket `b` (inclusive); 2^64-1 for the
    last bucket."""
    if b + 1 >= num_buckets(sub_bits):
        return UINT64_MAX
    return bucket_lower_bound(b + 1, sub_bits) - 1


def percentile_upper_bound(buckets, p, sub_bits):
    """Exclusive upper bound of the bucket holding the p-th percentile.

    `buckets` is the sparse [(lower_bound, count), ...] representation
    the C++ snapshots and run reports emit (ascending lower bounds).
    Returns 0 for empty input and 2^64-1 when the percentile falls in
    the unbounded last bucket — exactly like the C++ helpers.
    """
    total = sum(n for _, n in buckets)
    if total == 0:
        return 0
    p = min(max(p, 0.0), 100.0)
    rank = int(p / 100.0 * total)
    if rank >= total:
        rank = total - 1
    seen = 0
    for lower, n in buckets:
        seen += n
        if seen > rank:
            b = bucket_of(lower, sub_bits)
            if b + 1 >= num_buckets(sub_bits):
                return UINT64_MAX
            return bucket_lower_bound(b + 1, sub_bits)
    return UINT64_MAX
