#!/usr/bin/env python3
"""Parse, validate and summarize itg wall-profile output.

Usage:
  profile_summary.py <profile.folded> [--top N] [--require SUBSTR]...
  profile_summary.py --fetch http://127.0.0.1:PORT/profilez?seconds=3 ...
  ... | profile_summary.py -            # read from stdin

Input is the output of the sampling wall profiler
(src/common/wall_profiler.h), served at the telemetry endpoint
GET /profilez and written to $ITG_PROFILE at exit:

  # itg wall profile: ticks=291 stack_samples=288 empty_ticks=3 stacks=41
  # top spans (leaf frame, by samples):
  #  62.50%      180  engine.superstep
  ...
  serve;serve.apply;serve.view_run;engine.superstep 180
  ...

'#' lines are human-oriented commentary; every other non-empty line is
one collapsed stack in Brendan Gregg's folded format — semicolon-joined
frames (innermost last, thread name first) followed by a space and a
sample count — so `grep -v '^#' | flamegraph.pl` renders a flame graph
directly.

Validation (any violation exits 1):
  - every non-comment line is `frames... <count>` with count a positive
    integer and at least one frame;
  - when a header is present: stack_samples equals the folded counts'
    sum, stacks equals the folded line count, and ticks >= empty_ticks
    (one tick can yield several stacks — one per on-CPU thread — so
    ticks and stack_samples are deliberately distinct tallies);
  - each --require substring appears in at least one frame of at least
    one sampled stack (e.g. --require serve. asserts the serve pipeline
    was caught on-CPU).

Prints a ranked leaf-frame table (--top, default 10) recomputed from the
folded lines, independently of the '#' table the server rendered. Exits
2 on I/O errors, 1 on validation failure, 0 otherwise.
"""

import argparse
import sys
import urllib.request


def fail(msg):
    print(f"profile_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_header(lines):
    """Returns {ticks, stack_samples, empty_ticks, stacks} from the first
    '# itg wall profile:' line, or None when the input has no header
    (plain folded files are accepted)."""
    for line in lines:
        if not line.startswith("# itg wall profile:"):
            continue
        fields = {}
        for tok in line.split(":", 1)[1].split():
            if "=" not in tok:
                fail(f"malformed header token {tok!r}")
            key, _, value = tok.partition("=")
            if not value.isdigit():
                fail(f"malformed header value {tok!r}")
            fields[key] = int(value)
        for key in ("ticks", "stack_samples", "empty_ticks", "stacks"):
            if key not in fields:
                fail(f"header missing {key}=")
        return fields
    return None


def parse_folded(lines):
    """Returns [(frames tuple, count)] from the non-comment lines."""
    stacks = []
    for i, line in enumerate(lines, 1):
        line = line.rstrip("\n")
        if not line or line.startswith("#"):
            continue
        stack, sep, count = line.rpartition(" ")
        if not sep or not count.isdigit() or int(count) <= 0:
            fail(f"line {i}: not `frames... <count>`: {line!r}")
        frames = tuple(f for f in stack.split(";") if f)
        if not frames:
            fail(f"line {i}: empty stack: {line!r}")
        stacks.append((frames, int(count)))
    return stacks


def main():
    parser = argparse.ArgumentParser(
        description="Validate and summarize itg wall-profile output.")
    parser.add_argument("path", nargs="?",
                        help="folded profile file, or - for stdin")
    parser.add_argument("--fetch", metavar="URL",
                        help="scrape the profile from a live /profilez "
                             "endpoint instead of a file")
    parser.add_argument("--top", type=int, default=10,
                        help="leaf frames to rank (default 10)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="SUBSTR",
                        help="fail unless some sampled frame contains "
                             "SUBSTR (repeatable)")
    args = parser.parse_args()
    if bool(args.path) == bool(args.fetch):
        parser.error("need exactly one of <path> or --fetch")

    if args.fetch:
        try:
            with urllib.request.urlopen(args.fetch, timeout=60) as resp:
                text = resp.read().decode("utf-8", "replace")
        except OSError as e:
            print(f"profile_summary: cannot fetch {args.fetch}: {e}",
                  file=sys.stderr)
            sys.exit(2)
    elif args.path == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.path, "r", encoding="utf-8") as f:
                text = f.read()
        except OSError as e:
            print(f"profile_summary: cannot read {args.path}: {e}",
                  file=sys.stderr)
            sys.exit(2)

    lines = text.splitlines()
    header = parse_header(lines)
    stacks = parse_folded(lines)

    total = sum(count for _, count in stacks)
    if header is not None:
        if header["stack_samples"] != total:
            fail(f"header stack_samples={header['stack_samples']} but "
                 f"folded counts sum to {total}")
        if header["stacks"] != len(stacks):
            fail(f"header stacks={header['stacks']} but input has "
                 f"{len(stacks)} folded lines")
        if header["ticks"] < header["empty_ticks"]:
            fail(f"header ticks={header['ticks']} below "
                 f"empty_ticks={header['empty_ticks']}")

    for want in args.require:
        if not any(want in frame for frames, _ in stacks
                   for frame in frames):
            fail(f"no sampled frame contains {want!r} "
                 f"({len(stacks)} stacks, {total} samples)")

    # Leaf-frame ranking recomputed from the folded lines (the server's
    # own '#' table is ignored — this is the independent check).
    by_leaf = {}
    for frames, count in stacks:
        by_leaf[frames[-1]] = by_leaf.get(frames[-1], 0) + count

    src = args.fetch or args.path
    print(f"profile: {src}")
    if header is not None:
        print(f"  {header['ticks']} ticks, {total} stack samples, "
              f"{header['empty_ticks']} empty ticks, "
              f"{len(stacks)} distinct stacks")
    else:
        print(f"  {total} samples over {len(stacks)} distinct stacks "
              f"(no header)")
    print()
    print(f"  {'%':>7} {'samples':>9}  leaf frame")
    ranked = sorted(by_leaf.items(), key=lambda kv: (-kv[1], kv[0]))
    for leaf, count in ranked[:args.top]:
        pct = 100.0 * count / total if total else 0.0
        print(f"  {pct:>6.2f}% {count:>9}  {leaf}")
    print("  profile: OK")


if __name__ == "__main__":
    main()
