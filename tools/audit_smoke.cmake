# ctest driver for the drift-auditor smoke test (see top-level
# CMakeLists.txt): tools/audit_check.py runs example_lnga_run twice over
# the same WCC --watch workload with --audit every=3 — once clean (every
# audit must verify) and once with a deliberate mid-stream attribute
# corruption (--inject-corrupt-*), which the auditor must detect and
# bisect back to the exact offending delta batch. Both run reports are
# then schema-validated by trace_summary.py (v4 audit section).
#
# Inputs: -DLNGA_RUN=<binary> -DPython3_EXECUTABLE=<python3>
#         -DAUDIT_CHECK=<audit_check.py> -DTRACE_SUMMARY=<trace_summary.py>
#         -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${AUDIT_CHECK}
          --binary ${LNGA_RUN} --workdir ${WORK_DIR}
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "audit_check output:\n${check_out}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "audit_check.py failed (${check_rc}):\n${check_err}")
endif()

foreach(report clean.json drift.json)
  execute_process(
    COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
            --report ${WORK_DIR}/${report}
    RESULT_VARIABLE schema_rc
    OUTPUT_VARIABLE schema_out
    ERROR_VARIABLE schema_err)
  if(NOT schema_rc EQUAL 0)
    message(FATAL_ERROR
            "trace_summary.py rejected ${report} (${schema_rc}):\n"
            "${schema_out}\n${schema_err}")
  endif()
endforeach()
message(STATUS "audit_smoke: both reports pass schema v4 validation")
