#!/usr/bin/env python3
"""Cross-language histogram agreement check.

Runs `example_itg_loadgen --histogram-selftest`, which records
deterministic value sets into the C++ LatencyRecorder and prints every
resulting bucket and percentile as JSON. This script replays the same
values through tools/histogram_math.py and requires bit-for-bit
agreement on bucket indices, bucket lower bounds, and percentile upper
bounds — the guarantee that lets Python validators (trace_summary.py,
serve_client.py) recompute percentiles from a report's sparse buckets
and compare them against the numbers the C++ side wrote.

Usage: check_histogram_math.py --loadgen <example_itg_loadgen>
"""

import argparse
import json
import subprocess
import sys

import histogram_math as hm


def fail(msg):
    print(f"check_histogram_math: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loadgen", required=True)
    args = parser.parse_args()

    proc = subprocess.run([args.loadgen, "--histogram-selftest"],
                          capture_output=True, timeout=60)
    if proc.returncode != 0:
        fail(f"selftest exited rc {proc.returncode}: "
             f"{proc.stderr.decode('utf-8', errors='replace')}")
    doc = json.loads(proc.stdout.decode("utf-8"))
    sub_bits = doc["sub_bits"]
    cases = doc["cases"]
    if not cases:
        fail("selftest emitted no cases")

    for idx, case in enumerate(cases):
        values = case["values"]
        # Rebuild the sparse bucket array in Python.
        tallies = {}
        for v in values:
            b = hm.bucket_of(v, sub_bits)
            tallies[b] = tallies.get(b, 0) + 1
        want_buckets = [[hm.bucket_lower_bound(b, sub_bits), n]
                        for b, n in sorted(tallies.items())]
        got_buckets = [list(map(int, pair)) for pair in case["buckets"]]
        if got_buckets != want_buckets:
            fail(f"case {idx}: bucket mismatch\n  C++:    {got_buckets}\n"
                 f"  Python: {want_buckets}")

        sparse = [(lower, n) for lower, n in want_buckets]
        for p_str, got in case["percentiles"].items():
            p = float(p_str)
            want = hm.percentile_upper_bound(sparse, p, sub_bits)
            if int(got) != want:
                fail(f"case {idx}: p{p} mismatch: C++ {got}, Python {want}")

    print(f"check_histogram_math: OK ({len(cases)} cases, "
          f"sub_bits={sub_bits})")


if __name__ == "__main__":
    main()
