#!/usr/bin/env python3
"""End-to-end check of the drift auditor (the audit_smoke ctest).

Usage:
  audit_check.py --binary <example_lnga_run> --workdir <scratch>

Runs the pipeline driver twice over the same deterministic WCC workload
(rmat:8, symmetric, 6 synthetic --watch batches, auditing every 3):

  1. a clean run — every audit must verify, no divergence reported;
  2. a drift run — one attribute of vertex 7 is corrupted mid-stream at
     delta batch 4 via the engine's --inject-corrupt-* test hook. The
     auditor must detect the divergence at the next audit point (t=6),
     bisect the live digest history against a clean incremental replay
     back to batch 4 exactly, and name vertex 7 among the divergent set.

Both runs' reports must also pass the schema v4 validation in
trace_summary.py (invoked by the smoke driver separately); this script
checks the audit *semantics*. Exits non-zero on the first failed
expectation.
"""

import argparse
import json
import os
import subprocess
import sys


def fail(msg):
    print(f"audit_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def run_driver(binary, workdir, report, extra):
    cmd = [
        binary, "--program", "wcc", "--graph", "rmat:8", "--symmetric",
        "--watch", "6", "--audit", "every=3",
        "--metrics-json", report,
    ] + extra
    print("audit_check: running:", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=workdir, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT)
    out = proc.stdout.decode("utf-8", errors="replace")
    if proc.returncode != 0:
        fail(f"driver exited rc {proc.returncode}:\n{out}")
    try:
        with open(report, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse report {report}: {e}")
    audit = doc.get("audit")
    expect(isinstance(audit, dict), f"{report}: no audit section")
    return audit, out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--workdir", required=True)
    args = parser.parse_args()
    os.makedirs(args.workdir, exist_ok=True)

    # 1. Clean run: all audits verify.
    audit, _ = run_driver(args.binary, args.workdir,
                          os.path.join(args.workdir, "clean.json"), [])
    expect(audit["enabled"], "clean run: auditing not enabled")
    expect(audit["every"] == 3, f"clean run: every={audit['every']}, want 3")
    expect(audit["audits"] >= 2,
           f"clean run: only {audit['audits']} audits over 6 batches")
    expect(not audit["divergence"]["found"],
           f"clean run: spurious divergence: {audit['divergence']}")
    expect(audit["last_verified"] == 6,
           f"clean run: last_verified={audit['last_verified']}, want 6")
    expect(len(audit["digests"]) == 7,
           f"clean run: {len(audit['digests'])} digests recorded, want 7")
    print(f"audit_check: clean run OK — {audit['audits']} audits, "
          f"last_verified={audit['last_verified']}")

    # 2. Drift run: corrupt one attribute of vertex 7 during batch 4; the
    # t=6 audit must catch it and bisect back to exactly batch 4. The
    # corruption delta is negative because WCC propagates min(comp).
    audit, out = run_driver(
        args.binary, args.workdir,
        os.path.join(args.workdir, "drift.json"),
        ["--inject-corrupt-t", "4", "--inject-corrupt-vertex", "7",
         "--inject-corrupt-delta", "-5"])
    div = audit["divergence"]
    expect(div["found"], f"drift run: divergence not detected:\n{out}")
    expect(div["detected_at"] == 6,
           f"drift run: detected_at={div['detected_at']}, want 6")
    expect(div["first_bad_batch"] == 4,
           f"drift run: bisected to batch {div['first_bad_batch']}, want 4")
    expect(div["bisection_probes"] >= 1, "drift run: no bisection probes")
    expect(div["attrs"] == ["comp"],
           f"drift run: divergent attrs {div['attrs']}, want ['comp']")
    expect(7 in div["vertices"],
           f"drift run: vertex 7 missing from divergent set "
           f"{div['vertices']}")
    expect(div["divergent_vertices"] >= 1,
           "drift run: zero divergent vertices")
    expect(div["expected_digest"] != div["actual_digest"],
           "drift run: expected and actual digests identical")
    expect(audit["last_verified"] == 3,
           f"drift run: last_verified={audit['last_verified']}, want 3")
    expect("flight recorder dump" in out,
           "drift run: no flight-recorder dump in driver output")
    print(f"audit_check: drift run OK — detected at t=6, bisected to "
          f"batch {div['first_bad_batch']} in {div['bisection_probes']} "
          f"probes, {div['divergent_vertices']} divergent vertices")
    print("audit_check: all checks passed")


if __name__ == "__main__":
    main()
