# ctest driver for the run-report regression gate (see top-level
# CMakeLists.txt): runs fig15_workloads --quick twice, checks that
#   1. both reports schema-validate (trace_summary.py, schema v2),
#   2. the two runs self-diff clean (deterministic work metrics),
#   3. the new report diffs clean against the committed BENCH_baseline.json,
#   4. an injected 2x regression trips the gate (report_diff.py exits 1).
#
# Inputs: -DFIG15=<binary> -DPython3_EXECUTABLE=<python3>
#         -DTRACE_SUMMARY=<trace_summary.py> -DREPORT_DIFF=<report_diff.py>
#         -DBASELINE=<committed BENCH_baseline.json> -DWORK_DIR=<scratch dir>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

foreach(side a b)
  execute_process(
    COMMAND ${FIG15} --quick --metrics-json=${WORK_DIR}/report_${side}.json
    RESULT_VARIABLE run_rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_out)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "fig15_workloads --quick failed (${run_rc}):\n"
                        "${run_out}")
  endif()
endforeach()

# 1. Schema validation (v2: operators + supersteps_profile sections).
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
          --report ${WORK_DIR}/report_a.json
  RESULT_VARIABLE schema_rc
  OUTPUT_VARIABLE schema_out
  ERROR_VARIABLE schema_err)
if(NOT schema_rc EQUAL 0)
  message(FATAL_ERROR "schema validation failed (${schema_rc}):\n"
                      "${schema_err}")
endif()

# 2. Self-diff: two identical-config runs must be work-identical.
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${REPORT_DIFF}
          ${WORK_DIR}/report_a.json ${WORK_DIR}/report_b.json
          --max-regress=1.25
  RESULT_VARIABLE selfdiff_rc
  OUTPUT_VARIABLE selfdiff_out
  ERROR_VARIABLE selfdiff_err)
message(STATUS "self-diff:\n${selfdiff_out}")
if(NOT selfdiff_rc EQUAL 0)
  message(FATAL_ERROR "self-diff regressed (${selfdiff_rc}):\n"
                      "${selfdiff_out}${selfdiff_err}")
endif()

# 3. Diff against the committed baseline. Work metrics are deterministic,
#    so any drift is a real behavior change: either a regression (fix it)
#    or an intended change (regenerate BENCH_baseline.json, see README).
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${REPORT_DIFF}
          ${BASELINE} ${WORK_DIR}/report_a.json --max-regress=1.25
  RESULT_VARIABLE baseline_rc
  OUTPUT_VARIABLE baseline_out
  ERROR_VARIABLE baseline_err)
message(STATUS "baseline diff:\n${baseline_out}")
if(NOT baseline_rc EQUAL 0)
  message(FATAL_ERROR
          "regression vs committed BENCH_baseline.json (${baseline_rc}):\n"
          "${baseline_out}${baseline_err}\n"
          "If the work change is intended, regenerate the baseline:\n"
          "  ./build/bench/fig15_workloads --quick "
          "--metrics-json=bench/BENCH_baseline.json")
endif()

# 4. Inject a 2x regression into edges_scanned of every run and check the
#    gate trips (exit code 1, not a crash).
file(READ ${WORK_DIR}/report_a.json report_json)
string(REGEX REPLACE "\"edges_scanned\":([0-9]+)"
       "\"edges_scanned\":\\1\\1" report_json "${report_json}")
file(WRITE ${WORK_DIR}/report_regressed.json "${report_json}")
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${REPORT_DIFF}
          ${WORK_DIR}/report_a.json ${WORK_DIR}/report_regressed.json
          --max-regress=1.25
  RESULT_VARIABLE inject_rc
  OUTPUT_VARIABLE inject_out
  ERROR_VARIABLE inject_err)
if(NOT inject_rc EQUAL 1)
  message(FATAL_ERROR
          "injected regression did not trip the gate (rc=${inject_rc}):\n"
          "${inject_out}${inject_err}")
endif()
message(STATUS "injected regression correctly tripped the gate")
