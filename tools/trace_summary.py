#!/usr/bin/env python3
"""Summarize iTurboGraph trace files and validate run reports.

Usage:
  trace_summary.py --trace <trace.json> [--top N] [--waterfall]
  trace_summary.py --report <report.json>
  trace_summary.py --trace <trace.json> --report <report.json>

--trace expects the Chrome trace-event JSON written when ITG_TRACE=<path>
is set (loadable in Perfetto / chrome://tracing). Prints a per-phase wall
time table (aggregated over span names) and the top-N longest spans.
Flow events ('s'/'t'/'f', the serving pipeline's ingest->notify links)
are validated: every flow event must carry an "id" and every flow start
must be closed by a flow finish with the same id.

--waterfall additionally prints, for each flow id (one ingested Δ-batch),
the time-ordered spans tagged with that id — the textual version of the
arrow chain Perfetto draws. Exits non-zero when the trace contains no
flow events, so the serve smoke can assert the pipeline is traced.

--report expects the machine-readable run report written by the bench
binaries' --metrics-json=<path> flag (schema_version MIN_SCHEMA..
MAX_SCHEMA from tools/report_schema.py, see src/harness/run_report.h;
version 2 adds per-run "operators" and "supersteps_profile" sections,
version 3 adds per-machine barrier_wait_nanos and a top-level "memory"
section of per-structure current/peak byte counts, version 4 adds state
digests and the drift auditor's "audit" section, version 5 the serving
daemon's "serving" section, version 6 the serving pipeline's per-stage
latency rows, slow-batch counter and per-query staleness fields,
version 7 per-query delta-latency percentile fields — cross-checked
here against a recomputation from the sparse buckets via
tools/histogram_math.py — and the optional "load" section holding
itg_loadgen's capacity curve, knee and SLO verdict, version 8 the
always-present "resources" section of per-ResourceContext attribution
rows cross-checked against the resource.<ctx>.* counters, version 9
the optional "alerts" section: the alert engine's end-of-run rule
states, fire/flap tallies and incident-bundle counts).
Validates the schema and prints a short digest. Exits non-zero on any schema violation, so it
doubles as the ctest smoke check.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import histogram_math as hm  # noqa: E402
from report_schema import MAX_SCHEMA, MIN_SCHEMA, SCHEMA_RANGE  # noqa: E402


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------- trace ----

def print_waterfall(spans, flow_ids):
    """Prints the per-flow-id (= per-Δ-batch) stage waterfall.

    A pipeline span is tied to its batch by the span's args.value (the
    trace id the service stamps on serve.ingest/apply/view_run/
    stream_flush), matching the flow events' "id" field.
    """
    by_id = {}
    for name, cat, dur, ts, tid, arg in spans:
        if arg is not None and str(arg) in flow_ids:
            by_id.setdefault(str(arg), []).append((ts, dur, cat, name, tid))
    print()
    print(f"  waterfall ({len(flow_ids)} flows, "
          f"{sum(len(v) for v in by_id.values())} linked spans):")
    for fid in sorted(flow_ids, key=int):
        stages = sorted(by_id.get(fid, []))
        if not stages:
            print(f"    flow {fid}: no linked spans (dropped buffers?)")
            continue
        t0 = stages[0][0]
        total = max(ts + dur for ts, dur, _, _, _ in stages) - t0
        print(f"    flow {fid}: {len(stages)} stages, "
              f"{total / 1000.0:.3f} ms end-to-end")
        for ts, dur, cat, name, tid in stages:
            off = ts - t0
            print(f"      +{off / 1000.0:>9.3f} ms  {dur / 1000.0:>9.3f} ms  "
                  f"{cat}/{name} (tid {tid})")


def summarize_trace(path, top_n, waterfall=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse trace {path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a Chrome trace (missing traceEvents)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not a list")

    thread_names = {}
    spans = []       # (name, cat, dur_us, ts, tid, arg-or-None)
    instants = {}    # name -> count
    flow_starts = {}  # id -> count of 's'
    flow_ends = {}    # id -> count of 'f'
    flow_steps = 0
    for ev in events:
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"{path}: malformed event {ev!r}")
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") == "thread_name":
                thread_names[ev.get("tid")] = ev["args"]["name"]
        elif ph == "X":
            for key in ("name", "ts", "dur", "tid"):
                if key not in ev:
                    fail(f"{path}: X event missing {key}: {ev!r}")
            arg = ev.get("args", {}).get("value")
            spans.append((ev["name"], ev.get("cat", ""), float(ev["dur"]),
                          float(ev["ts"]), ev["tid"], arg))
        elif ph == "i":
            instants[ev["name"]] = instants.get(ev["name"], 0) + 1
        elif ph in ("s", "t", "f"):
            fid = ev.get("id")
            if not isinstance(fid, str) or not fid:
                fail(f"{path}: flow event missing id: {ev!r}")
            for key in ("name", "ts", "tid"):
                if key not in ev:
                    fail(f"{path}: flow event missing {key}: {ev!r}")
            if ph == "s":
                flow_starts[fid] = flow_starts.get(fid, 0) + 1
            elif ph == "f":
                if ev.get("bp") != "e":
                    fail(f"{path}: flow finish without bp=e: {ev!r}")
                flow_ends[fid] = flow_ends.get(fid, 0) + 1
            else:
                flow_steps += 1

    # Every flow that starts must finish (a dangling start draws a broken
    # arrow in Perfetto and usually means a pipeline stage lost the id).
    for fid, n in sorted(flow_starts.items()):
        if flow_ends.get(fid, 0) != n:
            fail(f"{path}: flow {fid} has {n} start(s) but "
                 f"{flow_ends.get(fid, 0)} finish(es)")
    for fid in sorted(flow_ends):
        if fid not in flow_starts:
            fail(f"{path}: flow {fid} finishes without a start")

    if waterfall and not flow_starts:
        fail(f"{path}: --waterfall requested but the trace contains no "
             f"flow events (was the serving pipeline traced?)")

    if not spans and not instants and not flow_starts:
        # An empty trace is valid (e.g. a run with tracing enabled but no
        # instrumented work): report it and exit cleanly.
        print(f"trace: {path}")
        print("  no spans")
        dropped = doc.get("droppedSpans", 0)
        if dropped:
            print(f"  WARNING: {dropped} spans dropped (per-thread buffer "
                  f"cap hit)")
        return

    # Per-phase aggregation. Nested spans are counted under each name, so
    # the table answers "how much wall time was inside <phase>" — columns
    # do not sum to the run's wall time.
    by_phase = {}
    for name, cat, dur, _, _, _ in spans:
        tot, cnt = by_phase.get((cat, name), (0.0, 0))
        by_phase[(cat, name)] = (tot + dur, cnt + 1)

    dropped = doc.get("droppedSpans", 0)
    n_flow_events = (sum(flow_starts.values()) + flow_steps
                     + sum(flow_ends.values()))
    print(f"trace: {path}")
    print(f"  {len(spans)} spans, {sum(instants.values())} instant events, "
          f"{len(flow_starts)} flows ({n_flow_events} flow events), "
          f"{len(thread_names)} named threads")
    if dropped:
        print(f"  WARNING: {dropped} spans dropped (per-thread buffer cap "
              f"hit; raise Tracer::set_max_events_per_thread or trace a "
              f"shorter window)")
    print()
    print(f"  {'phase':<28} {'count':>8} {'total ms':>12} {'mean us':>12}")
    print(f"  {'-' * 28} {'-' * 8} {'-' * 12} {'-' * 12}")
    for (cat, name), (tot, cnt) in sorted(by_phase.items(),
                                          key=lambda kv: -kv[1][0]):
        label = f"{cat}/{name}"
        print(f"  {label:<28} {cnt:>8} {tot / 1000.0:>12.3f} "
              f"{tot / cnt:>12.1f}")
    if instants:
        print()
        for name, count in sorted(instants.items()):
            print(f"  instant {name}: {count}")

    print()
    print(f"  top {top_n} spans:")
    for name, cat, dur, ts, tid, _ in sorted(spans,
                                             key=lambda s: -s[2])[:top_n]:
        tname = thread_names.get(tid, f"tid {tid}")
        print(f"    {dur / 1000.0:>10.3f} ms  {cat}/{name}  "
              f"@{ts / 1000.0:.3f} ms on {tname}")

    if waterfall:
        print_waterfall(spans, set(flow_starts))


# --------------------------------------------------------------- report ----

def expect(cond, msg):
    if not cond:
        fail(f"report schema violation: {msg}")


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def is_uint(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


RUN_UINT_FIELDS = [
    "timestamp", "supersteps", "read_bytes", "write_bytes", "network_bytes",
    "windows_loaded", "edges_scanned", "emissions_applied",
    "recomputed_vertices", "threads", "parallel_tasks", "steals",
    "busy_nanos", "critical_nanos",
]

OPERATOR_UINT_FIELDS = [
    "in_pos", "in_neg", "out_pos", "out_neg", "pruned", "windows", "edges",
    "evals", "wall_nanos",
]

SUPERSTEP_UINT_FIELDS = [
    "superstep", "active_vertices", "frontier", "emissions", "windows",
    "edges", "wall_nanos", "cpu_nanos",
]


def validate_run_profile(run, where):
    """Validates the v2 per-run operators / supersteps_profile sections.

    Both are optional (a run recorded without a profile omits them), but
    when one is present the other must be too, and every row must carry
    the full counter set.
    """
    has_ops = "operators" in run
    has_ss = "supersteps_profile" in run
    expect(has_ops == has_ss,
           f"{where}: operators and supersteps_profile must appear together")
    if not has_ops:
        return
    ops = run["operators"]
    expect(isinstance(ops, list), f"{where}.operators is not a list")
    seen_ids = set()
    for j, op in enumerate(ops):
        ow = f"{where}.operators[{j}]"
        expect(isinstance(op, dict), f"{ow} is not an object")
        expect(is_uint(op.get("id")), f"{ow}.id is not a non-negative int")
        expect(op["id"] not in seen_ids, f"{ow}.id {op['id']} duplicated")
        seen_ids.add(op["id"])
        expect(isinstance(op.get("op"), str), f"{ow}.op missing")
        expect(isinstance(op.get("detail"), str), f"{ow}.detail missing")
        for field in OPERATOR_UINT_FIELDS:
            expect(is_uint(op.get(field)),
                   f"{ow}.{field} is not a non-negative integer")
    sss = run["supersteps_profile"]
    expect(isinstance(sss, list), f"{where}.supersteps_profile is not a list")
    for j, ss in enumerate(sss):
        sw = f"{where}.supersteps_profile[{j}]"
        expect(isinstance(ss, dict), f"{sw} is not an object")
        expect(isinstance(ss.get("incremental"), bool),
               f"{sw}.incremental is not a bool")
        for field in SUPERSTEP_UINT_FIELDS:
            expect(is_uint(ss.get(field)),
                   f"{sw}.{field} is not a non-negative integer")
        shuffle = ss.get("shuffle_bytes")
        expect(isinstance(shuffle, list) and all(is_uint(b) for b in shuffle),
               f"{sw}.shuffle_bytes malformed")


def validate_audit(audit):
    """Validates the optional v4 "audit" section (drift auditor)."""
    expect(isinstance(audit, dict), "audit is not an object")
    expect(isinstance(audit.get("enabled"), bool), "audit.enabled missing")
    for field in ("every", "audits", "digest_mismatches"):
        expect(is_uint(audit.get(field)),
               f"audit.{field} is not a non-negative integer")
    expect(is_num(audit.get("tolerance")), "audit.tolerance missing")
    expect(isinstance(audit.get("last_verified"), int),
           "audit.last_verified is not an integer")
    digests = audit.get("digests")
    expect(isinstance(digests, list), "audit.digests is not a list")
    for j, entry in enumerate(digests):
        expect(isinstance(entry, dict)
               and isinstance(entry.get("timestamp"), int)
               and is_uint(entry.get("digest")),
               f"audit.digests[{j}] malformed")
    div = audit.get("divergence")
    expect(isinstance(div, dict), "audit.divergence is not an object")
    expect(isinstance(div.get("found"), bool),
           "audit.divergence.found missing")
    for field in ("detected_at", "first_bad_batch"):
        expect(isinstance(div.get(field), int),
               f"audit.divergence.{field} is not an integer")
    for field in ("bisection_probes", "divergent_vertices",
                  "expected_digest", "actual_digest"):
        expect(is_uint(div.get(field)),
               f"audit.divergence.{field} is not a non-negative integer")
    expect(isinstance(div.get("attrs"), list)
           and all(isinstance(a, str) for a in div["attrs"]),
           "audit.divergence.attrs malformed")
    expect(isinstance(div.get("vertices"), list)
           and all(is_uint(v) for v in div["vertices"]),
           "audit.divergence.vertices malformed")
    if div["found"]:
        expect(audit["enabled"], "divergence found with auditing disabled")


SERVING_STAGES = ("validate", "queue_wait", "apply")


def validate_serving(serving, version):
    """Validates the optional v5 "serving" section (standing-query
    daemon). v6 adds per-stage latency rows, the slow-batch counter and
    per-query staleness fields."""
    expect(isinstance(serving, dict), "serving is not an object")
    for field in ("standing_queries", "ingest_batches", "ingest_ops",
                  "backpressure_stalls", "delta_messages"):
        expect(is_uint(serving.get(field)),
               f"serving.{field} is not a non-negative integer")
    if version >= 6:
        expect(is_uint(serving.get("slow_batches")),
               "serving.slow_batches is not a non-negative integer")
        stages = serving.get("stage_latency_us")
        expect(isinstance(stages, list),
               "serving.stage_latency_us is not a list")
        seen_stages = set()
        for j, row in enumerate(stages):
            where = f"serving.stage_latency_us[{j}]"
            expect(isinstance(row, dict), f"{where} is not an object")
            stage = row.get("stage")
            expect(isinstance(stage, str) and stage, f"{where}.stage missing")
            expect(stage not in seen_stages, f"{where}.stage duplicated")
            seen_stages.add(stage)
            expect(stage in SERVING_STAGES
                   or stage.startswith(("view_run.", "stream_flush.")),
                   f"{where}.stage {stage!r} is not a known pipeline stage")
            for field in ("count", "sum", "p50", "p95", "p99"):
                expect(is_uint(row.get(field)),
                       f"{where}.{field} is not a non-negative integer")
            expect(row["p50"] <= row["p95"] <= row["p99"],
                   f"{where}: percentiles not monotone")
        # A daemon that ingested anything must have the batch-level stages.
        if serving["ingest_batches"]:
            for stage in SERVING_STAGES:
                expect(stage in seen_stages,
                       f"serving.stage_latency_us missing stage {stage!r}")
    else:
        expect("slow_batches" not in serving
               and "stage_latency_us" not in serving,
               "v6 serving fields in a pre-v6 report")
    queries = serving.get("queries")
    expect(isinstance(queries, list), "serving.queries is not a list")
    expect(len(queries) == serving["standing_queries"],
           f"serving.queries has {len(queries)} rows but "
           f"standing_queries is {serving['standing_queries']}")
    for j, row in enumerate(queries):
        where = f"serving.queries[{j}]"
        expect(isinstance(row, dict), f"{where} is not an object")
        expect(isinstance(row.get("name"), str), f"{where}.name missing")
        for field in ("timestamp", "digest", "runs", "budget_bytes",
                      "budget_used_bytes"):
            expect(is_uint(row.get(field)),
                   f"{where}.{field} is not a non-negative integer")
        if row["budget_bytes"]:  # 0 = unlimited slice
            expect(row["budget_used_bytes"] <= row["budget_bytes"],
                   f"{where}: budget_used_bytes {row['budget_used_bytes']} "
                   f"above slice {row['budget_bytes']}")
        if version >= 6:
            for field in ("lag_batches", "lag_us"):
                expect(is_uint(row.get(field)),
                       f"{where}.{field} is not a non-negative integer")
        else:
            expect("lag_batches" not in row and "lag_us" not in row,
                   f"{where}: v6 lag fields in a pre-v6 report")
        hist = row.get("delta_latency_us")
        expect(isinstance(hist, dict) and is_uint(hist.get("count"))
               and is_num(hist.get("sum")),
               f"{where}.delta_latency_us malformed")
        buckets = hist.get("buckets")
        expect(isinstance(buckets, list) and all(
                   isinstance(b, list) and len(b) == 2 and is_num(b[0])
                   and is_uint(b[1]) for b in buckets),
               f"{where}.delta_latency_us.buckets malformed")
        expect(sum(b[1] for b in buckets) == hist["count"],
               f"{where}.delta_latency_us bucket counts do not sum to "
               f"count {hist['count']}")
        if version >= 7:
            # v7 stamps the percentiles next to the buckets; they must be
            # recomputable from the buckets bit-for-bit (histogram_math is
            # the Python mirror of the C++ helper that wrote them).
            sparse = [(int(b[0]), int(b[1])) for b in buckets]
            for field, p in (("p50", 50.0), ("p95", 95.0),
                             ("p99", 99.0), ("p999", 99.9)):
                expect(is_uint(hist.get(field)),
                       f"{where}.delta_latency_us.{field} is not a "
                       f"non-negative integer")
                want = hm.percentile_upper_bound(sparse, p,
                                                 hm.HISTOGRAM_SUB_BITS)
                expect(hist[field] == want,
                       f"{where}.delta_latency_us.{field} is "
                       f"{hist[field]} but the buckets say {want}")
        else:
            expect(all(f not in hist
                       for f in ("p50", "p95", "p99", "p999")),
                   f"{where}: v7 percentile fields in a pre-v7 report")


LOAD_POINT_UINTS = ("batches", "samples", "p50", "p90", "p99", "p999",
                    "max", "backpressure_stalls", "queue_depth_max",
                    "view_lag_us_max", "rejected_batches")


def validate_load_point(point, where):
    expect(isinstance(point, dict), f"{where} is not an object")
    for field in ("offered_rate", "achieved_rate"):
        expect(is_num(point.get(field)) and point[field] >= 0,
               f"{where}.{field} is not a non-negative number")
    for field in LOAD_POINT_UINTS:
        expect(is_uint(point.get(field)),
               f"{where}.{field} is not a non-negative integer")
    expect(isinstance(point.get("slo_ok"), bool), f"{where}.slo_ok missing")
    expect(point["p50"] <= point["p99"] <= point["p999"],
           f"{where}: percentiles not monotone")


def validate_load(load):
    """Validates the optional v7 "load" section (itg_loadgen capacity
    curve: per-offered-rate points, the detected knee, SLO verdict and
    the spliced /timeseriesz server ring)."""
    expect(isinstance(load, dict), "load is not an object")
    for field in ("connections", "subscribers", "ops_per_batch"):
        expect(is_uint(load.get(field)),
               f"load.{field} is not a non-negative integer")
    expect(load.get("arrival") in ("poisson", "uniform"),
           f"load.arrival {load.get('arrival')!r} is not poisson|uniform")
    expect(is_num(load.get("slo_ms")) and load["slo_ms"] > 0,
           "load.slo_ms is not a positive number")
    expect(isinstance(load.get("sweep"), bool), "load.sweep missing")
    points = load.get("points")
    expect(isinstance(points, list) and points, "load.points missing/empty")
    for j, point in enumerate(points):
        validate_load_point(point, f"load.points[{j}]")
    for j in range(1, len(points)):
        expect(points[j - 1]["offered_rate"] < points[j]["offered_rate"],
               f"load.points offered rates not strictly increasing at [{j}]")
    knee = load.get("knee")
    expect(isinstance(knee, dict) and isinstance(knee.get("found"), bool),
           "load.knee malformed")
    if knee["found"]:
        validate_load_point(knee, "load.knee")
        expect(knee["slo_ok"], "load.knee marked found but not slo_ok")
        expect(any(p["offered_rate"] == knee["offered_rate"]
                   for p in points),
               "load.knee offered_rate not among the sweep points")
    verdict = load.get("slo_verdict")
    expect(verdict in ("pass", "fail"),
           f"load.slo_verdict {verdict!r} is not pass|fail")
    expect((verdict == "pass") == knee["found"],
           "load.slo_verdict inconsistent with knee.found")
    series = load.get("server_timeseries")
    if series is not None:
        expect(isinstance(series, dict)
               and is_uint(series.get("capacity"))
               and is_uint(series.get("evicted"))
               and isinstance(series.get("samples"), list),
               "load.server_timeseries malformed")
        for j, s in enumerate(series["samples"]):
            expect(isinstance(s, dict) and is_uint(s.get("t_ms")),
                   f"load.server_timeseries.samples[{j}] malformed")


def validate_alerts(alerts):
    """Validates the optional v9 "alerts" section (common/alert_engine.h
    end-of-run summary: engine totals plus one row per rule)."""
    expect(isinstance(alerts, dict), "alerts is not an object")
    expect(isinstance(alerts.get("enabled"), bool), "alerts.enabled missing")
    for field in ("period_ms", "evaluations", "bundles_written",
                  "bundles_suppressed"):
        expect(is_uint(alerts.get(field)),
               f"alerts.{field} is not a non-negative integer")
    rules = alerts.get("rules")
    expect(isinstance(rules, list), "alerts.rules is not a list")
    names = set()
    for j, rule in enumerate(rules):
        where = f"alerts.rules[{j}]"
        expect(isinstance(rule, dict), f"{where} is not an object")
        name = rule.get("name")
        expect(isinstance(name, str) and name, f"{where}.name missing")
        expect(name not in names, f"{where}: duplicate rule name {name!r}")
        names.add(name)
        expect(rule.get("severity") in ("info", "warn", "critical"),
               f"{where}.severity {rule.get('severity')!r} is not "
               f"info|warn|critical")
        expect(rule.get("state") in ("inactive", "pending", "firing",
                                     "resolved"),
               f"{where}.state {rule.get('state')!r} is not a valid state")
        for field in ("fires", "flaps"):
            expect(is_uint(rule.get(field)),
                   f"{where}.{field} is not a non-negative integer")
        expect(is_num(rule.get("last_value")),
               f"{where}.last_value is not a number")
        expect(isinstance(rule.get("expr"), str) and rule["expr"],
               f"{where}.expr missing")


def validate_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse report {path}: {e}")

    expect(isinstance(doc, dict), "top level is not an object")
    version = doc.get("schema_version")
    expect(version in SCHEMA_RANGE,
           f"schema_version not in {MIN_SCHEMA}..{MAX_SCHEMA} "
           f"(got {version!r})")
    expect(isinstance(doc.get("binary"), str), "binary is not a string")

    runs = doc.get("runs")
    expect(isinstance(runs, list), "runs is not a list")
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        expect(isinstance(run, dict), f"{where} is not an object")
        expect(isinstance(run.get("name"), str), f"{where}.name missing")
        expect(isinstance(run.get("incremental"), bool),
               f"{where}.incremental is not a bool")
        expect(is_num(run.get("seconds")), f"{where}.seconds missing")
        for field in RUN_UINT_FIELDS:
            expect(is_uint(run.get(field)),
                   f"{where}.{field} is not a non-negative integer")
        if version >= 4:
            expect(is_uint(run.get("state_digest")),
                   f"{where}.state_digest is not a non-negative integer")
        dw = run.get("delta_walks")
        expect(isinstance(dw, dict) and is_uint(dw.get("enumerated"))
               and is_uint(dw.get("pruned")),
               f"{where}.delta_walks missing enumerated/pruned")
        machines = run.get("machines")
        expect(isinstance(machines, list), f"{where}.machines is not a list")
        for j, m in enumerate(machines):
            expect(isinstance(m, dict) and is_num(m.get("seconds"))
                   and is_uint(m.get("network_bytes")),
                   f"{where}.machines[{j}] malformed")
            if version >= 3:
                expect(is_uint(m.get("barrier_wait_nanos")),
                       f"{where}.machines[{j}].barrier_wait_nanos "
                       f"is not a non-negative integer")
        if version >= 2:
            validate_run_profile(run, where)
        else:
            expect("operators" not in run and "supersteps_profile" not in run,
                   f"{where}: v2 profile sections in a v1 report")

    results = doc.get("results")
    expect(isinstance(results, dict), "results is not an object")
    for name, value in results.items():
        expect(is_num(value), f"results[{name!r}] is not a number")

    metrics = doc.get("metrics")
    expect(isinstance(metrics, dict), "metrics is not an object")
    for section in ("counters", "gauges", "histograms"):
        expect(isinstance(metrics.get(section), dict),
               f"metrics.{section} is not an object")
    for name, value in metrics["counters"].items():
        expect(is_uint(value), f"metrics.counters[{name!r}] malformed")
    for name, value in metrics["gauges"].items():
        expect(isinstance(value, int) and not isinstance(value, bool),
               f"metrics.gauges[{name!r}] malformed")
    for name, h in metrics["histograms"].items():
        where = f"metrics.histograms[{name!r}]"
        expect(isinstance(h, dict) and is_uint(h.get("count"))
               and is_uint(h.get("sum")), f"{where} missing count/sum")
        buckets = h.get("buckets")
        expect(isinstance(buckets, list), f"{where}.buckets is not a list")
        total = 0
        for b in buckets:
            expect(isinstance(b, list) and len(b) == 2 and is_uint(b[0])
                   and is_uint(b[1]), f"{where}.buckets entry malformed")
            total += b[1]
        expect(total == h["count"],
               f"{where}: bucket counts sum to {total}, count is {h['count']}")

    pool = doc.get("buffer_pool")
    expect(isinstance(pool, dict) and is_uint(pool.get("hits"))
           and is_uint(pool.get("misses")) and is_num(pool.get("hit_rate")),
           "buffer_pool missing hits/misses/hit_rate")
    accesses = pool["hits"] + pool["misses"]
    want_rate = pool["hits"] / accesses if accesses else 0.0
    expect(abs(pool["hit_rate"] - want_rate) < 1e-9,
           f"buffer_pool.hit_rate {pool['hit_rate']} inconsistent with "
           f"hits/misses (want {want_rate})")

    memory = doc.get("memory")
    if version >= 3:
        expect(isinstance(memory, dict), "memory is not an object (v3)")
        for struct_name, entry in memory.items():
            where = f"memory[{struct_name!r}]"
            expect(isinstance(entry, dict) and is_uint(entry.get("bytes"))
                   and is_uint(entry.get("peak_bytes")),
                   f"{where} missing bytes/peak_bytes")
            expect(entry["peak_bytes"] >= entry["bytes"],
                   f"{where}: peak_bytes {entry['peak_bytes']} below "
                   f"current bytes {entry['bytes']}")
    else:
        expect(memory is None, "v3 memory section in a pre-v3 report")

    resources = doc.get("resources")
    if version >= 8:
        expect(isinstance(resources, dict),
               "resources is not an object (v8)")
        counters = metrics["counters"]
        for ctx, entry in resources.items():
            where = f"resources[{ctx!r}]"
            expect(isinstance(entry, dict), f"{where} is not an object")
            for field in ("cpu_nanos", "pages_read", "bytes_alloc"):
                expect(is_uint(entry.get(field)),
                       f"{where}.{field} is not a non-negative integer")
                # The section is collapsed from the registry counters at
                # the same snapshot, so the rows must agree with them
                # exactly (a missing counter reads as 0).
                want = counters.get(f"resource.{ctx}.{field}", 0)
                expect(entry[field] == want,
                       f"{where}.{field} is {entry[field]} but counter "
                       f"resource.{ctx}.{field} says {want}")
    else:
        expect(resources is None, "v8 resources section in a pre-v8 report")

    audit = doc.get("audit")
    if version >= 4:
        if audit is not None:
            validate_audit(audit)
    else:
        expect(audit is None, "v4 audit section in a pre-v4 report")

    serving = doc.get("serving")
    if version >= 5:
        if serving is not None:
            validate_serving(serving, version)
    else:
        expect(serving is None, "v5 serving section in a pre-v5 report")

    load = doc.get("load")
    if version >= 7:
        if load is not None:
            validate_load(load)
    else:
        expect(load is None, "v7 load section in a pre-v7 report")

    alerts = doc.get("alerts")
    if version >= 9:
        if alerts is not None:
            validate_alerts(alerts)
    else:
        expect(alerts is None, "v9 alerts section in a pre-v9 report")

    print(f"report: {path}")
    print(f"  binary: {doc['binary']}, {len(runs)} runs, "
          f"{len(results)} results, {len(metrics['counters'])} counters, "
          f"{len(metrics['histograms'])} histograms")
    for run in runs:
        kind = "incr" if run["incremental"] else "full"
        dw = run["delta_walks"]
        profile = ""
        if "operators" in run:
            profile = (f", profile: {len(run['operators'])} operators / "
                       f"{len(run['supersteps_profile'])} supersteps")
        print(f"  run {run['name']}: {kind} {run['seconds']:.4f}s, "
              f"{run['supersteps']} supersteps, "
              f"net {run['network_bytes']} B over "
              f"{len(run['machines'])} machines, "
              f"delta walks {dw['enumerated']} enumerated / "
              f"{dw['pruned']} pruned{profile}")
    if accesses:
        print(f"  buffer pool: {pool['hits']}/{accesses} hits "
              f"({100.0 * pool['hit_rate']:.1f}%)")
    if memory:
        parts = ", ".join(
            f"{name} {entry['bytes']}B (peak {entry['peak_bytes']}B)"
            for name, entry in sorted(memory.items()))
        print(f"  memory: {parts}")
    if resources:
        parts = ", ".join(
            f"{ctx} {entry['cpu_nanos']}ns cpu / {entry['pages_read']} pages"
            f" / {entry['bytes_alloc']}B"
            for ctx, entry in sorted(resources.items()))
        print(f"  resources: {parts}")
    if serving:
        slow = (f", {serving['slow_batches']} slow batches"
                if "slow_batches" in serving else "")
        print(f"  serving: {serving['standing_queries']} standing queries, "
              f"{serving['ingest_batches']} batches "
              f"({serving['ingest_ops']} ops), "
              f"{serving['delta_messages']} delta messages, "
              f"{serving['backpressure_stalls']} backpressure stalls{slow}")
        for row in serving.get("stage_latency_us", []):
            print(f"    stage {row['stage']}: {row['count']} samples, "
                  f"p50 {row['p50']}us p95 {row['p95']}us p99 {row['p99']}us")
        for row in serving["queries"]:
            hist = row["delta_latency_us"]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lag = (f", lag {row['lag_batches']} batches / {row['lag_us']}us"
                   if "lag_batches" in row else "")
            print(f"    query {row['name']}: t={row['timestamp']}, "
                  f"{row['runs']} runs, digest {row['digest']}, "
                  f"budget {row['budget_used_bytes']}/{row['budget_bytes']} B, "
                  f"mean delta latency {mean:.0f}us{lag}")
    if load:
        mode = "sweep" if load["sweep"] else "fixed rate"
        print(f"  load: {mode}, {len(load['points'])} points, "
              f"{load['connections']} ingesters / "
              f"{load['subscribers']} subscribers, {load['arrival']} "
              f"arrivals, SLO p99<={load['slo_ms']:g}ms -> "
              f"{load['slo_verdict']}")
        for p in load["points"]:
            ok = "ok" if p["slo_ok"] else "VIOLATED"
            print(f"    rate {p['offered_rate']:g}/s "
                  f"(achieved {p['achieved_rate']:.1f}/s): "
                  f"{p['batches']} batches, p50 {p['p50']}us "
                  f"p99 {p['p99']}us p99.9 {p['p999']}us, SLO {ok}")
        if load["knee"]["found"]:
            print(f"    knee: {load['knee']['offered_rate']:g}/s "
                  f"(p99 {load['knee']['p99']}us)")
    if alerts:
        print(f"  alerts: {len(alerts['rules'])} rules, "
              f"{alerts['evaluations']} evaluations every "
              f"{alerts['period_ms']}ms, "
              f"{alerts['bundles_written']} bundles written "
              f"({alerts['bundles_suppressed']} suppressed)")
        for rule in alerts["rules"]:
            if rule["fires"] or rule["state"] != "inactive":
                print(f"    {rule['name']} [{rule['severity']}]: "
                      f"{rule['state']}, fires={rule['fires']}, "
                      f"flaps={rule['flaps']}, "
                      f"last_value={rule['last_value']:g}")
    print("  schema: OK")


def main():
    parser = argparse.ArgumentParser(
        description="Summarize ITG_TRACE output and validate run reports.")
    parser.add_argument("--trace", help="Chrome trace JSON (ITG_TRACE output)")
    parser.add_argument("--report",
                        help="run report JSON (--metrics-json output)")
    parser.add_argument("--top", type=int, default=10,
                        help="number of longest spans to print (default 10)")
    parser.add_argument("--waterfall", action="store_true",
                        help="print the per-flow-id (Δ-batch) stage "
                             "waterfall; fails when the trace has no "
                             "flow events")
    args = parser.parse_args()
    if not args.trace and not args.report:
        parser.error("need --trace and/or --report")
    if args.waterfall and not args.trace:
        parser.error("--waterfall requires --trace")
    if args.trace:
        summarize_trace(args.trace, args.top, args.waterfall)
    if args.report:
        if args.trace:
            print()
        validate_report(args.report)


if __name__ == "__main__":
    main()
