"""The run-report schema range shared by every report-reading tool.

src/harness/run_report.h owns the writer-side version; readers accept the
whole MIN..MAX range so an old baseline can be diffed against a new
candidate. Bump MAX_SCHEMA here (one place) when run_report.h grows a new
version.

Version history:
  1  base report (runs / results / metrics / buffer_pool)
  2  per-run "operators" and "supersteps_profile" profile sections
  3  per-machine barrier_wait_nanos, top-level "memory" section
  4  state digests (per run and per superstep row), "audit" section
  5  "serving" section (standing-query daemon: per-query rows with
     delta-latency histograms, ingest/backpressure counters)
"""

MIN_SCHEMA = 1
MAX_SCHEMA = 5

SCHEMA_RANGE = range(MIN_SCHEMA, MAX_SCHEMA + 1)
