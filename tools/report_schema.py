"""The run-report schema range shared by every report-reading tool.

src/harness/run_report.h owns the writer-side version; readers accept the
whole MIN..MAX range so an old baseline can be diffed against a new
candidate. Bump MAX_SCHEMA here (one place) when run_report.h grows a new
version.

Version history:
  1  base report (runs / results / metrics / buffer_pool)
  2  per-run "operators" and "supersteps_profile" profile sections
  3  per-machine barrier_wait_nanos, top-level "memory" section
  4  state digests (per run and per superstep row), "audit" section
  5  "serving" section (standing-query daemon: per-query rows with
     delta-latency histograms, ingest/backpressure counters)
  6  pipeline observability: serving gains per-stage "stage_latency_us"
     percentile rows and "slow_batches"; per-query rows gain
     "lag_batches" / "lag_us" staleness fields
  7  load observability: serving query rows gain "p50"/"p95"/"p99"/
     "p999" delta-latency percentile fields (recomputable from the
     buckets via tools/histogram_math.py); new optional "load" section
     (itg_loadgen capacity curves: per-rate points, knee, SLO verdict,
     spliced /timeseriesz server ring)
  8  resource attribution: new always-present "resources" section —
     one {"cpu_nanos","pages_read","bytes_alloc"} row per
     ResourceContext (e.g. "view.<query>"), collapsed from the
     resource.<ctx>.* counters (common/resource_scope.h); may be empty
     when no context was ever created
  9  alerting: new optional "alerts" section (common/alert_engine.h) —
     engine totals (period_ms / evaluations / incident-bundle counts)
     plus one {"name","severity","state","fires","flaps","last_value",
     "expr"} row per rule, states final at drain time; report_diff.py
     fails gated runs whose candidate still has a critical rule firing
"""

MIN_SCHEMA = 1
MAX_SCHEMA = 9

SCHEMA_RANGE = range(MIN_SCHEMA, MAX_SCHEMA + 1)
