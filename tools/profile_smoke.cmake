# ctest driver for the observability stack around the serving daemon
# (see top-level CMakeLists.txt): per-view resource attribution, the
# sampling wall profiler, and lock-contention histograms, all exercised
# against a live example_itg_serve under example_itg_loadgen overload.
#
# Three concurrent processes (one execute_process):
#   1. example_itg_serve with ITG_PROFILE set (profiler on from process
#      start, folded flush at exit) and a deliberately tiny ingest queue
#      (--queue-depth 2) so producers and the maintenance thread collide
#      on the queue mutex;
#   2. example_itg_loadgen driving a single saturating sweep step;
#   3. a scraper that polls the telemetry portfile, then captures
#      GET /profilez?seconds=4 mid-sweep through profile_summary.py
#      --require serve. — the folded stacks must name the serve pipeline
#      spans (this also exercises the piggyback path: ITG_PROFILE
#      already owns the profiler, so /profilez must render without
#      stopping it).
#
# Afterwards:
#   - the daemon's exit-flushed ITG_PROFILE file must validate too;
#   - the daemon's schema-v8 run report must carry nonzero
#     resources["view.*"].cpu_nanos rows and a nonzero
#     contention.serve.ingest_queue.wait_us histogram;
#   - both run reports must pass full trace_summary.py validation (which
#     cross-checks the v8 resources section against the raw counters).
#
# Inputs: -DITG_SERVE=<binary> -DITG_LOADGEN=<binary>
#         -DPython3_EXECUTABLE=<python3>
#         -DPROFILE_SUMMARY=<profile_summary.py>
#         -DTRACE_SUMMARY=<trace_summary.py>
#         -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(ENV{ITG_TELEMETRY_PORTFILE} ${WORK_DIR}/telemetry.port)
set(ENV{ITG_THREADS} 1)

# The scraper retries so a slow registration one-shot (no serve.* spans
# live yet) cannot flake the capture; the sweep step is long enough that
# the first or second window lands inside it.
set(scrape "\
for i in $(seq 1 300); do \
  [ -s ${WORK_DIR}/telemetry.port ] && break; sleep 0.1; \
done; \
port=$(cat ${WORK_DIR}/telemetry.port) || exit 2; \
sleep 2; \
ok=1; \
for attempt in 1 2 3; do \
  if ${Python3_EXECUTABLE} ${PROFILE_SUMMARY} \
      --fetch \"http://127.0.0.1:$port/profilez?seconds=4\" \
      --require serve. >> ${WORK_DIR}/profilez.txt 2>&1; then \
    ok=0; break; \
  fi; \
  sleep 2; \
done; \
exit $ok")

execute_process(
  COMMAND sh -c "ITG_PROFILE=${WORK_DIR}/serve_profile.folded \
          exec ${ITG_SERVE} --graph rmat:12 --port 0 \
          --portfile ${WORK_DIR}/serve.port \
          --telemetry-port 0 --no-verify --queue-depth 2 \
          --scratch ${WORK_DIR}/scratch \
          --metrics-json ${WORK_DIR}/serve_report.json \
          > ${WORK_DIR}/serve.log 2>&1"
  COMMAND sh -c "exec ${ITG_LOADGEN} --portfile ${WORK_DIR}/serve.port \
          --graph rmat:12 --program wcc \
          --connections 2 --subscribers 1 --ops-per-batch 4 \
          --sweep --min-rate 100 --max-rate 100 --steps 1 --step-ms 6000 \
          --slo-ms 60000 --seed 13 \
          --metrics-json ${WORK_DIR}/load_report.json \
          --shutdown > ${WORK_DIR}/loadgen.log 2>&1"
  COMMAND sh -c "${scrape}"
  RESULTS_VARIABLE rcs
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
file(READ ${WORK_DIR}/profilez.txt profilez_out)
message(STATUS "mid-sweep /profilez capture:\n${profilez_out}")
foreach(rc ${rcs})
  if(NOT rc EQUAL 0)
    file(READ ${WORK_DIR}/serve.log serve_log)
    file(READ ${WORK_DIR}/loadgen.log loadgen_log)
    message(FATAL_ERROR "serve/loadgen/scraper rcs: ${rcs}\n"
            "serve:\n${serve_log}\nloadgen:\n${loadgen_log}\n${err}")
  endif()
endforeach()

# The atexit flush (ITG_PROFILE) must produce a parseable profile that
# also caught the serve pipeline on-CPU.
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${PROFILE_SUMMARY}
          ${WORK_DIR}/serve_profile.folded --require serve.
  RESULT_VARIABLE flush_rc
  OUTPUT_VARIABLE flush_out
  ERROR_VARIABLE flush_err)
message(STATUS "exit-flushed profile:\n${flush_out}")
if(NOT flush_rc EQUAL 0)
  message(FATAL_ERROR
          "profile_summary.py on the ITG_PROFILE flush failed "
          "(${flush_rc}):\n${flush_err}")
endif()

# Attribution + contention assertions on the daemon's v8 report: every
# registered view must have been billed CPU, and the tiny ingest queue
# must have produced measurable lock contention.
execute_process(
  COMMAND ${Python3_EXECUTABLE} -c
"import json, sys
doc = json.load(open(sys.argv[1]))
assert doc['schema_version'] >= 8, doc['schema_version']
views = {k: v for k, v in doc['resources'].items() if k.startswith('view.')}
assert views, 'no view.* rows in the resources section'
assert all(v['cpu_nanos'] > 0 for v in views.values()), views
h = doc['metrics']['histograms'].get('contention.serve.ingest_queue.wait_us')
assert h is not None and h['count'] >= 1, h
for k, v in sorted(views.items()):
    print(f'  {k}: cpu={v[\"cpu_nanos\"]}ns pages={v[\"pages_read\"]} '
          f'alloc={v[\"bytes_alloc\"]}B')
print(f'  ingest-queue contention: {h[\"count\"]} waits, {h[\"sum\"]}us')
" ${WORK_DIR}/serve_report.json
  RESULT_VARIABLE attr_rc
  OUTPUT_VARIABLE attr_out
  ERROR_VARIABLE attr_err)
message(STATUS "attribution/contention check:\n${attr_out}")
if(NOT attr_rc EQUAL 0)
  message(FATAL_ERROR
          "resource attribution / contention assertions failed "
          "(${attr_rc}):\n${attr_err}")
endif()

# Full schema validation of both reports (v8: resources section rows are
# cross-checked against the resource.<ctx>.* counters).
foreach(report load_report.json serve_report.json)
  execute_process(
    COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
            --report ${WORK_DIR}/${report}
    RESULT_VARIABLE summary_rc
    OUTPUT_VARIABLE summary_out
    ERROR_VARIABLE summary_err)
  message(STATUS "trace_summary ${report}:\n${summary_out}")
  if(NOT summary_rc EQUAL 0)
    message(FATAL_ERROR
            "trace_summary.py --report ${report} failed "
            "(${summary_rc}):\n${summary_err}")
  endif()
endforeach()
