#!/usr/bin/env python3
"""End-to-end smoke client for the embedded telemetry server.

Usage:
  telemetry_client.py --binary <example_lnga_run> --workdir <scratch>
                      [--partitions 4] [--watch 6] [--watchdog-ms 200]
                      [--inject-stall-ms 800] [--timeout 120]

Spawns the pipeline driver in --watch mode with the telemetry server on
an ephemeral port (picked up through ITG_TELEMETRY_PORTFILE), then:

  1. scrapes /metrics and checks the Prometheus text exposition
     (itg_ prefix, # TYPE lines, cumulative histogram _bucket series
     consistent with _count, _sum present),
  2. polls /statusz until the engine publishes per-partition progress,
     and validates the JSON shape (query, superstep, partitions,
     watchdog, memory sections),
  3. polls /healthz until the injected stall trips the watchdog (503
     with status "stalled"), then confirms the watchdog counter is
     exported on /metrics and that /healthz recovers to 200 once the
     stall clears,
  4. checks the 404 path and the index page,
  5. waits for the driver to exit cleanly.

Uses only the standard library (http.client); exits non-zero with a
diagnostic on the first failed expectation.
"""

import argparse
import http.client
import json
import os
import subprocess
import sys
import time


def fail(msg):
    print(f"telemetry_client: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def get(port, path, timeout=5.0, deadline=None):
    """GET http://127.0.0.1:<port><path> -> (status, content_type, body).

    With a `deadline` (monotonic seconds), transient transport errors —
    connection refused/reset while the single-threaded server is busy
    with another client, or a socket timeout — are retried until the
    deadline instead of flaking the whole smoke test. Without one, the
    first failure is fatal.
    """
    while True:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read().decode("utf-8", errors="replace")
            return resp.status, resp.getheader("Content-Type", ""), body
        except (ConnectionError, OSError) as e:
            if deadline is None or time.monotonic() >= deadline:
                fail(f"GET {path} failed with {e!r} "
                     f"{'past the deadline' if deadline else '(no retry)'}")
            time.sleep(0.05)
        finally:
            conn.close()


def wait_for_port(portfile, proc, deadline):
    """Polls the portfile the server writes its ephemeral port into."""
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"driver exited early (rc {proc.returncode}) before "
                 f"writing {portfile}")
        try:
            with open(portfile, "r", encoding="utf-8") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.02)
    fail(f"timed out waiting for portfile {portfile}")


# ------------------------------------------------------------- /metrics ----

def parse_prometheus(body):
    """Parses text exposition into {name: {labels_string: value}} plus the
    set of (name, type) from # TYPE lines."""
    series = {}
    types = {}
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            expect(len(parts) == 4, f"malformed TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        # <name>{labels} <value>  |  <name> <value>
        if "{" in line:
            name = line[:line.index("{")]
            labels = line[line.index("{"):line.rindex("}") + 1]
            value = line[line.rindex("}") + 1:].strip()
        else:
            name, _, value = line.partition(" ")
            labels = ""
        expect(name.startswith("itg_"),
               f"metric without itg_ prefix: {line!r}")
        for c in name:
            expect(c.isalnum() or c == "_",
                   f"invalid character {c!r} in metric name {name!r}")
        try:
            parsed = float(value)
        except ValueError:
            fail(f"unparseable sample value in line {line!r}")
        series.setdefault(name, {})[labels] = parsed
    return series, types


def check_metrics(port, deadline):
    status, ctype, body = get(port, "/metrics", deadline=deadline)
    expect(status == 200, f"/metrics returned {status}")
    expect("version=0.0.4" in ctype,
           f"/metrics Content-Type missing exposition version: {ctype!r}")
    series, types = parse_prometheus(body)
    expect(series, "/metrics exported no samples")

    for name, kind in types.items():
        if kind != "histogram":
            expect(name in series, f"# TYPE {name} with no sample line")
            continue
        buckets = series.get(name + "_bucket")
        expect(buckets, f"histogram {name} has no _bucket series")
        expect(name + "_sum" in series, f"histogram {name} missing _sum")
        expect(name + "_count" in series, f"histogram {name} missing _count")
        count = series[name + "_count"][""]
        inf_key = [k for k in buckets if 'le="+Inf"' in k]
        expect(inf_key, f"histogram {name} missing +Inf bucket")
        expect(buckets[inf_key[0]] == count,
               f"histogram {name}: +Inf bucket {buckets[inf_key[0]]} != "
               f"count {count}")

        def le_of(labels):
            le = labels.split('le="', 1)[1].split('"', 1)[0]
            return float("inf") if le == "+Inf" else float(le)

        ordered = sorted(buckets.items(), key=lambda kv: le_of(kv[0]))
        last = -1.0
        for labels, v in ordered:
            expect(v >= last,
                   f"histogram {name}: bucket {labels} not cumulative")
            last = v

    return series, types


# ------------------------------------------------------------- /statusz ----

def check_statusz(port, want_partitions, deadline):
    """Polls until the engine has published per-partition telemetry."""
    doc = None
    while time.monotonic() < deadline:
        status, ctype, body = get(port, "/statusz", deadline=deadline)
        expect(status == 200, f"/statusz returned {status}")
        expect("application/json" in ctype,
               f"/statusz Content-Type {ctype!r}")
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as e:
            fail(f"/statusz is not valid JSON: {e}\n{body}")
        if len(doc.get("partitions", [])) >= want_partitions:
            break
        time.sleep(0.05)
    expect(doc is not None, "/statusz never answered")
    expect(isinstance(doc.get("query"), str) and doc["query"],
           "statusz.query missing")
    for key in ("superstep", "delta_seq", "runs_total", "supersteps_total"):
        expect(isinstance(doc.get(key), int), f"statusz.{key} missing")
    wd = doc.get("watchdog")
    expect(isinstance(wd, dict) and "healthy" in wd and "stalls_total" in wd,
           "statusz.watchdog malformed")
    audit = doc.get("audit")
    expect(isinstance(audit, dict), "statusz.audit missing")
    for key in ("state_digest", "digest_timestamp", "audits_total",
                "audit_failures", "last_audit_ok"):
        expect(key in audit, f"statusz.audit missing {key}")
    parts = doc.get("partitions")
    expect(isinstance(parts, list) and len(parts) == want_partitions,
           f"statusz.partitions: want {want_partitions}, got "
           f"{parts if parts is None else len(parts)}")
    for p in parts:
        for key in ("id", "network_bytes", "barrier_wait_ms", "seconds"):
            expect(key in p, f"statusz.partitions entry missing {key}: {p}")
    mem = doc.get("memory")
    expect(isinstance(mem, dict) and mem, "statusz.memory missing/empty")
    for name, entry in mem.items():
        expect("bytes" in entry and "peak_bytes" in entry,
               f"statusz.memory[{name!r}] malformed: {entry}")
    return doc


# ------------------------------------------------------------- /healthz ----

def wait_for_stall(port, deadline):
    """Polls /healthz until the injected stall trips the watchdog."""
    while time.monotonic() < deadline:
        status, _, body = get(port, "/healthz", deadline=deadline)
        if status == 503:
            doc = json.loads(body)
            expect(doc.get("status") == "stalled",
                   f"503 /healthz without stalled status: {body}")
            expect(doc.get("stalls_total", 0) >= 1,
                   f"stalled /healthz with zero stalls_total: {body}")
            # An unhealthy /healthz must say WHY: the reasons array names
            # the failing subsystem (watchdog here; critical alerts when
            # an alert engine is attached).
            reasons = doc.get("reasons")
            expect(isinstance(reasons, list) and reasons,
                   f"503 /healthz without a reasons array: {body}")
            expect(any("watchdog" in r for r in reasons),
                   f"stalled /healthz reasons do not name the watchdog: "
                   f"{reasons}")
            return doc
        expect(status == 200, f"/healthz returned {status}")
        time.sleep(0.05)
    fail("watchdog never tripped on the injected stall")


def wait_for_recovery(port, deadline):
    """The watchdog is not sticky: /healthz goes back to 200 between
    stalled supersteps."""
    while time.monotonic() < deadline:
        status, _, _ = get(port, "/healthz", deadline=deadline)
        if status == 200:
            return
        time.sleep(0.05)
    fail("/healthz never recovered to 200 after the stall cleared")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--watch", type=int, default=6)
    parser.add_argument("--watchdog-ms", type=int, default=200)
    parser.add_argument("--inject-stall-ms", type=int, default=800)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    portfile = os.path.join(args.workdir, "telemetry.port")
    report = os.path.join(args.workdir, "watch_report.json")
    if os.path.exists(portfile):
        os.remove(portfile)

    env = dict(os.environ)
    env["ITG_TELEMETRY_PORTFILE"] = portfile
    env.pop("ITG_TELEMETRY_PORT", None)  # flag below wins; avoid two servers
    cmd = [
        args.binary, "--program", "pr", "--graph", "rmat:8",
        "--partitions", str(args.partitions),
        "--watch", str(args.watch),
        "--watch-delay-ms", "100",
        "--telemetry-port", "0",
        "--watchdog-ms", str(args.watchdog_ms),
        "--inject-stall-ms", str(args.inject_stall_ms),
        "--metrics-json", report,
    ]
    print("telemetry_client: spawning:", " ".join(cmd))
    deadline = time.monotonic() + args.timeout
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT)
    try:
        port = wait_for_port(portfile, proc, deadline)
        print(f"telemetry_client: server up on 127.0.0.1:{port}")

        # The injected stall (superstep 0 of every run) gives the watchdog
        # a trip window on each of the watch iterations.
        stall_doc = wait_for_stall(port, deadline)
        print(f"telemetry_client: watchdog tripped "
              f"(stalls_total={stall_doc['stalls_total']})")
        wait_for_recovery(port, deadline)
        print("telemetry_client: /healthz recovered after the stall")

        statusz = check_statusz(port, args.partitions, deadline)
        print(f"telemetry_client: /statusz OK — query={statusz['query']!r}, "
              f"{len(statusz['partitions'])} partitions, "
              f"memory structures: {sorted(statusz['memory'])}")

        series, types = check_metrics(port, deadline)
        expect("itg_watchdog_stalls_total" in series,
               "watchdog counter missing from /metrics after a stall")
        expect(series["itg_watchdog_stalls_total"][""] >= 1,
               "itg_watchdog_stalls_total is zero after a tripped stall")
        mem_series = [s for s in series if s.startswith("itg_mem_")]
        expect(mem_series, "no itg_mem_* gauges on /metrics")
        part_series = [s for s in series if s.startswith("itg_partition_")]
        expect(part_series, "no itg_partition_* gauges on /metrics")
        histos = [n for n, k in types.items() if k == "histogram"]
        expect(histos, "no histograms on /metrics")
        print(f"telemetry_client: /metrics OK — {len(series)} series, "
              f"{len(histos)} histograms, {len(mem_series)} memory gauges, "
              f"{len(part_series)} partition gauges")

        status, _, _ = get(port, "/no-such-endpoint", deadline=deadline)
        expect(status == 404, f"unknown path returned {status}, want 404")
        status, _, body = get(port, "/", deadline=deadline)
        expect(status == 200 and "/metrics" in body,
               "index page missing endpoint listing")
        print("telemetry_client: routing OK (404 + index)")

        remaining = max(1.0, deadline - time.monotonic())
        try:
            out, _ = proc.communicate(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            out, _ = proc.communicate()
            fail("driver did not exit within the timeout")
        expect(proc.returncode == 0,
               f"driver exited rc {proc.returncode}:\n"
               f"{out.decode('utf-8', errors='replace')}")
        expect(os.path.exists(report), "driver wrote no run report")
        print("telemetry_client: driver exited cleanly; all checks passed")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
