#!/usr/bin/env python3
"""End-to-end smoke client for the standing-query serving daemon.

Usage:
  serve_client.py --serve-binary <example_itg_serve>
                  --lnga-binary <example_lnga_run>
                  --workdir <scratch> [--batches 6] [--timeout 180]
                  [--mode smoke|latency]

In the default mode, drives the full serving story documented in
docs/SERVING.md:

  1. writes a deterministic edge-list graph and spawns the daemon on an
     ephemeral port (picked up through --portfile),
  2. on two separate connections, registers two standing queries
     (PageRank and BFS) with subscribe+snapshot, and mirrors each view's
     audited columns client-side from the snapshot message,
  3. verifies the mirrored state digest (the Python reimplementation of
     common/digest.h below) bit-matches the digest in every message,
  4. ingests --batches valid Δ-batches; after each, both subscriber
     connections must receive a delta message whose after-images update
     the mirror to exactly the digest the server reports, and whose
     trace_id equals the one echoed in the ingest ack (the pipeline
     trace id round-trips end to end),
  5. registers a third query with a deliberately tiny memory-budget
     slice and expects the structured budget_exceeded rejection,
  6. checks the status op (per-query rows, timestamps, counters),
  7. replays the identical base graph + mutation stream through the
     batch driver (example_lnga_run --mutations) and requires its final
     state_digest to be bit-identical to each streamed view's digest —
     the serving daemon is the batch pipeline, made continuous,
  8. sends the shutdown op, waits for a clean exit, and validates the
     run report's "serving" section (stage latency rows, slow-batch
     counter, per-query lag; schema 6..MAX_SCHEMA accepted, and from v7
     the stamped delta-latency percentiles are cross-checked against a
     recomputation from the buckets via tools/histogram_math.py),
  9. separately: spawns the batch driver in --watch mode, SIGINTs it,
     and requires a clean rc-0 exit with a written report (the shared
     clean-stop path).

--mode latency exercises the pipeline-observability surface instead
(the latency_smoke ctest): spawns the daemon with ITG_TRACE and the
telemetry server, registers one view, streams batches while correlating
trace ids, then scrapes /metrics for the stage histograms and lag
gauges, checks the /statusz "pipeline" section, requires lag to drain
to zero, and cross-checks that the per-stage latency sums tile the
end-to-end delta latency. The driving cmake script then validates the
written trace with trace_summary.py --waterfall.

Uses only the standard library; exits non-zero with a diagnostic on the
first failed expectation. Transient connect failures are retried until a
deadline, like telemetry_client.py.
"""

import argparse
import json
import os
import random
import signal
import socket
import struct
import subprocess
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import histogram_math as hm  # noqa: E402
from report_schema import MAX_SCHEMA  # noqa: E402

MASK = (1 << 64) - 1


def fail(msg):
    print(f"serve_client: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


# --------------------------------------------------------------- digests ----
# Python mirror of common/digest.h: splitmix64 finalizer, per-cell hash of
# (vertex, element, IEEE-754 bits), wrapping-add column combine, salted
# attribute fold, Mix64 finalization. Must stay bit-compatible.

def mix64(x):
    x = (x + 0x9E3779B97F4A7C15) & MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK
    return x ^ (x >> 31)


def hash_cell(vertex, element, value):
    bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
    h = mix64(vertex & MASK)
    h = mix64(h ^ ((element + 0x632BE59BD9B4E019) & MASK))
    return mix64(h ^ bits)


def column_digest(values, width):
    col = 0
    for v in range(len(values) // width):
        h = 0
        for i in range(width):
            h ^= hash_cell(v, i, values[v * width + i])
        col = (col + h) & MASK
    return col


def state_digest(attrs):
    """attrs: {name: {"salt": int, "width": int, "values": [float]}}."""
    combined = 0
    for a in attrs.values():
        col = column_digest(a["values"], a["width"])
        combined = (combined + mix64(col ^ mix64(a["salt"]))) & MASK
    return mix64(combined)


# ------------------------------------------------------------- transport ----

class ServeConnection:
    """One NDJSON connection. Requests are synchronous; delta messages
    arriving between responses are buffered in order."""

    def __init__(self, port, deadline):
        last = None
        while time.monotonic() < deadline:
            try:
                self.sock = socket.create_connection(("127.0.0.1", port),
                                                     timeout=10.0)
                break
            except OSError as e:
                last = e
                time.sleep(0.05)
        else:
            fail(f"could not connect to 127.0.0.1:{port}: {last!r}")
        self.file = self.sock.makefile("r", encoding="utf-8")
        self.pending = []  # buffered async messages (deltas)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass

    def _read_message(self, deadline):
        self.sock.settimeout(max(0.1, deadline - time.monotonic()))
        line = self.file.readline()
        if not line:
            fail("server closed the connection mid-conversation")
        return json.loads(line)

    def request(self, req, deadline, expect_types=("ack",)):
        """Sends one request line; returns the first non-delta message,
        buffering any deltas that arrive first."""
        self.sock.sendall((json.dumps(req) + "\n").encode("utf-8"))
        while True:
            msg = self._read_message(deadline)
            if msg.get("type") == "delta":
                self.pending.append(msg)
                continue
            expect(msg.get("type") in expect_types,
                   f"request {req.get('op')}: unexpected reply {msg}")
            return msg

    def next_message(self, deadline, want_type):
        if self.pending:
            msg = self.pending.pop(0)
        else:
            msg = self._read_message(deadline)
        expect(msg.get("type") == want_type,
               f"expected {want_type}, got {msg}")
        return msg


# ----------------------------------------------------------- view mirror ----

class ViewMirror:
    """Client-side replica of one standing view's audited columns,
    maintained from the snapshot + delta stream and digest-checked
    against every message."""

    def __init__(self, name, snapshot):
        self.name = name
        expect(snapshot.get("query") == name,
               f"snapshot for wrong query: {snapshot.get('query')!r}")
        self.num_vertices = snapshot["num_vertices"]
        self.attrs = {}
        for col in snapshot["attrs"]:
            expect(len(col["values"]) == col["width"] * self.num_vertices,
                   f"{name}: snapshot column {col['name']} has "
                   f"{len(col['values'])} values")
            self.attrs[col["name"]] = {
                "salt": col["salt"],
                "width": col["width"],
                "values": list(col["values"]),
            }
        self.check_digest(snapshot, "snapshot")

    def apply_delta(self, delta):
        for change in delta.get("changes", []):
            attr = self.attrs.get(change["name"])
            expect(attr is not None,
                   f"{self.name}: delta for unknown attr {change['name']!r}")
            width = change["width"]
            expect(width == attr["width"],
                   f"{self.name}: width changed for {change['name']!r}")
            values = change["values"]
            for k, v in enumerate(change["vertices"]):
                expect(0 <= v < self.num_vertices,
                       f"{self.name}: delta vertex {v} out of range")
                attr["values"][v * width:(v + 1) * width] = \
                    values[k * width:(k + 1) * width]
        self.check_digest(delta, f"delta seq={delta.get('seq')}")

    def check_digest(self, msg, what):
        want = int(msg["digest"])
        got = state_digest(self.attrs)
        expect(got == want,
               f"{self.name}: mirrored digest {got} != server digest "
               f"{want} after {what}")


# ------------------------------------------------------------ test graph ----

def make_graph(path, num_vertices):
    """A ring plus deterministic chords; returns the edge list."""
    rng = random.Random(0x5EED)
    edges = []
    seen = set()
    for v in range(num_vertices):
        edges.append((v, (v + 1) % num_vertices))
        seen.add(edges[-1])
    for _ in range(num_vertices):
        a, b = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if a != b and (a, b) not in seen:
            seen.add((a, b))
            edges.append((a, b))
    with open(path, "w", encoding="utf-8") as f:
        f.write("# serve_client smoke graph\n")
        for a, b in edges:
            f.write(f"{a} {b}\n")
    return edges


def make_batches(base_edges, num_vertices, count, ops_per_batch=8):
    """Valid Δ-batches against the live edge set: inserts of absent
    pairs, deletes of previously inserted ones."""
    rng = random.Random(0xD17A)
    present = set(base_edges)
    inserted = []
    batches = []
    for _ in range(count):
        inserts, deletes = [], []
        n_del = min(len(inserted), ops_per_batch // 4)
        for _ in range(n_del):
            e = inserted.pop(rng.randrange(len(inserted)))
            deletes.append(e)
            present.discard(e)
        while len(inserts) < ops_per_batch - n_del:
            a, b = rng.randrange(num_vertices), rng.randrange(num_vertices)
            if a == b or (a, b) in present:
                continue
            present.add((a, b))
            inserted.append((a, b))
            inserts.append((a, b))
        batches.append((inserts, deletes))
    return batches


def write_mutations(path, batches):
    """The same stream in example_lnga_run --mutations format (inserts
    before deletes, matching the daemon's per-batch apply order)."""
    with open(path, "w", encoding="utf-8") as f:
        for inserts, deletes in batches:
            for a, b in inserts:
                f.write(f"+ {a} {b}\n")
            for a, b in deletes:
                f.write(f"- {a} {b}\n")
            f.write("commit\n")


# ---------------------------------------------------------------- pieces ----

def wait_for_port(portfile, proc, deadline):
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode("utf-8", errors="replace")
            fail(f"daemon exited early (rc {proc.returncode}):\n{out}")
        try:
            with open(portfile, "r", encoding="utf-8") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.02)
    fail(f"timed out waiting for portfile {portfile}")


def batch_digest(lnga_binary, workdir, program, graph, mutations, deadline,
                 env):
    """Final state_digest of the batch pipeline over the same stream."""
    report = os.path.join(workdir, f"batch_{program.replace(':', '_')}.json")
    cmd = [lnga_binary, "--program", program, "--graph", graph,
           "--mutations", mutations, "--metrics-json", report]
    proc = subprocess.run(cmd, capture_output=True,
                          timeout=max(1.0, deadline - time.monotonic()),
                          env=env)
    expect(proc.returncode == 0,
           f"batch re-run {program} exited rc {proc.returncode}:\n"
           f"{proc.stdout.decode('utf-8', errors='replace')}"
           f"{proc.stderr.decode('utf-8', errors='replace')}")
    with open(report, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return doc["runs"][-1]["state_digest"]


def check_report(path, batches, queries=2):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("schema_version")
    expect(isinstance(version, int) and 6 <= version <= MAX_SCHEMA,
           f"daemon report schema_version {version!r}, "
           f"want 6..{MAX_SCHEMA}")
    serving = doc.get("serving")
    expect(isinstance(serving, dict), "daemon report has no serving section")
    expect(serving.get("standing_queries") == queries,
           f"serving.standing_queries {serving.get('standing_queries')}, "
           f"want {queries}")
    expect(serving.get("ingest_batches") == batches,
           f"serving.ingest_batches {serving.get('ingest_batches')}, "
           f"want {batches}")
    expect("backpressure_stalls" in serving,
           "serving.backpressure_stalls missing")
    expect("slow_batches" in serving, "serving.slow_batches missing (v6)")
    stages = {row["stage"]: row
              for row in serving.get("stage_latency_us", [])}
    for stage in ("validate", "queue_wait", "apply"):
        expect(stage in stages,
               f"serving.stage_latency_us missing stage {stage!r}")
        expect(stages[stage]["count"] == batches,
               f"stage {stage!r} count {stages[stage]['count']}, "
               f"want {batches}")
    rows = serving.get("queries", [])
    expect(len(rows) == queries,
           f"serving.queries has {len(rows)} rows, want {queries}")
    for row in rows:
        name = row.get("name")
        expect(row.get("timestamp") == batches,
               f"serving row {name!r} at timestamp "
               f"{row.get('timestamp')}, want {batches}")
        hist = row.get("delta_latency_us", {})
        expect(hist.get("count") == batches,
               f"serving row {name!r} latency count "
               f"{hist.get('count')}, want {batches}")
        expect(isinstance(hist.get("buckets"), list) and hist["buckets"],
               f"serving row {name!r} has no latency buckets")
        if version >= 7:
            # The v7 percentile stamps must be exactly what the buckets
            # imply (histogram_math.py is the Python mirror of the C++
            # helper that computed them).
            sparse = [(int(b[0]), int(b[1])) for b in hist["buckets"]]
            for field, p in (("p50", 50.0), ("p95", 95.0),
                             ("p99", 99.0), ("p999", 99.9)):
                want = hm.percentile_upper_bound(sparse, p,
                                                 hm.HISTOGRAM_SUB_BITS)
                expect(hist.get(field) == want,
                       f"serving row {name!r} {field} {hist.get(field)} "
                       f"disagrees with its buckets (want {want})")
        # Per-view stage rows exist, and the view is fully caught up
        # after the drain that precedes report writing.
        for stage in (f"view_run.{name}", f"stream_flush.{name}"):
            expect(stage in stages,
                   f"serving.stage_latency_us missing stage {stage!r}")
        expect(row.get("lag_batches") == 0 and row.get("lag_us") == 0,
               f"serving row {name!r} still lagging after drain: "
               f"lag_batches={row.get('lag_batches')} "
               f"lag_us={row.get('lag_us')}")
    return serving


def check_sigint_watch(lnga_binary, workdir, deadline, env):
    """--watch must treat SIGINT as a clean stop: rc 0, report written."""
    report = os.path.join(workdir, "watch_report.json")
    cmd = [lnga_binary, "--program", "pr", "--graph", "rmat:6",
           "--watch", "1000", "--watch-delay-ms", "50",
           "--metrics-json", report]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, env=env)
    try:
        # Let it get through the one-shot and a few watch batches.
        time.sleep(3.0)
        expect(proc.poll() is None, "watch driver exited before SIGINT")
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=max(1.0,
                                              deadline - time.monotonic()))
        expect(proc.returncode == 0,
               f"watch driver rc {proc.returncode} after SIGINT:\n"
               f"{out.decode('utf-8', errors='replace')}")
        expect(b"clean stop" in out,
               "watch driver did not report a clean stop")
        expect(os.path.exists(report),
               "watch driver wrote no report after SIGINT")
        with open(report, "r", encoding="utf-8") as f:
            json.load(f)  # must be complete, valid JSON
        print("serve_client: SIGINT clean-stop OK (rc 0, report written)")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


# ---------------------------------------------------------- latency mode ----

def scrape(url, deadline):
    """GET `url`, retrying transient connect failures until `deadline`
    (telemetry_client.py's idiom): the telemetry listener can lag the
    portfile write by a beat, and a scrape racing it must not flake."""
    while True:
        try:
            req = urllib.request.Request(url)
            with urllib.request.urlopen(
                    req,
                    timeout=max(0.5, deadline - time.monotonic())) as resp:
                return resp.read().decode("utf-8", errors="replace")
        except urllib.error.HTTPError as e:
            fail(f"scrape {url}: HTTP {e.code}")
        except (urllib.error.URLError, ConnectionError, OSError) as e:
            if time.monotonic() >= deadline:
                fail(f"scrape {url} failed past deadline: {e}")
            time.sleep(0.05)


def parse_prometheus(text):
    """{metric_name: value} for plain sample lines (no labels)."""
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#") or "{" in line:
            continue
        parts = line.split()
        if len(parts) == 2:
            try:
                values[parts[0]] = float(parts[1])
            except ValueError:
                pass
    return values


def run_latency_mode(args):
    """The latency_smoke body: trace-id propagation, /metrics stage
    histograms and lag gauges, the /statusz pipeline section, the stage
    sums tiling the end-to-end latency, and an ITG_TRACE file with flow
    events (validated afterwards by trace_summary.py --waterfall)."""
    os.makedirs(args.workdir, exist_ok=True)
    deadline = time.monotonic() + args.timeout
    graph = os.path.join(args.workdir, "edges.txt")
    portfile = os.path.join(args.workdir, "serve.port")
    tportfile = os.path.join(args.workdir, "telemetry.port")
    report = os.path.join(args.workdir, "serve_report.json")
    trace = os.path.join(args.workdir, "serve_trace.json")
    for stale in (portfile, tportfile, trace):
        if os.path.exists(stale):
            os.remove(stale)

    base_edges = make_graph(graph, args.num_vertices)
    batches = make_batches(base_edges, args.num_vertices, args.batches)

    env = dict(os.environ)
    env["ITG_THREADS"] = "1"
    env["ITG_TRACE"] = trace
    env["ITG_TELEMETRY_PORTFILE"] = tportfile
    env.pop("ITG_TELEMETRY_PORT", None)

    # A generous slow-batch threshold: the flag path is exercised but no
    # batch of this toy stream should trip it (asserted below).
    cmd = [args.serve_binary, "--graph", graph, "--port", "0",
           "--portfile", portfile, "--telemetry-port", "0",
           "--slow-batch-ms", "60000",
           "--scratch", os.path.join(args.workdir, "scratch"),
           "--metrics-json", report]
    print("serve_client: spawning:", " ".join(cmd))
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, env=env)
    conns = []
    try:
        port = wait_for_port(portfile, proc, deadline)
        tport = wait_for_port(tportfile, proc, deadline)
        print(f"serve_client: daemon up on 127.0.0.1:{port}, telemetry "
              f"on 127.0.0.1:{tport}")

        sub = ServeConnection(port, deadline)
        conns.append(sub)
        ack = sub.request({"op": "register", "query": "q1",
                           "program": "pr", "subscribe": True}, deadline)
        expect(ack.get("op") == "register", f"malformed register ack: {ack}")

        ingester = ServeConnection(port, deadline)
        conns.append(ingester)
        seen_ids = set()
        for i, (inserts, deletes) in enumerate(batches, start=1):
            ack = ingester.request(
                {"op": "ingest",
                 "inserts": [list(e) for e in inserts],
                 "deletes": [list(e) for e in deletes]}, deadline)
            trace_id = ack.get("trace_id")
            expect(isinstance(trace_id, str) and trace_id.isdigit()
                   and int(trace_id) != 0,
                   f"ingest ack carries no pipeline trace_id: {ack}")
            expect(trace_id not in seen_ids,
                   f"trace_id {trace_id} reused across batches")
            seen_ids.add(trace_id)
            delta = sub.next_message(deadline, "delta")
            expect(delta.get("seq") == i,
                   f"delta seq {delta.get('seq')}, want {i}")
            expect(delta.get("trace_id") == trace_id,
                   f"delta trace_id {delta.get('trace_id')!r} != ack "
                   f"trace_id {trace_id!r}")
            # Space the batches out a little so queue_wait/lag_us get
            # non-degenerate samples.
            time.sleep(0.002)
        n = len(batches)
        print(f"serve_client: {n} batches streamed, {len(seen_ids)} "
              f"distinct trace ids round-tripped")

        # Every delta was received, so the pipeline is quiescent: the
        # stage histograms must have one sample per batch and the view
        # must report zero lag.
        metrics = parse_prometheus(
            scrape(f"http://127.0.0.1:{tport}/metrics", deadline))
        for stage in ("validate", "queue_wait", "apply"):
            key = f"itg_serve_stage_latency_us_{stage}_count"
            expect(metrics.get(key) == n,
                   f"/metrics {key} = {metrics.get(key)}, want {n}")
        for stage in ("view_run_q1", "stream_flush_q1"):
            key = f"itg_serve_stage_latency_us_{stage}_count"
            expect(metrics.get(key) == n,
                   f"/metrics {key} = {metrics.get(key)}, want {n}")
        expect(metrics.get("itg_serve_view_lag_batches_q1") == 0,
               f"/metrics itg_serve_view_lag_batches_q1 = "
               f"{metrics.get('itg_serve_view_lag_batches_q1')}, want 0")
        expect(metrics.get("itg_serve_view_lag_us_q1") == 0,
               f"/metrics itg_serve_view_lag_us_q1 = "
               f"{metrics.get('itg_serve_view_lag_us_q1')}, want 0")
        expect(metrics.get("itg_serve_slow_batches") == 0,
               f"/metrics itg_serve_slow_batches = "
               f"{metrics.get('itg_serve_slow_batches')}, want 0")
        print("serve_client: /metrics stage histograms + lag gauges OK")

        statusz = json.loads(
            scrape(f"http://127.0.0.1:{tport}/statusz", deadline))
        serving = statusz.get("serving")
        expect(isinstance(serving, dict), "/statusz has no serving member")
        pipeline = serving.get("pipeline")
        expect(isinstance(pipeline, dict),
               "/statusz serving has no pipeline section")
        for stage in ("validate", "queue_wait", "apply"):
            expect(stage in pipeline.get("stages", {}),
                   f"/statusz pipeline.stages missing {stage!r}")
        q1 = pipeline.get("views", {}).get("q1")
        expect(isinstance(q1, dict) and "lag_batches" in q1
               and "view_run" in q1,
               f"/statusz pipeline.views.q1 malformed: {q1!r}")
        print("serve_client: /statusz pipeline section OK")

        # Status rows carry the staleness fields.
        status = ingester.request({"op": "status"}, deadline,
                                  expect_types=("status",))
        rows = {row["query"]: row for row in status.get("queries", [])}
        expect("q1" in rows, f"status rows {sorted(rows)}, want q1")
        for field in ("lag_batches", "lag_us"):
            expect(isinstance(rows["q1"].get(field), int),
                   f"status row q1 missing {field}: {rows['q1']}")
        expect(rows["q1"]["lag_batches"] == 0,
               f"status row q1 lag_batches {rows['q1']['lag_batches']} "
               f"after quiescence, want 0")
        print("serve_client: status staleness fields OK")

        ack = ingester.request({"op": "shutdown"}, deadline)
        expect(ack.get("op") == "shutdown", f"malformed shutdown ack: {ack}")
        out, _ = proc.communicate(timeout=max(1.0,
                                              deadline - time.monotonic()))
        expect(proc.returncode == 0,
               f"daemon rc {proc.returncode} after shutdown op:\n"
               f"{out.decode('utf-8', errors='replace')}")

        serving = check_report(report, n, queries=1)
        # With a single view the five stages tile ingest->flush exactly
        # (shared clock reads at every boundary); only µs truncation may
        # leak, bounded well under 16us per batch per stage boundary.
        stage_sum = sum(row["sum"] for row in serving["stage_latency_us"])
        e2e = serving["queries"][0]["delta_latency_us"]
        e2e_sum = e2e["sum"]
        tolerance = 16 * n
        expect(abs(stage_sum - e2e_sum) <= tolerance,
               f"stage latency sums {stage_sum}us do not tile the "
               f"end-to-end delta latency {e2e_sum}us "
               f"(tolerance {tolerance}us)")
        expect(serving["slow_batches"] == 0,
               f"report slow_batches {serving['slow_batches']}, want 0")
        # The v7 percentile stamps (already cross-checked against the
        # buckets in check_report) must be ordered and live: a quiescent
        # pipeline that streamed n deltas has a nonzero tail.
        expect(e2e["p50"] <= e2e["p95"] <= e2e["p99"] <= e2e["p999"],
               f"report percentiles not monotone: {e2e}")
        expect(e2e["p99"] > 0, "report p99 is zero after streaming deltas")
        print(f"serve_client: run report v7 OK; stage sums {stage_sum}us "
              f"tile end-to-end {e2e_sum}us (±{tolerance}us); delta "
              f"latency p50 {e2e['p50']}us p99 {e2e['p99']}us "
              f"p99.9 {e2e['p999']}us")
        expect(os.path.exists(trace),
               f"daemon wrote no ITG_TRACE file at {trace}")
    finally:
        for conn in conns:
            conn.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    print("serve_client: latency mode checks passed")


# ------------------------------------------------------------------ main ----

def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--serve-binary", required=True)
    parser.add_argument("--lnga-binary", required=True)
    parser.add_argument("--workdir", required=True)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--num-vertices", type=int, default=48)
    parser.add_argument("--timeout", type=float, default=180.0)
    parser.add_argument("--mode", choices=("smoke", "latency"),
                        default="smoke")
    args = parser.parse_args()

    if args.mode == "latency":
        run_latency_mode(args)
        return

    os.makedirs(args.workdir, exist_ok=True)
    deadline = time.monotonic() + args.timeout
    graph = os.path.join(args.workdir, "edges.txt")
    mutations = os.path.join(args.workdir, "mutations.txt")
    portfile = os.path.join(args.workdir, "serve.port")
    report = os.path.join(args.workdir, "serve_report.json")
    if os.path.exists(portfile):
        os.remove(portfile)

    base_edges = make_graph(graph, args.num_vertices)
    batches = make_batches(base_edges, args.num_vertices, args.batches)
    write_mutations(mutations, batches)

    # Pin the worker count so the streamed and batch runs execute the
    # same plan the same way (digests are compared bit-exactly).
    env = dict(os.environ)
    env["ITG_THREADS"] = "1"
    env.pop("ITG_TELEMETRY_PORT", None)
    env.pop("ITG_TELEMETRY_PORTFILE", None)
    env.pop("ITG_TRACE", None)

    cmd = [args.serve_binary, "--graph", graph, "--port", "0",
           "--portfile", portfile, "--max-queries", "3",
           "--scratch", os.path.join(args.workdir, "scratch"),
           "--metrics-json", report]
    print("serve_client: spawning:", " ".join(cmd))
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, env=env)
    conns = []
    try:
        port = wait_for_port(portfile, proc, deadline)
        print(f"serve_client: daemon up on 127.0.0.1:{port}")

        # Two standing queries on two connections, both subscribed with
        # snapshots: q1 = PageRank, q2 = BFS from vertex 0.
        mirrors = {}
        for name, program in (("q1", "pr"), ("q2", "bfs:0")):
            conn = ServeConnection(port, deadline)
            conns.append(conn)
            ack = conn.request({"op": "register", "query": name,
                                "program": program, "subscribe": True,
                                "snapshot": True}, deadline)
            expect(ack.get("op") == "register" and ack.get("query") == name,
                   f"malformed register ack: {ack}")
            snapshot = conn.next_message(deadline, "snapshot")
            mirrors[name] = ViewMirror(name, snapshot)
            print(f"serve_client: {name} ({program}) registered, snapshot "
                  f"digest verified ({len(snapshot['attrs'])} attrs)")

        # Third registration with a deliberately tiny budget slice must
        # be rejected with the structured budget_exceeded error.
        probe = ServeConnection(port, deadline)
        conns.append(probe)
        err = probe.request({"op": "register", "query": "q3",
                             "program": "pr", "budget_bytes": "1024"},
                            deadline, expect_types=("error",))
        expect(err.get("code") == "budget_exceeded",
               f"over-budget register: code {err.get('code')!r}, "
               f"want budget_exceeded: {err}")
        print("serve_client: over-budget registration rejected "
              "(budget_exceeded)")

        # Stream the Δ-batches; each subscriber must mirror every view
        # to the server's digest, bit for bit.
        ingester = ServeConnection(port, deadline)
        conns.append(ingester)
        for i, (inserts, deletes) in enumerate(batches, start=1):
            ack = ingester.request(
                {"op": "ingest",
                 "inserts": [list(e) for e in inserts],
                 "deletes": [list(e) for e in deletes]}, deadline)
            expect(ack.get("op") == "ingest", f"malformed ingest ack: {ack}")
            trace_id = ack.get("trace_id")
            expect(isinstance(trace_id, str) and trace_id.isdigit()
                   and int(trace_id) != 0,
                   f"ingest ack carries no pipeline trace_id: {ack}")
            for (name, conn) in (("q1", conns[0]), ("q2", conns[1])):
                delta = conn.next_message(deadline, "delta")
                expect(delta.get("query") == name,
                       f"delta for {delta.get('query')!r} on {name}'s "
                       f"connection")
                expect(delta.get("seq") == i,
                       f"{name}: delta seq {delta.get('seq')}, want {i}")
                expect(delta.get("trace_id") == trace_id,
                       f"{name}: delta trace_id {delta.get('trace_id')!r} "
                       f"!= ingest ack trace_id {trace_id!r}")
                mirrors[name].apply_delta(delta)
        print(f"serve_client: {len(batches)} batches streamed; "
              f"all ΔQ digests verified on both views, trace ids "
              f"round-tripped ack->delta")

        # Status rows agree with the mirrors.
        status = ingester.request({"op": "status"}, deadline,
                                  expect_types=("status",))
        rows = {row["query"]: row for row in status.get("queries", [])}
        expect(set(rows) == {"q1", "q2"},
               f"status queries {sorted(rows)}, want ['q1', 'q2']")
        for name, mirror in mirrors.items():
            expect(int(rows[name]["digest"]) == state_digest(mirror.attrs),
                   f"status digest for {name} disagrees with the mirror")
            expect(rows[name]["timestamp"] == len(batches),
                   f"status timestamp for {name}: "
                   f"{rows[name]['timestamp']}, want {len(batches)}")
            expect(rows[name]["subscribers"] == 1,
                   f"status subscribers for {name}: "
                   f"{rows[name]['subscribers']}, want 1")
        print("serve_client: status rows OK")

        # The continuous pipeline must land exactly where the batch
        # pipeline lands on the identical stream.
        for name, program in (("q1", "pr"), ("q2", "bfs:0")):
            want = batch_digest(args.lnga_binary, args.workdir, program,
                                graph, mutations, deadline, env)
            got = state_digest(mirrors[name].attrs)
            expect(got == want,
                   f"{name}: streamed digest {got} != batch-pipeline "
                   f"digest {want}")
        print("serve_client: streamed state bit-identical to the batch "
              "pipeline for both programs")

        # Graceful shutdown over the wire.
        ack = ingester.request({"op": "shutdown"}, deadline)
        expect(ack.get("op") == "shutdown", f"malformed shutdown ack: {ack}")
        out, _ = proc.communicate(timeout=max(1.0,
                                              deadline - time.monotonic()))
        expect(proc.returncode == 0,
               f"daemon rc {proc.returncode} after shutdown op:\n"
               f"{out.decode('utf-8', errors='replace')}")
        serving = check_report(report, len(batches))
        print(f"serve_client: daemon drained cleanly; run report OK "
              f"(serving={json.dumps({k: serving[k] for k in ('standing_queries', 'ingest_batches', 'backpressure_stalls')})})")
    finally:
        for conn in conns:
            conn.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    check_sigint_watch(args.lnga_binary, args.workdir, deadline, env)
    print("serve_client: all checks passed")


if __name__ == "__main__":
    main()
