# ctest driver for the live-telemetry smoke test (see top-level
# CMakeLists.txt): tools/telemetry_client.py spawns example_lnga_run in
# --watch mode with the embedded HTTP server on an ephemeral port, then
# scrapes /metrics, /statusz and /healthz, asserts the stall watchdog
# trips on the injected superstep stall and recovers, and waits for a
# clean driver exit.
#
# Inputs: -DLNGA_RUN=<binary> -DPython3_EXECUTABLE=<python3>
#         -DTELEMETRY_CLIENT=<telemetry_client.py> -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${TELEMETRY_CLIENT}
          --binary ${LNGA_RUN} --workdir ${WORK_DIR}
          --partitions 4 --watch 6 --watchdog-ms 200 --inject-stall-ms 800
  RESULT_VARIABLE client_rc
  OUTPUT_VARIABLE client_out
  ERROR_VARIABLE client_err)
message(STATUS "telemetry_client output:\n${client_out}")
if(NOT client_rc EQUAL 0)
  message(FATAL_ERROR
          "telemetry_client.py failed (${client_rc}):\n${client_err}")
endif()
