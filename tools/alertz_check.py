#!/usr/bin/env python3
"""Validation client for the alert engine's /alertz surface.

Usage:
  alertz_check.py --port-file <file> [--timeout 60]
                  [--expect-rule NAME]...
                  [--wait-firing NAME] [--wait-resolved NAME]
                  [--check-bundle-dir DIR]

Talks to a live daemon (examples/itg_serve.cc with alerting enabled)
whose telemetry port was written to --port-file, and checks the whole
alerting surface, in this order:

  1. GET /alertz must be valid JSON of the documented shape (enabled,
     period_ms, evaluations, alerts[] rows with name / severity / state /
     value / threshold / fires / flaps / expr), and /alertz?format=text
     must render every rule name.
  2. --expect-rule NAME (repeatable): the rule must exist.
  3. --wait-firing NAME: poll until the rule reaches state "firing"
     (fires >= 1); then the Prometheus ALERTS{alertname=...} series must
     appear on /metrics, and — for a critical rule — /healthz must be
     503 with a reasons entry naming the alert.
  4. --check-bundle-dir DIR: some incident_*/ bundle under DIR must hold
     all five artifacts (flightrecorder.txt, metrics.json, statusz.json,
     timeseries.json, profile.txt) plus the incident.json manifest; the
     JSON artifacts must parse.
  5. --wait-resolved NAME: poll until the rule leaves firing (state
     "resolved" or, post-cooldown, "inactive").

Uses only the standard library; exits non-zero with a diagnostic on the
first failed expectation (the alert_smoke ctest gates on it).
"""

import argparse
import http.client
import json
import os
import sys
import time

VALID_SEVERITIES = ("info", "warn", "critical")
VALID_STATES = ("inactive", "pending", "firing", "resolved")


def fail(msg):
    print(f"alertz_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def get(port, path, deadline, timeout=5.0):
    while True:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read().decode("utf-8", errors="replace")
            return resp.status, body
        except (ConnectionError, OSError) as e:
            if time.monotonic() >= deadline:
                fail(f"GET {path} failed with {e!r} past the deadline")
            time.sleep(0.05)
        finally:
            conn.close()


def read_port(port_file, deadline):
    while time.monotonic() < deadline:
        try:
            with open(port_file, "r", encoding="utf-8") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.02)
    fail(f"timed out waiting for port file {port_file}")


def fetch_alertz(port, deadline):
    status, body = get(port, "/alertz", deadline)
    expect(status == 200, f"/alertz returned {status}: {body}")
    try:
        doc = json.loads(body)
    except json.JSONDecodeError as e:
        fail(f"/alertz is not valid JSON: {e}\n{body}")
    expect(doc.get("enabled") is True, f"/alertz enabled != true: {body}")
    for field in ("period_ms", "evaluations"):
        expect(isinstance(doc.get(field), int) and doc[field] >= 0,
               f"/alertz.{field} missing or negative")
    alerts = doc.get("alerts")
    expect(isinstance(alerts, list), "/alertz.alerts is not a list")
    for row in alerts:
        name = row.get("name", "?")
        expect(isinstance(row.get("name"), str) and row["name"],
               f"/alertz row without a name: {row}")
        expect(row.get("severity") in VALID_SEVERITIES,
               f"rule {name!r}: bad severity {row.get('severity')!r}")
        expect(row.get("state") in VALID_STATES,
               f"rule {name!r}: bad state {row.get('state')!r}")
        for field in ("fires", "flaps", "since_ms"):
            expect(isinstance(row.get(field), int) and row[field] >= 0,
                   f"rule {name!r}: {field} missing or negative")
        for field in ("value", "threshold"):
            expect(isinstance(row.get(field), (int, float)),
                   f"rule {name!r}: {field} is not a number")
        expect(isinstance(row.get("expr"), str) and row["expr"],
               f"rule {name!r}: expr missing")
    return doc


def rule_by_name(doc, name):
    for row in doc["alerts"]:
        if row["name"] == name:
            return row
    fail(f"rule {name!r} not present on /alertz "
         f"(have: {[r['name'] for r in doc['alerts']]})")


def wait_for_state(port, name, states, deadline, what):
    last = None
    while time.monotonic() < deadline:
        doc = fetch_alertz(port, deadline)
        row = rule_by_name(doc, name)
        if row["state"] in states:
            return row
        last = row
        time.sleep(0.1)
    fail(f"rule {name!r} never became {what} "
         f"(last: {json.dumps(last)})")


def check_text_rendering(port, doc, deadline):
    status, text = get(port, "/alertz?format=text", deadline)
    expect(status == 200, f"/alertz?format=text returned {status}")
    for row in doc["alerts"]:
        expect(row["name"] in text,
               f"/alertz?format=text missing rule {row['name']!r}:\n{text}")


def check_firing_surfaces(port, row, deadline):
    """After a rule fires, the other surfaces must agree with /alertz."""
    status, metrics = get(port, "/metrics", deadline)
    expect(status == 200, f"/metrics returned {status}")
    needle = f'ALERTS{{alertname="{row["name"]}"'
    expect(needle in metrics,
           f"firing rule {row['name']!r} has no ALERTS series on /metrics")
    expect("itg_alerts_fired_total" in metrics,
           "alerts.fired_total counter missing from /metrics after a fire")
    if row["severity"] == "critical":
        status, body = get(port, "/healthz", deadline)
        expect(status == 503,
               f"/healthz returned {status} with a critical alert firing")
        doc = json.loads(body)
        expect(doc.get("status") == "alerting",
               f"/healthz status {doc.get('status')!r}, want 'alerting'")
        reasons = doc.get("reasons", [])
        expect(any(row["name"] in r for r in reasons),
               f"/healthz reasons do not name {row['name']!r}: {reasons}")


def check_bundle_dir(root):
    expect(os.path.isdir(root), f"bundle dir {root} does not exist")
    bundles = sorted(d for d in os.listdir(root)
                     if d.startswith("incident_")
                     and os.path.isdir(os.path.join(root, d)))
    expect(bundles, f"no incident_*/ bundle under {root}")
    artifacts = ("flightrecorder.txt", "metrics.json", "statusz.json",
                 "timeseries.json", "profile.txt")
    checked = os.path.join(root, bundles[0])
    for name in artifacts + ("incident.json",):
        path = os.path.join(checked, name)
        expect(os.path.isfile(path), f"bundle missing artifact {name}")
        expect(os.path.getsize(path) > 0, f"bundle artifact {name} is empty")
    for name in ("metrics.json", "statusz.json", "incident.json"):
        with open(os.path.join(checked, name), "r", encoding="utf-8") as f:
            try:
                json.load(f)
            except json.JSONDecodeError as e:
                fail(f"bundle artifact {name} is not valid JSON: {e}")
    with open(os.path.join(checked, "incident.json"), "r",
              encoding="utf-8") as f:
        manifest = json.load(f)
    expect(manifest.get("reason"), "incident.json has no reason")
    expect(sorted(manifest.get("artifacts", [])) == sorted(artifacts),
           f"incident.json artifact list mismatch: {manifest}")
    return checked, manifest


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port-file", required=True)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--expect-rule", action="append", default=[])
    parser.add_argument("--wait-firing")
    parser.add_argument("--wait-resolved")
    parser.add_argument("--check-bundle-dir")
    args = parser.parse_args()

    deadline = time.monotonic() + args.timeout
    port = read_port(args.port_file, deadline)

    doc = fetch_alertz(port, deadline)
    check_text_rendering(port, doc, deadline)
    print(f"alertz_check: /alertz OK — {len(doc['alerts'])} rules, "
          f"{doc['evaluations']} evaluations every {doc['period_ms']}ms")

    for name in args.expect_rule:
        rule_by_name(doc, name)
        print(f"alertz_check: rule {name!r} present")

    if args.wait_firing:
        row = wait_for_state(port, args.wait_firing, ("firing",), deadline,
                             "firing")
        expect(row["fires"] >= 1,
               f"firing rule {args.wait_firing!r} with fires == 0")
        print(f"alertz_check: {args.wait_firing!r} FIRING "
              f"(value={row['value']:g}, threshold={row['threshold']:g}, "
              f"fires={row['fires']})")
        check_firing_surfaces(port, row, deadline)
        print("alertz_check: /metrics ALERTS series and /healthz agree")

    if args.check_bundle_dir:
        bundle, manifest = check_bundle_dir(args.check_bundle_dir)
        print(f"alertz_check: bundle {bundle} complete "
              f"(reason={manifest['reason']!r}, all 5 artifacts + manifest)")

    if args.wait_resolved:
        row = wait_for_state(port, args.wait_resolved,
                             ("resolved", "inactive"), deadline, "resolved")
        print(f"alertz_check: {args.wait_resolved!r} resolved "
              f"(state={row['state']!r}, fires={row['fires']}, "
              f"flaps={row['flaps']})")

    print("alertz_check: all checks passed")


if __name__ == "__main__":
    main()
