#!/usr/bin/env bash
# ThreadSanitizer job for the parallel walk executor: builds a separate
# tree with -fsanitize=thread and runs the thread-pool, engine and
# parallel-determinism tests with an 8-worker pool so the work-stealing
# and shared-buffer-pool paths actually race-test.
#
# Usage: tools/run_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DITG_TSAN=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR" -j --target \
  thread_pool_test parallel_determinism_test engine_test \
  integration_incremental_test

# halt_on_error: fail the job on the first data race.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
export ITG_THREADS=8

ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R '(thread_pool|parallel_determinism|engine|integration_incremental)'
