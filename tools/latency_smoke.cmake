# ctest driver for the serving pipeline-observability smoke test (see
# top-level CMakeLists.txt): tools/serve_client.py --mode latency spawns
# example_itg_serve with ITG_TRACE and the telemetry server, registers a
# standing PageRank view, streams delta batches while asserting the
# pipeline trace id round-trips ingest ack -> delta message, scrapes
# /metrics for the per-stage latency histograms and per-view lag gauges
# (zero after quiescence), checks the /statusz "pipeline" section and the
# status op's staleness fields, and validates the schema-v6 run report
# (stage sums must tile the end-to-end delta latency). Afterwards
# trace_summary.py --waterfall must find flow-linked ingest->notify
# events in the written trace, and report_diff-style schema validation
# runs over the report.
#
# Inputs: -DITG_SERVE=<binary> -DLNGA_RUN=<binary>
#         -DPython3_EXECUTABLE=<python3>
#         -DSERVE_CLIENT=<serve_client.py>
#         -DTRACE_SUMMARY=<trace_summary.py> -DWORK_DIR=<scratch>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${Python3_EXECUTABLE} ${SERVE_CLIENT} --mode latency
          --serve-binary ${ITG_SERVE} --lnga-binary ${LNGA_RUN}
          --workdir ${WORK_DIR} --batches 6
  RESULT_VARIABLE client_rc
  OUTPUT_VARIABLE client_out
  ERROR_VARIABLE client_err)
message(STATUS "serve_client (latency) output:\n${client_out}")
if(NOT client_rc EQUAL 0)
  message(FATAL_ERROR
          "serve_client.py --mode latency failed (${client_rc}):\n"
          "${client_err}")
endif()

# The trace must contain flow-linked pipeline events (--waterfall exits
# non-zero when none are present) and the report must pass the full v6
# schema validation.
execute_process(
  COMMAND ${Python3_EXECUTABLE} ${TRACE_SUMMARY}
          --trace ${WORK_DIR}/serve_trace.json --waterfall
          --report ${WORK_DIR}/serve_report.json
  RESULT_VARIABLE summary_rc
  OUTPUT_VARIABLE summary_out
  ERROR_VARIABLE summary_err)
message(STATUS "trace_summary output:\n${summary_out}")
if(NOT summary_rc EQUAL 0)
  message(FATAL_ERROR
          "trace_summary.py failed (${summary_rc}):\n${summary_err}")
endif()
