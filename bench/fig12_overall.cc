// Figure 12: overall performance on the real-graph series, iTurboGraph
// vs. the Differential-Dataflow-style baseline, all six algorithms.
//
// Substitution: RMAT graphs of growing scale stand in for TWT → GSH15 →
// CW12 → HL (§2 of DESIGN.md). DD runs under a fixed memory budget; "O"
// marks out-of-memory, as in the paper. Expected shape: comparable or
// slightly-faster DD on small Group 1/2 inputs, DD OOM as graphs grow
// (immediately for TC/LCC), iTurboGraph completing everywhere with
// incremental speedups that grow with the graph.
#include <cstdio>
#include <string>

#include "baselines/ddflow.h"
#include "bench/bench_util.h"
#include "common/memory_budget.h"
#include "gen/workload.h"

namespace itg {
namespace {

using bench::CheckOk;

constexpr size_t kBatch = 100;
constexpr int kSupersteps = 10;
constexpr int kLabels = 8;
// DD's arrangement budget: a "cluster memory" stand-in that the larger
// graphs of the series exceed (scaled down with the graphs, as the
// paper's 25 x 64 GB is to its TB-scale inputs).
constexpr uint64_t kDdBudget = 24ull * 1024 * 1024;

struct Cell {
  double oneshot = -1;
  double incremental = -1;
  bool oom = false;
};

void PrintRow(const char* system, const char* graph, const Cell& c) {
  if (c.oom) {
    std::printf("%-8s %-8s %12s %14s\n", system, graph, "O", "O");
  } else {
    std::printf("%-8s %-8s %12.4f %14.4f\n", system, graph, c.oneshot,
                c.incremental);
  }
}

Cell RunItg(const std::string& source, int scale, bool symmetric,
            int fixed_supersteps) {
  HarnessOptions options;
  options.path = bench::TempPath("fig12");
  options.symmetric = symmetric;
  options.engine.fixed_supersteps = fixed_supersteps;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                         GenerateRmat(scale), options));
  auto times = CheckOk(bench::RunPipeline(harness.get(), kBatch,
                                          bench::kDefaultInsertRatio));
  return {times.oneshot_seconds, times.incremental_avg_seconds, false};
}

/// Meters of one thread-scaling run (the one-shot execution, where the
/// walk-enumeration supersteps dominate; the |dG|=100 incremental steps
/// are legitimately serial — their Δ-walks are tiny).
struct ScalingRow {
  double wall = 0;        ///< measured seconds
  uint64_t busy = 0;      ///< sum over workers of in-task CPU nanos
  uint64_t critical = 0;  ///< sum over pool batches of modeled makespan
  uint64_t steals = 0;
  uint64_t tasks = 0;
};

// Fine shards (one task per 16-vertex window block) so stealing can
// balance the RMAT hub skew; applied identically at every thread count,
// so the comparison is strong scaling at a fixed configuration.
constexpr int kScalingWindow = 16;

ScalingRow RunScaling(const std::string& source, int scale, bool symmetric,
                      int fixed_supersteps, int threads) {
  HarnessOptions options;
  options.path = bench::TempPath("fig12_threads");
  options.symmetric = symmetric;
  options.engine.fixed_supersteps = fixed_supersteps;
  options.engine.num_threads = threads;
  options.engine.window_vertices = kScalingWindow;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                         GenerateRmat(scale), options));
  CheckOk(harness->RunOneShot());
  const RunStats& st = harness->engine().last_stats();
  return {st.seconds, st.busy_nanos, st.critical_nanos, st.steals,
          st.parallel_tasks};
}

/// Thread scaling with the same time model as the distributed simulation
/// (DESIGN.md §2): on a host with fewer cores than workers the measured
/// wall time serializes all worker busy time (metered on the thread-CPU
/// clock), so the k-core wall time is modeled by replacing the
/// serialized busy sum with the critical path (per-batch Brent bound
/// total/k + longest task, see ThreadPool::critical_nanos):
///
///   modeled(k) = wall(k) − (busy(k) − critical(k)) / 1e9
///
/// On a real k-core machine modeled(k) ≈ wall(k); on a single-core
/// container it is the only observable scaling signal. Sequential phases
/// (Update, delta overlays, replay) stay in full, so the model still
/// charges Amdahl's serial fraction.
void PrintScaling(const char* algo, const std::string& source, int scale,
                  bool symmetric, int fixed_supersteps) {
  double wall1 = 0;
  for (int threads : {1, 2, 4}) {
    ScalingRow row =
        RunScaling(source, scale, symmetric, fixed_supersteps, threads);
    double modeled =
        row.wall - static_cast<double>(row.busy - row.critical) / 1e9;
    if (threads == 1) wall1 = row.wall;
    double balance =
        row.critical > 0 ? static_cast<double>(row.busy) /
                               (static_cast<double>(row.critical) * threads)
                         : 1.0;
    std::printf("%-6s %7d %9.4f %10.4f %9.2fx %8.2f %7llu %7llu\n", algo,
                threads, row.wall, modeled, wall1 / modeled, balance,
                static_cast<unsigned long long>(row.steals),
                static_cast<unsigned long long>(row.tasks));
  }
}

std::vector<Edge> Canonical(std::vector<Edge> edges) {
  for (Edge& e : edges) {
    if (e.src > e.dst) std::swap(e.src, e.dst);
  }
  return edges;
}

/// Runs a DD baseline through the shared protocol; returns OOM cell on
/// budget exhaustion. Completed runs are recorded into the process
/// report under `label` with the baseline's per-phase operator profile,
/// so the DD side is diffable with the same tools/report_diff.py gate as
/// the iTbGPP runs (OOM runs are not recorded: their work is partial).
template <typename MakeEngine, typename Init, typename Apply>
Cell RunDd(const std::string& label, int scale, bool symmetric,
           MakeEngine make, Init init, Apply apply) {
  auto all_edges = symmetric ? Canonical(GenerateRmat(scale))
                             : GenerateRmat(scale);
  MutationWorkload workload(all_edges, 0.9, 42);
  MemoryBudget budget(kDdBudget);
  auto engine = make(&budget);
  std::vector<Edge> base = workload.initial_edges();
  if (symmetric) base = SymmetrizeEdges(base);
  Stopwatch watch;
  Status status = init(*engine, RmatVertices(scale), base);
  if (status.IsOutOfMemory()) return {.oom = true};
  CheckOk(status);
  Cell cell;
  cell.oneshot = watch.ElapsedSeconds();
  bench::RecordBaselineRun(label + "/oneshot", engine->profile(),
                           cell.oneshot, /*incremental=*/false);
  double total = 0;
  for (int i = 0; i < bench::kDefaultSnapshots; ++i) {
    auto batch = workload.NextBatch(kBatch, bench::kDefaultInsertRatio);
    if (symmetric) {
      std::vector<EdgeDelta> sym;
      for (const EdgeDelta& d : batch) {
        sym.push_back(d);
        sym.push_back({{d.edge.dst, d.edge.src}, d.mult});
      }
      batch = std::move(sym);
    }
    watch.Restart();
    status = apply(*engine, batch);
    if (status.IsOutOfMemory()) return {.oom = true};
    CheckOk(status);
    double step = watch.ElapsedSeconds();
    bench::RecordBaselineRun(label + "/step" + std::to_string(i),
                             engine->profile(), step, /*incremental=*/true);
    total += step;
  }
  cell.incremental = total / bench::kDefaultSnapshots;
  return cell;
}

}  // namespace

int Main() {
  // Graph series standing in for {TWT, TWT_5, GSH15, HL}.
  const int kScales[] = {14, 15, 16, 17};
  const char* kNames[] = {"G1", "G2", "G3", "G4"};
  const int kTriScales[] = {14, 15, 16, 17};

  std::printf("=== Figure 12: overall performance, iTbGPP vs DD "
              "(budget %llu MB), |dG|=%zu, 75:25 ===\n",
              static_cast<unsigned long long>(kDdBudget >> 20), kBatch);

  auto section = [&](const char* title) {
    std::printf("\n--- %s ---\n%-8s %-8s %12s %14s\n", title, "system",
                "graph", "oneshot[s]", "incremental[s]");
  };

  section("(a) PageRank");
  for (int i = 0; i < 4; ++i) {
    PrintRow("DD", kNames[i],
             RunDd(std::string("dd/PR/") + kNames[i], kScales[i], false,
                   [&](MemoryBudget* b) {
                     return std::make_unique<DdRank>(1, kSupersteps, b);
                   },
                   [](DdRank& e, VertexId n, const std::vector<Edge>& edges) {
                     return e.RunInitial(n, edges);
                   },
                   [](DdRank& e, const std::vector<EdgeDelta>& batch) {
                     return e.ApplyMutations(batch);
                   }));
    PrintRow("iTbGPP", kNames[i],
             RunItg(QuantizedPageRankProgram(), kScales[i], false,
                    kSupersteps));
  }

  section("(b) Label Propagation");
  for (int i = 0; i < 4; ++i) {
    PrintRow("DD", kNames[i],
             RunDd(std::string("dd/LP/") + kNames[i], kScales[i], false,
                   [&](MemoryBudget* b) {
                     return std::make_unique<DdRank>(kLabels, kSupersteps,
                                                     b);
                   },
                   [](DdRank& e, VertexId n, const std::vector<Edge>& edges) {
                     return e.RunInitial(n, edges);
                   },
                   [](DdRank& e, const std::vector<EdgeDelta>& batch) {
                     return e.ApplyMutations(batch);
                   }));
    PrintRow("iTbGPP", kNames[i],
             RunItg(QuantizedLabelPropProgram(kLabels), kScales[i], false,
                    kSupersteps));
  }

  section("(c) Weakly Connected Components");
  for (int i = 0; i < 4; ++i) {
    VertexId n = RmatVertices(kScales[i]);
    PrintRow("DD", kNames[i],
             RunDd(std::string("dd/WCC/") + kNames[i], kScales[i], true,
                   [&](MemoryBudget* b) {
                     std::vector<double> labels0(static_cast<size_t>(n));
                     for (VertexId v = 0; v < n; ++v) {
                       labels0[v] = static_cast<double>(v);
                     }
                     return std::make_unique<DdMinPropagation>(labels0, 0.0,
                                                               b);
                   },
                   [](DdMinPropagation& e, VertexId nv,
                      const std::vector<Edge>& edges) {
                     return e.RunInitial(nv, edges);
                   },
                   [](DdMinPropagation& e,
                      const std::vector<EdgeDelta>& batch) {
                     return e.ApplyMutations(batch);
                   }));
    PrintRow("iTbGPP", kNames[i], RunItg(WccProgram(), kScales[i], true, -1));
  }

  section("(d) BFS (root = max degree)");
  for (int i = 0; i < 4; ++i) {
    VertexId n = RmatVertices(kScales[i]);
    Csr csr = Csr::FromEdges(n, SymmetrizeEdges(GenerateRmat(kScales[i])));
    VertexId root = MaxDegreeVertex(csr);
    PrintRow("DD", kNames[i],
             RunDd(std::string("dd/BFS/") + kNames[i], kScales[i], true,
                   [&](MemoryBudget* b) {
                     std::vector<double> labels0(static_cast<size_t>(n),
                                                 kBfsInfinity);
                     labels0[static_cast<size_t>(root)] = 0.0;
                     return std::make_unique<DdMinPropagation>(labels0, 1.0,
                                                               b);
                   },
                   [](DdMinPropagation& e, VertexId nv,
                      const std::vector<Edge>& edges) {
                     return e.RunInitial(nv, edges);
                   },
                   [](DdMinPropagation& e,
                      const std::vector<EdgeDelta>& batch) {
                     return e.ApplyMutations(batch);
                   }));
    PrintRow("iTbGPP", kNames[i],
             RunItg(BfsProgram(root), kScales[i], true, -1));
  }

  section("(e) Triangle Counting");
  for (int i = 0; i < 4; ++i) {
    PrintRow("DD", kNames[i],
             RunDd(std::string("dd/TC/") + kNames[i], kTriScales[i], true,
                   [&](MemoryBudget* b) {
                     // DD's two-path arrangement gets a deliberately
                     // small budget slice, mirroring the paper where TC
                     // OOMs on the *smallest* graph: sum(deg^2) blows any
                     // budget once the graph stops being tiny.
                     return std::make_unique<DdTriangles>(b);
                   },
                   [](DdTriangles& e, VertexId nv,
                      const std::vector<Edge>& edges) {
                     return e.RunInitial(nv, edges);
                   },
                   [](DdTriangles& e, const std::vector<EdgeDelta>& batch) {
                     return e.ApplyMutations(batch);
                   }));
    PrintRow("iTbGPP", kNames[i],
             RunItg(TriangleCountProgram(), kTriScales[i], true, -1));
  }

  section("(f) Local Clustering Coefficient");
  for (int i = 0; i < 4; ++i) {
    PrintRow("DD", kNames[i],
             RunDd(std::string("dd/LCC/") + kNames[i], kTriScales[i], true,
                   [&](MemoryBudget* b) {
                     return std::make_unique<DdTriangles>(b);
                   },
                   [](DdTriangles& e, VertexId nv,
                      const std::vector<Edge>& edges) {
                     return e.RunInitial(nv, edges);
                   },
                   [](DdTriangles& e, const std::vector<EdgeDelta>& batch) {
                     return e.ApplyMutations(batch);
                   }));
    PrintRow("iTbGPP", kNames[i],
             RunItg(LccProgram(), kTriScales[i], true, -1));
  }

  // Not a paper figure: intra-machine thread scaling of the parallel
  // walk executor added on top of the paper's design. Wall seconds stay
  // flat on a single-core container; the modeled column applies the
  // critical-path time model documented on PrintScaling.
  std::printf("\n--- (g) Thread scaling, threads in {1,2,4} "
              "(one-shot, scale 16, window %d) ---\n", kScalingWindow);
  std::printf("%-6s %7s %9s %10s %10s %8s %7s %7s\n", "algo", "threads",
              "wall[s]", "modeled[s]", "speedup", "balance", "steals",
              "tasks");
  PrintScaling("PR", QuantizedPageRankProgram(), 16, false, kSupersteps);
  PrintScaling("TC", TriangleCountProgram(), 16, true, -1);

  std::printf("\npaper shape: DD competitive on the smallest Group-1/2 "
              "inputs, OOM ('O') as graphs grow; DD OOMs immediately on "
              "TC/LCC; iTbGPP completes everywhere, incremental beating "
              "one-shot with the largest factors on Group 3.\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("fig12_overall", argc, argv, itg::Main);
}
