// Figure 14: scalability in the number of machines at a fixed graph —
// PR and TC, one-shot and incremental, on the partitioned simulation
// (per-machine buffer pools + pre-aggregated shuffle accounting; see
// DESIGN.md §2 for the substitution).
//
// Expected shape: simulated distributed time decreases with machines for
// both one-shot and incremental; the paper reports 5.4x/7.7x (PR) and
// 5.4x/4.5x (TC) going 5 -> 25 machines, with the super-linear
// incremental PR speedup caused by per-machine working sets fitting in
// memory.
#include <cstdio>

#include "bench/bench_util.h"

namespace itg {
namespace {

using bench::CheckOk;

constexpr size_t kBatch = 100;

void Sweep(const char* name, const std::string& source, int scale,
           bool symmetric, int fixed_supersteps) {
  std::printf("\n--- %s (RMAT_%d) ---\n", name, scale);
  std::printf("%-9s %14s %14s %12s\n", "machines", "oneshot[s]",
              "incremental[s]", "net[MB]");
  double base_one = 0;
  double base_inc = 0;
  for (int machines : {5, 10, 15, 20, 25}) {
    HarnessOptions options;
    options.path = bench::TempPath("fig14");
    options.symmetric = symmetric;
    options.engine.fixed_supersteps = fixed_supersteps;
    options.engine.num_partitions = machines;
    // Fixed per-machine memory: the cluster's aggregate pool grows with
    // the machine count (the super-linear effect's source).
    options.engine.partition_pool_pages = 8;
    options.store.buffer_pool_pages = 64;
    auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                           GenerateRmat(scale), options));
    const std::string label =
        std::string(name) + "/m" + std::to_string(machines);
    CheckOk(harness->RunOneShot());
    bench::RecordRun(harness.get(), label + "/oneshot");
    double oneshot = harness->engine().SimulatedDistributedSeconds();
    double incremental = 0;
    uint64_t net = 0;
    for (int i = 0; i < bench::kDefaultSnapshots; ++i) {
      CheckOk(harness->Step(kBatch, bench::kDefaultInsertRatio));
      bench::RecordRun(harness.get(), label + "/step" + std::to_string(i));
      incremental += harness->engine().SimulatedDistributedSeconds();
      for (const MachineStats& m : harness->engine().machine_stats()) {
        net += m.network_bytes;
      }
    }
    incremental /= bench::kDefaultSnapshots;
    bench::Report().AddResult(label + "/oneshot_sim_seconds", oneshot);
    bench::Report().AddResult(label + "/incremental_sim_seconds",
                              incremental);
    if (machines == 5) {
      base_one = oneshot;
      base_inc = incremental;
    }
    std::printf("%-9d %14.4f %14.4f %12.2f   (speedup vs 5: %.2fx / %.2fx)\n",
                machines, oneshot, incremental,
                static_cast<double>(net) / (1 << 20), base_one / oneshot,
                base_inc / incremental);
  }
}

}  // namespace

int Main() {
  std::printf("=== Figure 14: varying the number of machines "
              "(simulated; |dG|=%zu, 75:25) ===\n", kBatch);
  Sweep("(a) PageRank", QuantizedPageRankProgram(), 18, false, 10);
  Sweep("(b) Triangle Counting", TriangleCountProgram(), 15, true, -1);
  std::printf("\npaper shape: both one-shot and incremental distributed "
              "times shrink as machines are added (paper: ~5x one-shot "
              "speedup from 5 to 25 machines).\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("fig14_machines", argc, argv, itg::Main);
}
