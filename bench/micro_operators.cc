// Operator-level microbenchmarks (google-benchmark): the GSA physical
// operators (window seek, walk enumeration), the storage primitives
// (buffer pool, disk array, delta overlay), and the generators.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "algos/programs.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "compiler/compiled_program.h"
#include "engine/engine.h"
#include "engine/walk.h"
#include "gen/rmat.h"
#include "storage/disk_array.h"
#include "storage/graph_store.h"
#include "storage/vertex_store.h"

namespace itg {
namespace {

std::string TempPath(const std::string& name) {
  static int counter = 0;
  auto dir = std::filesystem::temp_directory_path() / "itg_micro";
  std::filesystem::create_directories(dir);
  return (dir / (name + std::to_string(counter++))).string();
}

void BM_RmatGeneration(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto edges = GenerateRmat(scale);
    benchmark::DoNotOptimize(edges.data());
  }
  state.SetItemsProcessed(state.iterations() * (1ll << scale));
}
BENCHMARK(BM_RmatGeneration)->Arg(14)->Arg(16)->Arg(18);

void BM_CsrBuild(benchmark::State& state) {
  auto edges = GenerateRmat(static_cast<int>(state.range(0)));
  VertexId n = RmatVertices(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Csr csr = Csr::FromEdges(n, edges);
    benchmark::DoNotOptimize(csr.num_edges());
  }
}
BENCHMARK(BM_CsrBuild)->Arg(14)->Arg(16);

void BM_BufferPoolHit(benchmark::State& state) {
  Metrics metrics;
  auto store = PageStore::Open(TempPath("pool"), &metrics);
  uint8_t byte = 7;
  for (int i = 0; i < 16; ++i) {
    (void)(*store)->AppendPage(&byte, 1);
  }
  BufferPool pool(store->get(), 16);
  PageId id = 0;
  for (auto _ : state) {
    auto page = pool.GetPage(id);
    benchmark::DoNotOptimize(page->get());
    id = (id + 1) % 16;
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_BufferPoolMiss(benchmark::State& state) {
  Metrics metrics;
  auto store = PageStore::Open(TempPath("pool_miss"), &metrics);
  uint8_t byte = 7;
  for (int i = 0; i < 64; ++i) {
    (void)(*store)->AppendPage(&byte, 1);
  }
  BufferPool pool(store->get(), 4);  // thrashes
  PageId id = 0;
  for (auto _ : state) {
    auto page = pool.GetPage(id);
    benchmark::DoNotOptimize(page->get());
    id = (id + 13) % 64;
  }
}
BENCHMARK(BM_BufferPoolMiss);

void BM_AdjacencySeek(benchmark::State& state) {
  const int scale = 16;
  auto store = DynamicGraphStore::Create(TempPath("seek"),
                                         RmatVertices(scale),
                                         GenerateRmat(scale), {},
                                         &GlobalMetrics());
  std::vector<VertexId> adjacency;
  VertexId v = 0;
  const VertexId n = RmatVertices(scale);
  for (auto _ : state) {
    (void)(*store)->GetAdjacency((*store)->pool(), v, 0, Direction::kOut,
                                 &adjacency);
    benchmark::DoNotOptimize(adjacency.data());
    v = (v + 997) % n;
  }
}
BENCHMARK(BM_AdjacencySeek);

/// The Walk operator: full one-hop enumeration (PR-shaped traversal).
void BM_WalkEnumerationOneHop(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  auto program = std::move(CompileProgram(PageRankProgram())).value();
  auto store = DynamicGraphStore::Create(TempPath("walk1"),
                                         RmatVertices(scale),
                                         GenerateRmat(scale), {},
                                         &GlobalMetrics());
  WalkEnumerator enumerator(program.get(), store->get(), (*store)->pool(),
                            {256, true});
  ColumnSet cols;
  cols.Init(RmatVertices(scale), {1, 1, 1, 1, 1, 1});
  std::vector<std::vector<double>> globals;
  enumerator.SetEvalBase(&cols, &globals, RmatVertices(scale),
                         1 << scale);
  std::vector<VertexId> starts(RmatVertices(scale));
  for (VertexId v = 0; v < RmatVertices(scale); ++v) starts[v] = v;
  std::vector<LevelStream> streams = {LevelStream::kCurrent};
  std::vector<const std::vector<uint8_t>*> allow = {nullptr};
  uint64_t walks = 0;
  for (auto _ : state) {
    walks = 0;
    (void)enumerator.Enumerate(
        starts, streams, 0, 0, allow, 1,
        [&](const VertexId*, int depth, int) { walks += (depth == 1); });
    benchmark::DoNotOptimize(walks);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(walks));
}
BENCHMARK(BM_WalkEnumerationOneHop)->Arg(14)->Arg(16);

/// The Walk operator: 3-hop closing walks (TC-shaped traversal with the
/// ordering fast paths and the closing-probe rewrite).
void BM_WalkEnumerationTriangles(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  auto program = std::move(CompileProgram(TriangleCountProgram())).value();
  auto store = DynamicGraphStore::Create(
      TempPath("walk3"), RmatVertices(scale),
      SymmetrizeEdges(GenerateRmat(scale)), {}, &GlobalMetrics());
  WalkEnumerator enumerator(program.get(), store->get(), (*store)->pool(),
                            {256, true});
  ColumnSet cols;
  cols.Init(RmatVertices(scale), {1, 1, 1});
  std::vector<std::vector<double>> globals;
  enumerator.SetEvalBase(&cols, &globals, RmatVertices(scale),
                         2 << scale);
  std::vector<VertexId> starts(RmatVertices(scale));
  for (VertexId v = 0; v < RmatVertices(scale); ++v) starts[v] = v;
  std::vector<LevelStream> streams(3, LevelStream::kCurrent);
  std::vector<const std::vector<uint8_t>*> allow(3, nullptr);
  uint64_t triangles = 0;
  for (auto _ : state) {
    triangles = 0;
    (void)enumerator.Enumerate(
        starts, streams, 0, 0, allow, 3,
        [&](const VertexId*, int depth, int) { triangles += (depth == 3); });
    benchmark::DoNotOptimize(triangles);
  }
  state.counters["triangles"] = static_cast<double>(triangles);
}
BENCHMARK(BM_WalkEnumerationTriangles)->Arg(12)->Arg(14);

void BM_VertexStoreOverlay(benchmark::State& state) {
  Metrics metrics;
  auto pages = PageStore::Open(TempPath("vso"), &metrics);
  const VertexId n = 1 << 14;
  VertexStore vs(pages->get(), n, MergeStrategy::kNoMerge);
  int attr = vs.RegisterAttribute("rank", 1);
  Rng rng(1);
  for (Timestamp t = 0; t < 20; ++t) {
    std::vector<VertexStore::AfterImage> records;
    for (int i = 0; i < 500; ++i) {
      records.push_back({static_cast<VertexId>(rng.Uniform(n)),
                         {rng.NextDouble()}});
    }
    std::sort(records.begin(), records.end(),
              [](const auto& a, const auto& b) { return a.vid < b.vid; });
    (void)vs.WriteDelta(t, 0, attr, records);
  }
  BufferPool pool(pages->get(), 64);
  std::vector<double> column(static_cast<size_t>(n));
  for (auto _ : state) {
    (void)vs.OverlaySuperstep(&pool, 19, 0, attr, column.data());
    benchmark::DoNotOptimize(column.data());
  }
}
BENCHMARK(BM_VertexStoreOverlay);

void BM_DiskArrayScan(benchmark::State& state) {
  Metrics metrics;
  auto pages = PageStore::Open(TempPath("scan"), &metrics);
  DiskArrayBuilder<VertexId> builder(pages->get());
  const size_t count = 1 << 18;
  for (size_t i = 0; i < count; ++i) {
    (void)builder.Append(static_cast<VertexId>(i));
  }
  auto array = std::move(builder.Finish()).value();
  BufferPool pool(pages->get(), 64);
  std::vector<VertexId> out(4096);
  for (auto _ : state) {
    for (size_t off = 0; off + out.size() <= count; off += out.size()) {
      (void)array.Read(&pool, off, out.size(), out.data());
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(count * sizeof(VertexId)));
}
BENCHMARK(BM_DiskArrayScan);

}  // namespace
}  // namespace itg

BENCHMARK_MAIN();
