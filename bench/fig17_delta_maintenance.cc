// Figure 17: delta maintenance strategies of the vertex store over a
// long snapshot sequence — NoMerge vs PeriodicMerge(50) vs the cost-based
// strategy (Cost), for PR and LP.
//
// Expected shape: NoMerge's per-snapshot time climbs as delta chains
// grow; PeriodicMerge tracks NoMerge until its period then drops;
// Cost stays flat.
#include <cstdio>

#include "bench/bench_util.h"

namespace itg {
namespace {

using bench::CheckOk;

constexpr int kSnapshots = 100;
constexpr size_t kBatch = 200;

void Run(const char* algo, const std::string& source) {
  std::printf("\n--- %s, %d snapshots, |dG|=%zu ---\n", algo, kSnapshots,
              kBatch);
  std::printf("%-10s", "snapshot");
  for (const char* s : {"NoMerge", "Periodic", "Cost"}) {
    std::printf(" %12s", s);
  }
  std::printf("  (seconds per incremental query, sampled)\n");

  const MergeStrategy strategies[] = {MergeStrategy::kNoMerge,
                                      MergeStrategy::kPeriodic,
                                      MergeStrategy::kCostBased};
  std::vector<std::vector<double>> seconds(3);
  std::vector<uint64_t> final_chain(3);
  for (int s = 0; s < 3; ++s) {
    HarnessOptions options;
    options.path = bench::TempPath("fig17");
    options.engine.fixed_supersteps = 10;
    options.store.merge_strategy = strategies[s];
    options.store.merge_period = 50;
    auto harness = CheckOk(Harness::Create(source, RmatVertices(16),
                                           GenerateRmat(16), options));
    CheckOk(harness->RunOneShot());
    for (int t = 1; t <= kSnapshots; ++t) {
      CheckOk(harness->Step(kBatch, bench::kDefaultInsertRatio));
      seconds[s].push_back(harness->engine().last_stats().seconds);
    }
    final_chain[s] =
        harness->store().vertex_store()->ChainRecords(5, /*attr=*/4);
  }
  for (int t = 10; t <= kSnapshots; t += 10) {
    // Average over the preceding 10 snapshots to smooth noise.
    std::printf("%-10d", t);
    for (int s = 0; s < 3; ++s) {
      double sum = 0;
      for (int i = t - 10; i < t; ++i) sum += seconds[s][i];
      std::printf(" %12.4f", sum / 10);
    }
    std::printf("\n");
  }
  std::printf("final delta-chain records (attr 'rank'/'labels', "
              "superstep 5): NoMerge=%llu Periodic=%llu Cost=%llu\n",
              static_cast<unsigned long long>(final_chain[0]),
              static_cast<unsigned long long>(final_chain[1]),
              static_cast<unsigned long long>(final_chain[2]));
}

}  // namespace

int Main() {
  std::printf("=== Figure 17: delta maintenance strategies (RMAT_16) "
              "===\n");
  Run("PageRank", QuantizedPageRankProgram());
  Run("Label Propagation", QuantizedLabelPropProgram(8));
  std::printf("\npaper shape: NoMerge grows steadily; PeriodicMerge "
              "follows NoMerge until its period; Cost stays flat.\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("fig17_delta_maintenance", argc, argv, itg::Main);
}
