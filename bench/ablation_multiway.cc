// Ablation of the compiler's multi-way-intersection rewrite (§2): the
// closing constraint `u_{k+1} == u_1` of common-neighbor loops compiles
// to a sorted-adjacency binary probe instead of a scan+filter over the
// last level. Measured on one-shot TC/LCC, where the rewrite removes the
// O(deg) scan per enumerated wedge.
//
// Also ablates the ordering fast paths indirectly: edges-scanned drops
// by the probe factor.
#include <cstdio>

#include "bench/bench_util.h"

namespace itg {
namespace {

using bench::CheckOk;

struct Result {
  double seconds;
  uint64_t edges_scanned;
};

Result Run(const std::string& source, int scale, bool multiway,
           const std::string& label) {
  HarnessOptions options;
  options.path = bench::TempPath("multiway");
  options.symmetric = true;
  options.engine.multiway_intersection = multiway;
  options.engine.record_history = false;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                         GenerateRmat(scale), options));
  CheckOk(harness->RunOneShot());
  bench::RecordRun(harness.get(), label);
  return {harness->engine().last_stats().seconds,
          harness->engine().last_stats().edges_scanned};
}

}  // namespace

int Main() {
  std::printf("=== Ablation: multi-way intersection rewrite (closing-"
              "constraint probe) ===\n");
  std::printf("%-5s %-6s %14s %14s %16s %16s %9s\n", "algo", "scale",
              "scan+filter[s]", "probe[s]", "scanned(scan)",
              "scanned(probe)", "speedup");
  for (int scale : {13, 14, 15}) {
    for (const auto& [name, source] :
         {std::pair<const char*, std::string>{"TC",
                                              TriangleCountProgram()},
          {"LCC", LccProgram()}}) {
      const std::string label =
          std::string(name) + "/scale" + std::to_string(scale);
      Result off = Run(source, scale, false, label + "/scan");
      Result on = Run(source, scale, true, label + "/probe");
      bench::Report().AddResult(label + "/speedup",
                                off.seconds / on.seconds);
      std::printf("%-5s %-6d %14.4f %14.4f %16llu %16llu %8.2fx\n", name,
                  scale, off.seconds, on.seconds,
                  static_cast<unsigned long long>(off.edges_scanned),
                  static_cast<unsigned long long>(on.edges_scanned),
                  off.seconds / on.seconds);
    }
  }
  std::printf("\nexpected shape: the probe scans a small fraction of the "
              "edges the scan+filter plan touches at the last level, with "
              "a corresponding wall-time win that grows with degree "
              "skew.\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("ablation_multiway", argc, argv, itg::Main);
}
