// Figure 13: scalability in graph size — PR and TC over an RMAT scale
// sweep (the paper sweeps RMAT_25..36 on 25 machines; we sweep smaller
// scales on the simulated single node).
//
// Expected shape: DD crashes (O) beyond a scale while iTurboGraph keeps
// completing; iTurboGraph's incremental speedup grows with the graph
// (paper: PR 2.8 avg -> 4.1 at the largest; TC 12.5 -> 43.9).
#include <cstdio>

#include "baselines/ddflow.h"
#include "bench/bench_util.h"
#include "common/memory_budget.h"
#include "gen/workload.h"

namespace itg {
namespace {

using bench::CheckOk;

constexpr size_t kBatch = 100;
constexpr uint64_t kDdBudget = 24ull * 1024 * 1024;

void RunPr() {
  std::printf("\n--- (a) PageRank, RMAT scale sweep ---\n");
  std::printf("%-6s %10s %12s %12s %10s %12s\n", "scale", "edges",
              "itg_one[s]", "itg_inc[s]", "speedup", "DD_one[s]");
  for (int scale = 14; scale <= 19; ++scale) {
    HarnessOptions options;
    options.path = bench::TempPath("fig13pr");
    options.engine.fixed_supersteps = 10;
    auto harness =
        CheckOk(Harness::Create(QuantizedPageRankProgram(),
                                RmatVertices(scale), GenerateRmat(scale),
                                options));
    auto times = CheckOk(bench::RunPipeline(harness.get(), kBatch,
                                            bench::kDefaultInsertRatio));

    MutationWorkload workload(GenerateRmat(scale), 0.9, 42);
    MemoryBudget budget(kDdBudget);
    DdRank dd(1, 10, &budget);
    Stopwatch watch;
    Status dd_status =
        dd.RunInitial(RmatVertices(scale), workload.initial_edges());
    double dd_one = watch.ElapsedSeconds();
    char dd_text[32];
    if (dd_status.IsOutOfMemory()) {
      snprintf(dd_text, sizeof(dd_text), "%12s", "O");
    } else {
      CheckOk(dd_status);
      bench::RecordBaselineRun(
          "dd/PR/scale" + std::to_string(scale) + "/oneshot", dd.profile(),
          dd_one, /*incremental=*/false);
      snprintf(dd_text, sizeof(dd_text), "%12.4f", dd_one);
    }
    std::printf("%-6d %10llu %12.4f %12.4f %9.2fx %s\n", scale,
                1ull << scale, times.oneshot_seconds,
                times.incremental_avg_seconds, times.speedup(), dd_text);
  }
}

void RunTc() {
  std::printf("\n--- (b) Triangle Counting, RMAT scale sweep ---\n");
  std::printf("%-6s %10s %12s %12s %10s %12s\n", "scale", "edges",
              "itg_one[s]", "itg_inc[s]", "speedup", "DD_one[s]");
  for (int scale = 13; scale <= 17; ++scale) {
    HarnessOptions options;
    options.path = bench::TempPath("fig13tc");
    options.symmetric = true;
    auto harness = CheckOk(Harness::Create(TriangleCountProgram(),
                                           RmatVertices(scale),
                                           GenerateRmat(scale), options));
    auto times = CheckOk(bench::RunPipeline(harness.get(), kBatch,
                                            bench::kDefaultInsertRatio));

    auto canonical = GenerateRmat(scale);
    for (Edge& e : canonical) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
    }
    MutationWorkload workload(canonical, 0.9, 42);
    MemoryBudget budget(kDdBudget);
    DdTriangles dd(&budget);
    Stopwatch watch;
    Status dd_status = dd.RunInitial(
        RmatVertices(scale), SymmetrizeEdges(workload.initial_edges()));
    double dd_one = watch.ElapsedSeconds();
    char dd_text[32];
    if (dd_status.IsOutOfMemory()) {
      snprintf(dd_text, sizeof(dd_text), "%12s", "O");
    } else {
      CheckOk(dd_status);
      bench::RecordBaselineRun(
          "dd/TC/scale" + std::to_string(scale) + "/oneshot", dd.profile(),
          dd_one, /*incremental=*/false);
      snprintf(dd_text, sizeof(dd_text), "%12.4f", dd_one);
    }
    std::printf("%-6d %10llu %12.4f %12.4f %9.2fx %s\n", scale,
                1ull << scale, times.oneshot_seconds,
                times.incremental_avg_seconds, times.speedup(), dd_text);
  }
}

}  // namespace

int Main() {
  std::printf("=== Figure 13: varying graph size, |dG|=%zu, 75:25, "
              "DD budget %lluMB ===\n",
              kBatch, static_cast<unsigned long long>(kDdBudget >> 20));
  RunPr();
  RunTc();
  std::printf("\npaper shape: DD OOMs past a scale; iTbGPP completes the "
              "whole sweep and its incremental speedup grows with the "
              "graph (strongly for TC).\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("fig13_graph_size", argc, argv, itg::Main);
}
