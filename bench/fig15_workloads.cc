// Figure 15: sensitivity to the mutation workload.
//  (a) insert:delete ratio sweep — Abelian-group algorithms (PR, TC) are
//      flat across ratios; the Min-monoid WCC degrades as deletions grow
//      (recomputation under deletions, §5.4).
//  (b) batch size sweep — throughput (mutations/second) grows with the
//      batch (computation and IO sharing within the batch).
//
// Every run is recorded into the metrics report under a stable label
// ("ratio/PR/75:25/step0", ...), so `--metrics-json` output can be diffed
// against a committed baseline with tools/report_diff.py. `--quick`
// shrinks graphs and sweep ranges to CI scale (the report_diff_smoke
// ctest); quick-mode labels are a strict subset of full-mode labels.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace itg {
namespace {

using bench::CheckOk;

double AvgIncrementalSeconds(const std::string& source, bool symmetric,
                             int fixed_supersteps, size_t batch,
                             double insert_ratio, int snapshots = 4,
                             int scale = 16,
                             const std::string& label = "") {
  if (bench::QuickMode()) {
    scale = std::min(scale, 11);
    snapshots = std::min(snapshots, 2);
    batch = std::min<size_t>(batch, 200);
  }
  HarnessOptions options;
  options.path = bench::TempPath("fig15");
  options.symmetric = symmetric;
  options.engine.fixed_supersteps = fixed_supersteps;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                         GenerateRmat(scale), options));
  CheckOk(harness->RunOneShot());
  if (!label.empty()) bench::RecordRun(harness.get(), label + "/oneshot");
  double total = 0;
  for (int i = 0; i < snapshots; ++i) {
    CheckOk(harness->Step(batch, insert_ratio));
    if (!label.empty()) {
      bench::RecordRun(harness.get(), label + "/step" + std::to_string(i));
    }
    total += harness->engine().last_stats().seconds;
  }
  return total / snapshots;
}

void RatioSweep() {
  std::printf("\n--- (a) normalized time vs insert:delete ratio "
              "(|dG|=500) ---\n");
  std::printf("%-8s", "ratio");
  for (const char* algo : {"PR", "WCC", "TC"}) std::printf(" %10s", algo);
  std::printf("\n");
  const double ratios[] = {1.0, 0.75, 0.5, 0.25, 0.0};
  const char* names[] = {"100:0", "75:25", "50:50", "25:75", "0:100"};
  const int num_ratios = bench::QuickMode() ? 2 : 5;
  double base[3] = {0, 0, 0};
  for (int r = 0; r < num_ratios; ++r) {
    const std::string tag = std::string("ratio/") + names[r];
    double pr = AvgIncrementalSeconds(QuantizedPageRankProgram(), false, 10,
                                      500, ratios[r], 6, 16, tag + "/PR");
    double wcc = AvgIncrementalSeconds(WccProgram(), true, -1, 500,
                                       ratios[r], 6, 17, tag + "/WCC");
    double tc = AvgIncrementalSeconds(TriangleCountProgram(), true, -1, 500,
                                      ratios[r], 6, 15, tag + "/TC");
    if (r == 0) {
      base[0] = pr;
      base[1] = wcc;
      base[2] = tc;
    }
    std::printf("%-8s %10.2f %10.2f %10.2f\n", names[r], pr / base[0],
                wcc / base[1], tc / base[2]);
  }
  std::printf("(normalized to the insertion-only workload; paper shape: "
              "PR/TC flat, WCC rising with the deletion share)\n");
}

void BatchSweep() {
  std::printf("\n--- (b) normalized throughput vs batch size "
              "(75:25) ---\n");
  std::printf("%-8s", "|dG|");
  for (const char* algo : {"PR", "WCC", "TC"}) std::printf(" %12s", algo);
  std::printf("\n");
  const size_t batches[] = {8, 40, 200, 1000, 5000};
  const int num_batches = bench::QuickMode() ? 2 : 5;
  double base[3] = {0, 0, 0};
  for (int b = 0; b < num_batches; ++b) {
    const std::string tag = "batch/" + std::to_string(batches[b]);
    double thr[3];
    thr[0] = static_cast<double>(batches[b]) /
             AvgIncrementalSeconds(QuantizedPageRankProgram(), false, 10,
                                   batches[b], 0.75, 2, 16, tag + "/PR");
    thr[1] = static_cast<double>(batches[b]) /
             AvgIncrementalSeconds(WccProgram(), true, -1, batches[b], 0.75,
                                   2, 16, tag + "/WCC");
    thr[2] = static_cast<double>(batches[b]) /
             AvgIncrementalSeconds(TriangleCountProgram(), true, -1,
                                   batches[b], 0.75, 2, 15, tag + "/TC");
    if (b == 0) {
      base[0] = thr[0];
      base[1] = thr[1];
      base[2] = thr[2];
    }
    std::printf("%-8zu %12.1f %12.1f %12.1f\n", batches[b],
                thr[0] / base[0], thr[1] / base[1], thr[2] / base[2]);
  }
  std::printf("(normalized to the smallest batch; paper shape: throughput "
              "grows by orders of magnitude with the batch size)\n");
}

}  // namespace

int Main() {
  std::printf("=== Figure 15: workload sensitivity (RMAT_16; TC on "
              "RMAT_15) ===\n");
  RatioSweep();
  BatchSweep();
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("fig15_workloads", argc, argv, itg::Main);
}
