#ifndef ITG_BENCH_BENCH_UTIL_H_
#define ITG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "algos/programs.h"
#include "algos/reference.h"
#include "common/logging.h"
#include "gen/rmat.h"
#include "harness/harness.h"

namespace itg::bench {

/// Fresh temp path prefix for a store.
inline std::string TempPath(const std::string& name) {
  static int counter = 0;
  auto dir = std::filesystem::temp_directory_path() / "itg_bench";
  std::filesystem::create_directories(dir);
  return (dir / (name + "_" + std::to_string(counter++))).string();
}

/// The paper's default workload mix (§6.1): 75:25 insertions:deletions,
/// averaged over four consecutive incremental snapshots.
inline constexpr double kDefaultInsertRatio = 0.75;
inline constexpr int kDefaultSnapshots = 4;

struct PipelineTimes {
  double oneshot_seconds = 0;
  double incremental_avg_seconds = 0;
  uint64_t oneshot_read_bytes = 0;
  uint64_t incremental_avg_read_bytes = 0;
  double speedup() const {
    return incremental_avg_seconds > 0
               ? oneshot_seconds / incremental_avg_seconds
               : 0;
  }
};

/// One-shot at G_0 plus `snapshots` incremental steps, averaged.
inline StatusOr<PipelineTimes> RunPipeline(Harness* harness,
                                           size_t batch_size,
                                           double insert_ratio,
                                           int snapshots = kDefaultSnapshots) {
  PipelineTimes times;
  ITG_RETURN_IF_ERROR(harness->RunOneShot());
  times.oneshot_seconds = harness->engine().last_stats().seconds;
  times.oneshot_read_bytes = harness->engine().last_stats().read_bytes;
  for (int i = 0; i < snapshots; ++i) {
    ITG_RETURN_IF_ERROR(harness->Step(batch_size, insert_ratio));
    times.incremental_avg_seconds += harness->engine().last_stats().seconds;
    times.incremental_avg_read_bytes +=
        harness->engine().last_stats().read_bytes;
  }
  times.incremental_avg_seconds /= snapshots;
  times.incremental_avg_read_bytes /= static_cast<uint64_t>(snapshots);
  return times;
}

/// Exits loudly on error (bench binaries are not Status-plumbed).
inline void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(StatusOr<T> value) {
  CheckOk(value.status());
  return std::move(value).value();
}

}  // namespace itg::bench

#endif  // ITG_BENCH_BENCH_UTIL_H_
