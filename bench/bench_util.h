#ifndef ITG_BENCH_BENCH_UTIL_H_
#define ITG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "algos/programs.h"
#include "algos/reference.h"
#include "common/logging.h"
#include "gen/rmat.h"
#include "harness/harness.h"
#include "harness/run_report.h"

namespace itg::bench {

/// Fresh temp path prefix for a store.
inline std::string TempPath(const std::string& name) {
  static int counter = 0;
  auto dir = std::filesystem::temp_directory_path() / "itg_bench";
  std::filesystem::create_directories(dir);
  return (dir / (name + "_" + std::to_string(counter++))).string();
}

/// The paper's default workload mix (§6.1): 75:25 insertions:deletions,
/// averaged over four consecutive incremental snapshots.
inline constexpr double kDefaultInsertRatio = 0.75;
inline constexpr int kDefaultSnapshots = 4;

struct PipelineTimes {
  double oneshot_seconds = 0;
  double incremental_avg_seconds = 0;
  uint64_t oneshot_read_bytes = 0;
  uint64_t incremental_avg_read_bytes = 0;
  double speedup() const {
    return incremental_avg_seconds > 0
               ? oneshot_seconds / incremental_avg_seconds
               : 0;
  }
};

/// The process-wide run report, written at exit by BenchMain when the
/// binary was invoked with `--metrics-json=<path>`.
inline RunReport& Report() {
  static RunReport report;
  return report;
}

/// Appends the harness engine's last run (stats + per-machine breakdown +
/// per-operator profile) to the process report.
inline void RecordRun(Harness* harness, const std::string& name) {
  const std::vector<MachineStats>& machines =
      harness->engine().machine_stats();
  uint64_t network_bytes = 0;
  for (const MachineStats& m : machines) network_bytes += m.network_bytes;
  Report().AddRun(name, harness->engine().last_stats(), machines,
                  network_bytes, &harness->engine().last_profile());
}

/// Appends a baseline engine run (GraphBolt-style / DD-style) to the
/// process report. Baselines have no RunStats plumbing of their own, so
/// the run-level work totals are rolled up from the per-phase operator
/// profile the baseline recorded; the per-operator and per-superstep
/// sections carry the full breakdown. This makes all three engines'
/// reports diffable with the same tools/report_diff.py gate.
inline void RecordBaselineRun(const std::string& name,
                              const gsa::ExecutionProfile& profile,
                              double seconds, bool incremental) {
  RunStats stats;
  stats.incremental = incremental;
  stats.seconds = seconds;
  stats.supersteps = static_cast<int>(profile.supersteps().size());
  for (const auto& [id, entry] : profile.ops()) {
    stats.edges_scanned += entry.counters.edges;
    stats.emissions_applied +=
        entry.counters.out_pos + entry.counters.out_neg;
    stats.delta_walks_pruned += entry.counters.pruned;
    if (incremental) stats.recomputed_vertices += entry.counters.in_pos;
  }
  Report().AddRun(name, stats, {}, 0, &profile);
}

/// True when the binary was invoked with `--quick`: benches shrink their
/// graphs/batches to CI scale (report_diff_smoke runs fig15 this way, so
/// quick-mode run labels must stay stable across code changes).
inline bool& QuickMode() {
  static bool quick = false;
  return quick;
}

/// One-shot at G_0 plus `snapshots` incremental steps, averaged. Every run
/// is recorded into the process report under `label` (auto-numbered when
/// empty, since most benches call this once per configuration).
inline StatusOr<PipelineTimes> RunPipeline(Harness* harness,
                                           size_t batch_size,
                                           double insert_ratio,
                                           int snapshots = kDefaultSnapshots,
                                           std::string label = "") {
  if (label.empty()) {
    static int pipeline_counter = 0;
    label = "pipeline" + std::to_string(pipeline_counter++);
  }
  PipelineTimes times;
  ITG_RETURN_IF_ERROR(harness->RunOneShot());
  RecordRun(harness, label + "/oneshot");
  times.oneshot_seconds = harness->engine().last_stats().seconds;
  times.oneshot_read_bytes = harness->engine().last_stats().read_bytes;
  for (int i = 0; i < snapshots; ++i) {
    ITG_RETURN_IF_ERROR(harness->Step(batch_size, insert_ratio));
    RecordRun(harness, label + "/step" + std::to_string(i));
    times.incremental_avg_seconds += harness->engine().last_stats().seconds;
    times.incremental_avg_read_bytes +=
        harness->engine().last_stats().read_bytes;
  }
  times.incremental_avg_seconds /= snapshots;
  times.incremental_avg_read_bytes /= static_cast<uint64_t>(snapshots);
  Report().AddResult(label + "/oneshot_seconds", times.oneshot_seconds);
  Report().AddResult(label + "/incremental_avg_seconds",
                     times.incremental_avg_seconds);
  return times;
}

/// Exits loudly on error (bench binaries are not Status-plumbed).
inline void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckOk(StatusOr<T> value) {
  CheckOk(value.status());
  return std::move(value).value();
}

/// Shared bench entry point: parses `--metrics-json=<path>`, runs the
/// bench body, then writes the run report. Benches keep their logic in
/// `itg::Main()` and delegate:
///
///   int main(int argc, char** argv) {
///     return itg::bench::BenchMain("fig12_overall", argc, argv, itg::Main);
///   }
inline int BenchMain(const char* binary, int argc, char** argv,
                     int (*body)()) {
  Report().set_binary(binary);
  std::string metrics_json;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string kFlag = "--metrics-json=";
    if (arg.rfind(kFlag, 0) == 0) {
      metrics_json = arg.substr(kFlag.size());
    } else if (arg == "--quick") {
      QuickMode() = true;
    } else {
      std::fprintf(stderr, "usage: %s [--metrics-json=<path>] [--quick]\n",
                   binary);
      return 2;
    }
  }
  const int rc = body();
  if (rc == 0 && !metrics_json.empty()) {
    Status status = Report().WriteTo(metrics_json);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics report write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return rc;
}

}  // namespace itg::bench

#endif  // ITG_BENCH_BENCH_UTIL_H_
