// Figure 16: effects of the optimizations.
//  (a) multi-hop ablation for TC and LCC: BASE (all off) -> +TR -> +TR+NP
//      -> ALL (+SWS), vs the one-shot baseline. The store pool is sized
//      below the graph so repeated seeks show up as real IO.
//  (b) MIN-with-counting (CNT) for WCC and BFS across insert:delete
//      ratios: speedup of CNT-on over CNT-off.
#include <cstdio>

#include "algos/reference.h"
#include "bench/bench_util.h"

namespace itg {
namespace {

using bench::CheckOk;

struct AblationResult {
  double oneshot;
  double base;
  double tr;
  double tr_np;
  double all;
};

double RunConfig(const std::string& source, int scale, bool tr, bool np,
                 bool sws, size_t batch) {
  HarnessOptions options;
  options.path = bench::TempPath("fig16");
  options.symmetric = true;
  options.store.buffer_pool_pages = 4;  // graph >> pool: IO is real
  options.engine.traversal_reordering = tr;
  options.engine.neighbor_pruning = np;
  options.engine.seek_window_sharing = sws;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                         GenerateRmat(scale), options));
  CheckOk(harness->RunOneShot());
  double total = 0;
  for (int i = 0; i < 3; ++i) {
    CheckOk(harness->Step(batch, bench::kDefaultInsertRatio));
    total += harness->engine().last_stats().seconds;
  }
  return total / 3;
}

double OneShotSeconds(const std::string& source, int scale) {
  HarnessOptions options;
  options.path = bench::TempPath("fig16one");
  options.symmetric = true;
  options.store.buffer_pool_pages = 4;
  options.engine.record_history = false;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(scale),
                                         GenerateRmat(scale), options));
  CheckOk(harness->RunOneShot());
  return harness->engine().last_stats().seconds;
}

void Ablation(const char* name, const std::string& source, int scale,
              size_t batch) {
  AblationResult r;
  r.oneshot = OneShotSeconds(source, scale);
  r.base = RunConfig(source, scale, false, false, false, batch);
  r.tr = RunConfig(source, scale, true, false, false, batch);
  r.tr_np = RunConfig(source, scale, true, true, false, batch);
  r.all = RunConfig(source, scale, true, true, true, batch);
  std::printf("%-5s %12.4f %12.4f %12.4f %12.4f %12.4f\n", name, r.oneshot,
              r.base, r.tr, r.tr_np, r.all);
  std::printf("%-5s %12s %11.2fx %11.2fx %11.2fx %11.2fx  (one-shot / "
              "incremental)\n",
              "", "-", r.oneshot / r.base, r.oneshot / r.tr,
              r.oneshot / r.tr_np, r.oneshot / r.all);
}

double RunCnt(const std::string& source, double ratio, bool cnt) {
  HarnessOptions options;
  options.path = bench::TempPath("fig16cnt");
  options.symmetric = true;
  options.engine.min_counting = cnt;
  auto harness = CheckOk(Harness::Create(source, RmatVertices(16),
                                         GenerateRmat(16), options));
  CheckOk(harness->RunOneShot());
  double total = 0;
  for (int i = 0; i < 4; ++i) {
    CheckOk(harness->Step(200, ratio));
    total += harness->engine().last_stats().seconds;
  }
  return total / 4;
}

}  // namespace

int Main() {
  std::printf("=== Figure 16(a): TR/NP/SWS ablation (RMAT_15, |dG|=100, "
              "75:25, pool=4 pages) ===\n");
  std::printf("%-5s %12s %12s %12s %12s %12s\n", "algo", "oneshot[s]",
              "BASE[s]", "+TR[s]", "+TR+NP[s]", "ALL[s]");
  Ablation("TC", TriangleCountProgram(), 15, 100);
  Ablation("LCC", LccProgram(), 15, 100);
  std::printf("\npaper shape: BASE can be slower than one-shot (TC); TR "
              "helps modestly, TR+NP strongly (13.1x for TC), SWS adds "
              "more (28.9x TC, 52.7x LCC).\n");

  std::printf("\n=== Figure 16(b): MIN-with-counting speedup "
              "(RMAT_16, |dG|=200) ===\n");
  std::printf("%-8s %10s %10s\n", "ratio", "WCC", "BFS");
  Csr csr = Csr::FromEdges(RmatVertices(16),
                           SymmetrizeEdges(GenerateRmat(16)));
  VertexId root = MaxDegreeVertex(csr);
  const double ratios[] = {1.0, 0.75, 0.5, 0.25, 0.0};
  const char* names[] = {"100:0", "75:25", "50:50", "25:75", "0:100"};
  for (int r = 0; r < 5; ++r) {
    double wcc_off = RunCnt(WccProgram(), ratios[r], false);
    double wcc_on = RunCnt(WccProgram(), ratios[r], true);
    double bfs_off = RunCnt(BfsProgram(root), ratios[r], false);
    double bfs_on = RunCnt(BfsProgram(root), ratios[r], true);
    std::printf("%-8s %9.2fx %9.2fx\n", names[r], wcc_off / wcc_on,
                bfs_off / bfs_on);
  }
  std::printf("\npaper shape: CNT speedups grow with the deletion share "
              "(2.4-10.5x WCC, 1.4-9.5x BFS) and are > 1 even "
              "insertion-only.\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("fig16_optimizations", argc, argv, itg::Main);
}
