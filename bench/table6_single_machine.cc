// Table 6: single-machine execution times for PageRank (PR) and Label
// Propagation (LP), one-shot and incremental, iTurboGraph vs. the
// GraphBolt-style baseline.
//
// Paper (TWT, 1.37 B edges): GrB PR 59.9/54.5 s, iTbGPP PR 53.2/23.8 s;
// GrB LP 133.5/109.5 s, iTbGPP LP 139.6/29.8 s. Expected shape: one-shot
// comparable; iTurboGraph's incremental far below its one-shot, while
// GraphBolt's refinement (no value-change cutoff) stays near one-shot.
#include <cstdio>

#include "baselines/graphbolt.h"
#include "bench/bench_util.h"
#include "common/memory_budget.h"
#include "gen/workload.h"

namespace itg {
namespace {

using bench::CheckOk;

constexpr int kScale = 16;            // RMAT_16 stands in for TWT
constexpr int kSupersteps = 10;       // paper: 10 iterations for Group 1
constexpr size_t kBatch = 100;        // |ΔG| scaled to the graph
constexpr int kLabels = 8;

struct Row {
  const char* system;
  const char* algo;
  double oneshot;
  double incremental;
};

Row RunItg(const char* algo, const std::string& source) {
  HarnessOptions options;
  options.path = bench::TempPath(std::string("table6_") + algo);
  options.engine.fixed_supersteps = kSupersteps;
  auto harness = CheckOk(Harness::Create(
      source, RmatVertices(kScale), GenerateRmat(kScale), options));
  auto times = CheckOk(bench::RunPipeline(harness.get(), kBatch,
                                          bench::kDefaultInsertRatio));
  return {"iTbGPP", algo, times.oneshot_seconds,
          times.incremental_avg_seconds};
}

Row RunGrb(const char* algo, GraphBoltEngine::Algo kind) {
  const std::string label = std::string("grb/") + algo;
  MutationWorkload workload(GenerateRmat(kScale), 0.9, 42);
  MemoryBudget budget;
  GraphBoltEngine grb(kind, kLabels, kSupersteps, &budget);
  Stopwatch watch;
  CheckOk(grb.RunInitial(RmatVertices(kScale), workload.initial_edges()));
  double oneshot = watch.ElapsedSeconds();
  bench::RecordBaselineRun(label + "/oneshot", grb.profile(), oneshot,
                           /*incremental=*/false);
  double incremental = 0;
  for (int i = 0; i < bench::kDefaultSnapshots; ++i) {
    auto batch = workload.NextBatch(kBatch, bench::kDefaultInsertRatio);
    watch.Restart();
    CheckOk(grb.ApplyMutationsAndRefine(batch));
    double step = watch.ElapsedSeconds();
    bench::RecordBaselineRun(label + "/step" + std::to_string(i),
                             grb.profile(), step, /*incremental=*/true);
    incremental += step;
  }
  return {"GrB", algo, oneshot, incremental / bench::kDefaultSnapshots};
}

}  // namespace

int Main() {
  std::printf("=== Table 6: single-machine PR/LP, RMAT_%d, |dG|=%zu, "
              "%d supersteps ===\n",
              kScale, kBatch, kSupersteps);
  std::printf("%-8s %-4s %12s %14s %10s\n", "system", "algo", "oneshot[s]",
              "incremental[s]", "inc/one");
  Row rows[] = {
      RunGrb("PR", GraphBoltEngine::Algo::kPageRank),
      RunItg("PR", QuantizedPageRankProgram()),
      RunGrb("LP", GraphBoltEngine::Algo::kLabelProp),
      RunItg("LP", QuantizedLabelPropProgram(kLabels)),
  };
  for (const Row& r : rows) {
    std::printf("%-8s %-4s %12.4f %14.4f %9.2fx\n", r.system, r.algo,
                r.oneshot, r.incremental,
                r.incremental > 0 ? r.oneshot / r.incremental : 0.0);
  }
  std::printf("\npaper shape: one-shot comparable between systems; "
              "iTbGPP incremental speedup (PR ~2.2x, LP ~4.7x over its "
              "one-shot) well above GrB's (~1.1-1.2x).\n");
  return 0;
}

}  // namespace itg

int main(int argc, char** argv) {
  return itg::bench::BenchMain("table6_single_machine", argc, argv, itg::Main);
}
