// Socket face of the standing-query service: newline-delimited JSON
// request/response over loopback TCP (common/socket_listener.h in
// thread-per-connection mode, so a subscriber parked on a delta stream
// never starves new clients). All protocol semantics live in
// serve/service.h; this class only frames lines, dispatches ops, and
// owns the per-connection subscription plumbing:
//
//   - each connection gets a write mutex, because ΔQ records arrive
//     from the maintenance thread while request acks leave from the
//     connection thread;
//   - subscriptions die with their connection (the read loop's exit
//     path detaches every sink it registered);
//   - the `shutdown` op acks, then trips the shared clean-stop flag
//     (common/clean_stop.h) — the daemon's main loop drains the
//     service exactly as it would on SIGINT.
#ifndef ITG_SERVE_SERVER_H_
#define ITG_SERVE_SERVER_H_

#include <string>

#include "common/socket_listener.h"
#include "common/status.h"
#include "serve/service.h"

namespace itg {
namespace serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = ephemeral (read back with port()).
  int port = 0;
  /// When non-empty, the bound port is written here once listening.
  std::string port_file;
};

class Server {
 public:
  /// `service` must outlive the server.
  explicit Server(Service* service) : service_(service) {}
  ~Server() { Stop(); }

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start(const ServerOptions& options);
  void Stop();

  int port() const { return listener_.port(); }
  bool running() const { return listener_.running(); }

 private:
  void HandleConnection(int fd);

  Service* service_;
  SocketListener listener_;
};

}  // namespace serve
}  // namespace itg

#endif  // ITG_SERVE_SERVER_H_
