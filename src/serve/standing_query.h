// One standing incremental view (§2.2, §5 of the paper). A registered
// L_NGA query becomes a long-lived Engine whose state advances by one
// RunIncremental per ingested Δ-batch — the serving-layer embodiment of
// the incremental contract Q(G ∪ ΔG) = Q(G) ∪ ΔQ: after every batch the
// view's audited attributes hold exactly what a from-scratch run over
// the mutated graph would (verified on registration by reusing the
// drift auditor, and continuously observable through the state digest).
//
// Isolation model: each view owns a private DynamicGraphStore replica,
// materialized from the graph of record at registration time
// (MaterializeEdges) and advanced in lockstep by the service's
// maintenance thread. Replicas exist because an Engine registers its
// program's attribute schema into its store's VertexStore — two
// different programs cannot share one store's per-timestamp history
// files. The ROADMAP's MVCC-shared-snapshot item replaces the replicas
// with refcounted shared snapshots; the wire protocol is unaffected.
//
// Memory accounting: the dominant resident structures (attribute
// columns, previous-state mirror, replica edge list) are charged to a
// per-query MemoryBudget slice at admission time, so one greedy
// registration fails with `budget_exceeded` instead of degrading every
// established view.
#ifndef ITG_SERVE_STANDING_QUERY_H_
#define ITG_SERVE_STANDING_QUERY_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_budget.h"
#include "common/metrics_registry.h"
#include "common/resource_scope.h"
#include "common/status.h"
#include "common/types.h"
#include "compiler/compiled_program.h"
#include "engine/engine.h"
#include "serve/protocol.h"
#include "storage/graph_store.h"

namespace itg {
namespace serve {

struct StandingQueryOptions {
  /// Client-chosen view name; also the LiveStatus query label while this
  /// view's supersteps run.
  std::string name;
  /// L_NGA source (already resolved from a builtin name if any).
  std::string source;
  /// -1 = run to convergence; else exactly this many supersteps.
  int fixed_supersteps = -1;
  /// Mirror every Δ-op (u,v) as (v,u) for this view (undirected
  /// analytics; the ingest stream must then never contain both
  /// orientations of an edge).
  bool symmetric = false;
  /// Hard cap for this view's charged bytes; 0 = uncapped slice.
  uint64_t budget_bytes = 0;
  /// File prefix for the view's store replica.
  std::string scratch_path;
  int num_partitions = 1;
  int num_threads = 0;
  /// After the registration one-shot, audit the view against a shadow
  /// replay (DriftAuditor::AuditNow) before admitting it.
  bool verify_on_register = true;
  /// Registry for the view's `resource.view.<name>.*` attribution
  /// counters (common/resource_scope.h); null = GlobalRegistry(). The
  /// service passes its own registry so tests with private registries
  /// see — and can retire — the per-view series.
  MetricsRegistry* registry = nullptr;
};

/// A registered query: compiled program + store replica + resumable
/// engine + previous-state mirror for ΔQ extraction. Not thread-safe;
/// the service serializes all calls on its maintenance thread.
class StandingQuery {
 public:
  /// Compiles, charges the memory budget, replicates `primary` at its
  /// latest snapshot, runs the one-shot plan, and (optionally) audits
  /// the fresh view. Failure modes callers turn into structured errors:
  /// InvalidArgument = compile_error, OutOfMemory = budget_exceeded.
  static StatusOr<std::unique_ptr<StandingQuery>> Create(
      DynamicGraphStore* primary, const StandingQueryOptions& options);

  ~StandingQuery();

  StandingQuery(const StandingQuery&) = delete;
  StandingQuery& operator=(const StandingQuery&) = delete;

  /// Applies one Δ-batch (primary-store coordinates; symmetrization
  /// happens inside) and runs the incremental plan. On success fills
  /// `out` as a `delta` message: changed audited cells (after-images vs.
  /// the previous snapshot), run stats, and the new state digest.
  Status ApplyBatch(const std::vector<EdgeDelta>& batch, Response* out);

  /// Fills `out` as a `snapshot` message: every audited attribute column
  /// in full, plus the digest the columns reproduce.
  void FillSnapshot(Response* out) const;

  /// Fills one status row (shared by the `status` op and /statusz).
  void FillRow(QueryRow* row) const;

  const std::string& name() const { return options_.name; }
  Timestamp timestamp() const { return t_; }
  uint64_t digest() const { return digest_; }
  uint64_t runs() const { return runs_; }
  const MemoryBudget& budget() const { return *budget_; }
  const StandingQueryOptions& options() const { return options_; }

  /// Per-view pipeline observability state, owned and updated by the
  /// Service. The metric handles are resolved once at registration (the
  /// per-batch fan-out must not pay a string-concat + registry-lock
  /// lookup per view per batch) and become dangling after the Service
  /// retires the view's series — they die with the view. The staleness
  /// fields are the view's position in the ingest stream: the primary
  /// sequence number and ingest wall-clock of the newest batch this view
  /// has applied (seeded at registration under the service lock, so
  /// batches still queued at registration count as lag until applied).
  struct PipelineStats {
    Histogram* delta_latency = nullptr;  // serve.delta_latency_us.<name>
    Histogram* view_run = nullptr;   // serve.stage_latency_us.view_run.<name>
    Histogram* stream_flush = nullptr;  // ...stream_flush.<name>
    Gauge* lag_batches = nullptr;       // serve.view_lag_batches.<name>
    Gauge* lag_us = nullptr;            // serve.view_lag_us.<name>
    Gauge* budget_used = nullptr;       // serve.budget_used_bytes.<name>
    uint64_t applied_seq = 0;
    std::chrono::steady_clock::time_point applied_ingest_time{};
    // Last values pushed to the gauges; echoed into status rows and the
    // /statusz pipeline section without re-deriving under another lock.
    uint64_t lag_batches_now = 0;
    uint64_t lag_us_now = 0;
  };
  PipelineStats& pipeline() { return pipeline_; }
  const PipelineStats& pipeline() const { return pipeline_; }

  /// Names of the per-view registry series backing `pipeline()` and the
  /// resource context; the Service removes exactly these on deregister
  /// (metric retirement).
  std::vector<std::string> MetricSeriesNames() const;

  /// The view's attribution principal: CPU / page reads / allocation
  /// bytes spent maintaining this view are charged to
  /// `resource.view.<name>.*` (scoped inside Create and ApplyBatch).
  ResourceContext* resource_context() { return resource_ctx_.get(); }
  const ResourceContext* resource_context() const {
    return resource_ctx_.get();
  }

 private:
  StandingQuery() = default;

  /// Copies the audited columns into prev_ (the diff baseline).
  void MirrorState();

  StandingQueryOptions options_;
  std::unique_ptr<CompiledProgram> program_;
  std::unique_ptr<DynamicGraphStore> store_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<MemoryBudget> budget_;  // atomics make it unmovable
  uint64_t charged_bytes_ = 0;
  std::unique_ptr<ResourceContext> resource_ctx_;

  std::vector<int> audited_;               // engine attribute ids
  std::vector<std::vector<double>> prev_;  // audited columns, last snapshot

  Timestamp t_ = 0;  // view-local snapshot number
  uint64_t digest_ = 0;
  uint64_t runs_ = 0;
  int last_supersteps_ = 0;
  double last_seconds_ = 0;

  PipelineStats pipeline_;
};

}  // namespace serve
}  // namespace itg

#endif  // ITG_SERVE_STANDING_QUERY_H_
