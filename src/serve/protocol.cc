#include "serve/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace itg {
namespace serve {

// ---------------------------------------------------------------------------
// JSON serialization helpers
// ---------------------------------------------------------------------------

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out->append(hex);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(double v, std::string* out) {
  if (std::isnan(v)) {
    out->append("NaN");
    return;
  }
  if (std::isinf(v)) {
    out->append(v < 0 ? "-Infinity" : "Infinity");
    return;
  }
  char buf[40];
  // %.17g round-trips every finite IEEE-754 double, which is what lets a
  // subscriber recompute bit-exact state digests from streamed values.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

namespace {

void AppendUint64AsString(uint64_t v, std::string* out) {
  out->push_back('"');
  out->append(std::to_string(v));
  out->push_back('"');
}

// ---------------------------------------------------------------------------
// JSON parser: recursive descent over one line
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& text) : p_(text.c_str()) {}

  StatusOr<Json> ParseDocument() {
    Json v;
    ITG_RETURN_IF_ERROR(ParseValue(&v));
    SkipSpace();
    if (*p_ != '\0') return Err("trailing characters after JSON value");
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("json: " + what);
  }

  void SkipSpace() {
    while (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r') ++p_;
  }

  bool Consume(const char* token) {
    const size_t n = std::strlen(token);
    if (std::strncmp(p_, token, n) != 0) return false;
    p_ += n;
    return true;
  }

  Status ParseValue(Json* out) {
    if (++depth_ > 64) return Err("nesting too deep");
    SkipSpace();
    Status s;
    switch (*p_) {
      case '{':
        s = ParseObject(out);
        break;
      case '[':
        s = ParseArray(out);
        break;
      case '"':
        out->kind = Json::Kind::kString;
        s = ParseString(&out->s);
        break;
      case 't':
        if (!Consume("true")) return Err("bad literal");
        out->kind = Json::Kind::kBool;
        out->b = true;
        s = Status::OK();
        break;
      case 'f':
        if (!Consume("false")) return Err("bad literal");
        out->kind = Json::Kind::kBool;
        out->b = false;
        s = Status::OK();
        break;
      case 'n':
        if (!Consume("null")) return Err("bad literal");
        out->kind = Json::Kind::kNull;
        s = Status::OK();
        break;
      case 'N':
        if (!Consume("NaN")) return Err("bad literal");
        out->kind = Json::Kind::kDouble;
        out->d = std::numeric_limits<double>::quiet_NaN();
        s = Status::OK();
        break;
      case 'I':
        if (!Consume("Infinity")) return Err("bad literal");
        out->kind = Json::Kind::kDouble;
        out->d = std::numeric_limits<double>::infinity();
        s = Status::OK();
        break;
      default:
        s = ParseNumber(out);
    }
    --depth_;
    return s;
  }

  Status ParseObject(Json* out) {
    out->kind = Json::Kind::kObject;
    ++p_;  // '{'
    SkipSpace();
    if (*p_ == '}') {
      ++p_;
      return Status::OK();
    }
    for (;;) {
      SkipSpace();
      if (*p_ != '"') return Err("expected object key");
      std::string key;
      ITG_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (*p_ != ':') return Err("expected ':'");
      ++p_;
      Json value;
      ITG_RETURN_IF_ERROR(ParseValue(&value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return Status::OK();
      }
      return Err("expected ',' or '}'");
    }
  }

  Status ParseArray(Json* out) {
    out->kind = Json::Kind::kArray;
    ++p_;  // '['
    SkipSpace();
    if (*p_ == ']') {
      ++p_;
      return Status::OK();
    }
    for (;;) {
      Json value;
      ITG_RETURN_IF_ERROR(ParseValue(&value));
      out->items.push_back(std::move(value));
      SkipSpace();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return Status::OK();
      }
      return Err("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening quote
    out->clear();
    while (*p_ != '"') {
      if (*p_ == '\0') return Err("unterminated string");
      if (*p_ == '\\') {
        ++p_;
        switch (*p_) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++p_;
              const char c = *p_;
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return Err("bad \\u escape");
            }
            // Protocol strings are ASCII identifiers; encode BMP code
            // points as UTF-8 without surrogate-pair handling.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("bad escape");
        }
        ++p_;
      } else {
        out->push_back(*p_);
        ++p_;
      }
    }
    ++p_;  // closing quote
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    const char* start = p_;
    if (*p_ == '-') {
      ++p_;
      if (*p_ == 'I') {
        if (!Consume("Infinity")) return Err("bad literal");
        out->kind = Json::Kind::kDouble;
        out->d = -std::numeric_limits<double>::infinity();
        return Status::OK();
      }
    }
    bool is_double = false;
    while (std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (*p_ == '.') {
      is_double = true;
      ++p_;
      while (std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (*p_ == 'e' || *p_ == 'E') {
      is_double = true;
      ++p_;
      if (*p_ == '+' || *p_ == '-') ++p_;
      while (std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ == start || (p_ == start + 1 && *start == '-')) {
      return Err("bad number");
    }
    const std::string text(start, p_);
    if (is_double) {
      out->kind = Json::Kind::kDouble;
      out->d = std::strtod(text.c_str(), nullptr);
    } else {
      out->kind = Json::Kind::kInt;
      out->i = std::strtoll(text.c_str(), nullptr, 10);
    }
    return Status::OK();
  }

  const char* p_;
  int depth_ = 0;
};

// Field accessors tolerant of absent members.
std::string GetString(const Json& obj, const char* key) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->kind == Json::Kind::kString ? v->s : std::string();
}

int64_t GetInt(const Json& obj, const char* key, int64_t def = 0) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->is_num() ? v->AsInt() : def;
}

double GetDouble(const Json& obj, const char* key, double def = 0) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->is_num() ? v->AsDouble() : def;
}

bool GetBool(const Json& obj, const char* key, bool def = false) {
  const Json* v = obj.Find(key);
  return v != nullptr && v->kind == Json::Kind::kBool ? v->b : def;
}

// Digests travel as decimal strings (uint64 does not survive a
// double-typed number path); accept a plain number too.
uint64_t GetUint64String(const Json& obj, const char* key) {
  const Json* v = obj.Find(key);
  if (v == nullptr) return 0;
  if (v->kind == Json::Kind::kString) {
    return std::strtoull(v->s.c_str(), nullptr, 10);
  }
  if (v->is_num()) return static_cast<uint64_t>(v->AsInt());
  return 0;
}

Status ParseEdgeList(const Json& obj, const char* key,
                     std::vector<Edge>* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (v->kind != Json::Kind::kArray) {
    return Status::InvalidArgument(std::string(key) + " must be an array");
  }
  out->reserve(v->items.size());
  for (const Json& pair : v->items) {
    if (pair.kind != Json::Kind::kArray || pair.items.size() != 2 ||
        !pair.items[0].is_num() || !pair.items[1].is_num()) {
      return Status::InvalidArgument(std::string(key) +
                                     " entries must be [src, dst]");
    }
    out->push_back(Edge{pair.items[0].AsInt(), pair.items[1].AsInt()});
  }
  return Status::OK();
}

void AppendEdgeList(const std::vector<Edge>& edges, std::string* out) {
  out->push_back('[');
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i != 0) out->push_back(',');
    out->push_back('[');
    out->append(std::to_string(edges[i].src));
    out->push_back(',');
    out->append(std::to_string(edges[i].dst));
    out->push_back(']');
  }
  out->push_back(']');
}

}  // namespace

StatusOr<Json> Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

const Json* Json::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kRegister:
      return "register";
    case RequestOp::kSubscribe:
      return "subscribe";
    case RequestOp::kUnsubscribe:
      return "unsubscribe";
    case RequestOp::kDeregister:
      return "deregister";
    case RequestOp::kIngest:
      return "ingest";
    case RequestOp::kStatus:
      return "status";
    case RequestOp::kShutdown:
      return "shutdown";
  }
  return "?";
}

StatusOr<Request> ParseRequest(const std::string& line) {
  ITG_ASSIGN_OR_RETURN(Json doc, Json::Parse(line));
  if (doc.kind != Json::Kind::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const std::string op = GetString(doc, "op");
  Request req;
  if (op == "register") {
    req.op = RequestOp::kRegister;
  } else if (op == "subscribe") {
    req.op = RequestOp::kSubscribe;
  } else if (op == "unsubscribe") {
    req.op = RequestOp::kUnsubscribe;
  } else if (op == "deregister") {
    req.op = RequestOp::kDeregister;
  } else if (op == "ingest") {
    req.op = RequestOp::kIngest;
  } else if (op == "status") {
    req.op = RequestOp::kStatus;
  } else if (op == "shutdown") {
    req.op = RequestOp::kShutdown;
  } else {
    return Status::InvalidArgument("unknown op '" + op + "'");
  }
  req.query = GetString(doc, "query");
  switch (req.op) {
    case RequestOp::kRegister:
      req.program = GetString(doc, "program");
      req.source = GetString(doc, "source");
      req.supersteps = static_cast<int>(GetInt(doc, "supersteps"));
      req.symmetric = GetBool(doc, "symmetric");
      req.subscribe = GetBool(doc, "subscribe");
      req.snapshot = GetBool(doc, "snapshot");
      req.budget_bytes = GetUint64String(doc, "budget_bytes");
      if (req.query.empty()) {
        return Status::InvalidArgument("register requires \"query\"");
      }
      if (req.program.empty() && req.source.empty()) {
        return Status::InvalidArgument(
            "register requires \"program\" or \"source\"");
      }
      break;
    case RequestOp::kSubscribe:
    case RequestOp::kUnsubscribe:
    case RequestOp::kDeregister:
      if (req.query.empty()) {
        return Status::InvalidArgument(std::string(RequestOpName(req.op)) +
                                       " requires \"query\"");
      }
      break;
    case RequestOp::kIngest:
      ITG_RETURN_IF_ERROR(ParseEdgeList(doc, "inserts", &req.inserts));
      ITG_RETURN_IF_ERROR(ParseEdgeList(doc, "deletes", &req.deletes));
      if (req.inserts.empty() && req.deletes.empty()) {
        return Status::InvalidArgument(
            "ingest requires \"inserts\" and/or \"deletes\"");
      }
      break;
    case RequestOp::kStatus:
    case RequestOp::kShutdown:
      break;
  }
  return req;
}

std::string SerializeRequest(const Request& req) {
  std::string out = "{\"op\":\"";
  out.append(RequestOpName(req.op));
  out.push_back('"');
  if (!req.query.empty()) {
    out.append(",\"query\":");
    AppendJsonString(req.query, &out);
  }
  if (req.op == RequestOp::kRegister) {
    if (!req.program.empty()) {
      out.append(",\"program\":");
      AppendJsonString(req.program, &out);
    }
    if (!req.source.empty()) {
      out.append(",\"source\":");
      AppendJsonString(req.source, &out);
    }
    if (req.supersteps != 0) {
      out.append(",\"supersteps\":").append(std::to_string(req.supersteps));
    }
    if (req.symmetric) out.append(",\"symmetric\":true");
    if (req.subscribe) out.append(",\"subscribe\":true");
    if (req.snapshot) out.append(",\"snapshot\":true");
    if (req.budget_bytes != 0) {
      out.append(",\"budget_bytes\":");
      AppendUint64AsString(req.budget_bytes, &out);
    }
  }
  if (req.op == RequestOp::kIngest) {
    out.append(",\"inserts\":");
    AppendEdgeList(req.inserts, &out);
    out.append(",\"deletes\":");
    AppendEdgeList(req.deletes, &out);
  }
  out.push_back('}');
  return out;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

const char* ResponseTypeName(ResponseType type) {
  switch (type) {
    case ResponseType::kAck:
      return "ack";
    case ResponseType::kError:
      return "error";
    case ResponseType::kSnapshot:
      return "snapshot";
    case ResponseType::kDelta:
      return "delta";
    case ResponseType::kStatus:
      return "status";
  }
  return "?";
}

namespace {

Status ParseAttrColumns(const Json& doc, std::vector<AttrColumn>* out) {
  const Json* attrs = doc.Find("attrs");
  if (attrs == nullptr) return Status::OK();
  for (const Json& a : attrs->items) {
    AttrColumn col;
    col.name = GetString(a, "name");
    col.salt = static_cast<int>(GetInt(a, "salt"));
    col.width = static_cast<int>(GetInt(a, "width", 1));
    const Json* values = a.Find("values");
    if (values == nullptr || values->kind != Json::Kind::kArray) {
      return Status::InvalidArgument("snapshot attr missing values");
    }
    col.values.reserve(values->items.size());
    for (const Json& v : values->items) col.values.push_back(v.AsDouble());
    out->push_back(std::move(col));
  }
  return Status::OK();
}

Status ParseAttrCells(const Json& doc, std::vector<AttrCells>* out) {
  const Json* changes = doc.Find("changes");
  if (changes == nullptr) return Status::OK();
  for (const Json& a : changes->items) {
    AttrCells cells;
    cells.name = GetString(a, "name");
    cells.salt = static_cast<int>(GetInt(a, "salt"));
    cells.width = static_cast<int>(GetInt(a, "width", 1));
    const Json* vertices = a.Find("vertices");
    const Json* values = a.Find("values");
    if (vertices == nullptr || values == nullptr) {
      return Status::InvalidArgument("delta change missing vertices/values");
    }
    for (const Json& v : vertices->items) cells.vertices.push_back(v.AsInt());
    for (const Json& v : values->items) cells.values.push_back(v.AsDouble());
    if (cells.values.size() !=
        cells.vertices.size() * static_cast<size_t>(cells.width)) {
      return Status::InvalidArgument("delta change values/vertices mismatch");
    }
    out->push_back(std::move(cells));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Response> ParseResponse(const std::string& line) {
  ITG_ASSIGN_OR_RETURN(Json doc, Json::Parse(line));
  if (doc.kind != Json::Kind::kObject) {
    return Status::InvalidArgument("response must be a JSON object");
  }
  const std::string type = GetString(doc, "type");
  Response resp;
  resp.op = GetString(doc, "op");
  resp.query = GetString(doc, "query");
  resp.timestamp = static_cast<Timestamp>(GetInt(doc, "timestamp"));
  resp.digest = GetUint64String(doc, "digest");
  resp.queue_depth = static_cast<uint64_t>(GetInt(doc, "queue_depth"));
  resp.trace_id = GetUint64String(doc, "trace_id");
  if (type == "ack") {
    resp.type = ResponseType::kAck;
  } else if (type == "error") {
    resp.type = ResponseType::kError;
    resp.code = GetString(doc, "code");
    resp.message = GetString(doc, "message");
  } else if (type == "snapshot") {
    resp.type = ResponseType::kSnapshot;
    resp.num_vertices = GetInt(doc, "num_vertices");
    ITG_RETURN_IF_ERROR(ParseAttrColumns(doc, &resp.attrs));
  } else if (type == "delta") {
    resp.type = ResponseType::kDelta;
    resp.seq = static_cast<uint64_t>(GetInt(doc, "seq"));
    resp.batch_ops = static_cast<uint64_t>(GetInt(doc, "batch_ops"));
    resp.supersteps = static_cast<int>(GetInt(doc, "supersteps"));
    resp.seconds = GetDouble(doc, "seconds");
    resp.latency_us = static_cast<uint64_t>(GetInt(doc, "latency_us"));
    ITG_RETURN_IF_ERROR(ParseAttrCells(doc, &resp.changes));
  } else if (type == "status") {
    resp.type = ResponseType::kStatus;
    resp.backpressure_stalls =
        static_cast<uint64_t>(GetInt(doc, "backpressure_stalls"));
    resp.ingest_batches = static_cast<uint64_t>(GetInt(doc, "ingest_batches"));
    resp.max_queries = static_cast<uint64_t>(GetInt(doc, "max_queries"));
    resp.draining = GetBool(doc, "draining");
    const Json* queries = doc.Find("queries");
    if (queries != nullptr) {
      for (const Json& q : queries->items) {
        QueryRow row;
        row.query = GetString(q, "query");
        row.timestamp = static_cast<Timestamp>(GetInt(q, "timestamp"));
        row.digest = GetUint64String(q, "digest");
        row.runs = static_cast<uint64_t>(GetInt(q, "runs"));
        row.supersteps = static_cast<int>(GetInt(q, "supersteps"));
        row.last_seconds = GetDouble(q, "last_seconds");
        row.budget_bytes = GetUint64String(q, "budget_bytes");
        row.budget_used_bytes = GetUint64String(q, "budget_used_bytes");
        row.subscribers = static_cast<int>(GetInt(q, "subscribers"));
        row.lag_batches = static_cast<uint64_t>(GetInt(q, "lag_batches"));
        row.lag_us = static_cast<uint64_t>(GetInt(q, "lag_us"));
        resp.queries.push_back(std::move(row));
      }
    }
  } else {
    return Status::InvalidArgument("unknown response type '" + type + "'");
  }
  return resp;
}

std::string SerializeResponse(const Response& resp) {
  std::string out = "{\"type\":\"";
  out.append(ResponseTypeName(resp.type));
  out.push_back('"');
  if (!resp.op.empty()) {
    out.append(",\"op\":");
    AppendJsonString(resp.op, &out);
  }
  if (!resp.query.empty()) {
    out.append(",\"query\":");
    AppendJsonString(resp.query, &out);
  }
  switch (resp.type) {
    case ResponseType::kAck:
      out.append(",\"timestamp\":").append(std::to_string(resp.timestamp));
      out.append(",\"digest\":");
      AppendUint64AsString(resp.digest, &out);
      out.append(",\"queue_depth\":").append(std::to_string(resp.queue_depth));
      if (resp.trace_id != 0) {
        out.append(",\"trace_id\":");
        AppendUint64AsString(resp.trace_id, &out);
      }
      break;
    case ResponseType::kError:
      out.append(",\"code\":");
      AppendJsonString(resp.code, &out);
      out.append(",\"message\":");
      AppendJsonString(resp.message, &out);
      break;
    case ResponseType::kSnapshot: {
      out.append(",\"timestamp\":").append(std::to_string(resp.timestamp));
      out.append(",\"digest\":");
      AppendUint64AsString(resp.digest, &out);
      out.append(",\"num_vertices\":")
          .append(std::to_string(resp.num_vertices));
      out.append(",\"attrs\":[");
      for (size_t i = 0; i < resp.attrs.size(); ++i) {
        const AttrColumn& col = resp.attrs[i];
        if (i != 0) out.push_back(',');
        out.append("{\"name\":");
        AppendJsonString(col.name, &out);
        out.append(",\"salt\":").append(std::to_string(col.salt));
        out.append(",\"width\":").append(std::to_string(col.width));
        out.append(",\"values\":[");
        for (size_t j = 0; j < col.values.size(); ++j) {
          if (j != 0) out.push_back(',');
          AppendJsonDouble(col.values[j], &out);
        }
        out.append("]}");
      }
      out.push_back(']');
      break;
    }
    case ResponseType::kDelta: {
      out.append(",\"seq\":").append(std::to_string(resp.seq));
      out.append(",\"timestamp\":").append(std::to_string(resp.timestamp));
      out.append(",\"batch_ops\":").append(std::to_string(resp.batch_ops));
      out.append(",\"supersteps\":").append(std::to_string(resp.supersteps));
      out.append(",\"seconds\":");
      AppendJsonDouble(resp.seconds, &out);
      out.append(",\"latency_us\":").append(std::to_string(resp.latency_us));
      if (resp.trace_id != 0) {
        out.append(",\"trace_id\":");
        AppendUint64AsString(resp.trace_id, &out);
      }
      out.append(",\"digest\":");
      AppendUint64AsString(resp.digest, &out);
      out.append(",\"changes\":[");
      for (size_t i = 0; i < resp.changes.size(); ++i) {
        const AttrCells& cells = resp.changes[i];
        if (i != 0) out.push_back(',');
        out.append("{\"name\":");
        AppendJsonString(cells.name, &out);
        out.append(",\"salt\":").append(std::to_string(cells.salt));
        out.append(",\"width\":").append(std::to_string(cells.width));
        out.append(",\"vertices\":[");
        for (size_t j = 0; j < cells.vertices.size(); ++j) {
          if (j != 0) out.push_back(',');
          out.append(std::to_string(cells.vertices[j]));
        }
        out.append("],\"values\":[");
        for (size_t j = 0; j < cells.values.size(); ++j) {
          if (j != 0) out.push_back(',');
          AppendJsonDouble(cells.values[j], &out);
        }
        out.append("]}");
      }
      out.push_back(']');
      break;
    }
    case ResponseType::kStatus: {
      out.append(",\"queries\":[");
      for (size_t i = 0; i < resp.queries.size(); ++i) {
        const QueryRow& row = resp.queries[i];
        if (i != 0) out.push_back(',');
        out.append("{\"query\":");
        AppendJsonString(row.query, &out);
        out.append(",\"timestamp\":").append(std::to_string(row.timestamp));
        out.append(",\"digest\":");
        AppendUint64AsString(row.digest, &out);
        out.append(",\"runs\":").append(std::to_string(row.runs));
        out.append(",\"supersteps\":").append(std::to_string(row.supersteps));
        out.append(",\"last_seconds\":");
        AppendJsonDouble(row.last_seconds, &out);
        out.append(",\"budget_bytes\":");
        AppendUint64AsString(row.budget_bytes, &out);
        out.append(",\"budget_used_bytes\":");
        AppendUint64AsString(row.budget_used_bytes, &out);
        out.append(",\"subscribers\":")
            .append(std::to_string(row.subscribers));
        out.append(",\"lag_batches\":")
            .append(std::to_string(row.lag_batches));
        out.append(",\"lag_us\":").append(std::to_string(row.lag_us));
        out.push_back('}');
      }
      out.push_back(']');
      out.append(",\"queue_depth\":").append(std::to_string(resp.queue_depth));
      out.append(",\"backpressure_stalls\":")
          .append(std::to_string(resp.backpressure_stalls));
      out.append(",\"ingest_batches\":")
          .append(std::to_string(resp.ingest_batches));
      out.append(",\"max_queries\":").append(std::to_string(resp.max_queries));
      out.append(",\"draining\":").append(resp.draining ? "true" : "false");
      break;
    }
  }
  out.push_back('}');
  return out;
}

Response MakeError(RequestOp op, const std::string& query,
                   const std::string& code, const std::string& message) {
  Response resp;
  resp.type = ResponseType::kError;
  resp.op = RequestOpName(op);
  resp.query = query;
  resp.code = code;
  resp.message = message;
  return resp;
}

Response MakeAck(RequestOp op, const std::string& query) {
  Response resp;
  resp.type = ResponseType::kAck;
  resp.op = RequestOpName(op);
  resp.query = query;
  return resp;
}

}  // namespace serve
}  // namespace itg
