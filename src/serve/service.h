// The standing-query service (tentpole of the serving layer): owns the
// graph of record, admits L_NGA registrations as standing incremental
// views (serve/standing_query.h), and pumps ingested Δ-batches through
// every view on one maintenance thread — the paper's "continuously
// maintain analysis results as the graph evolves" promoted from a batch
// driver loop to a long-lived daemon.
//
// Transport-free by design: this class speaks protocol.h structs, not
// sockets, so the admission-control / backpressure / drain logic is
// unit-testable without a port (tests/serve_test.cc). The socket face
// lives in serve/server.h.
//
// Concurrency model. One mutex (mu_) serializes the control plane
// (register/deregister/status) with batch application; the bounded
// ingest queue decouples producers from view maintenance:
//
//   client conns --Ingest()--> [bounded queue] --maintenance thread-->
//       primary.ApplyMutations + per-view ApplyBatch + subscriber fan-out
//
// When ingestion outruns maintenance the queue fills and Ingest()
// blocks — backpressure, surfaced as the serve.backpressure_stalls
// counter (one bump per blocked enqueue). Graceful shutdown (Drain)
// stops admitting work, drains the queue, finishes the in-flight
// supersteps, and only then returns; SIGINT and the `shutdown` op share
// this one path (common/clean_stop.h).
#ifndef ITG_SERVE_SERVICE_H_
#define ITG_SERVE_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/timed_mutex.h"
#include "common/types.h"
#include "serve/protocol.h"
#include "serve/standing_query.h"
#include "storage/graph_store.h"

namespace itg {
namespace serve {

struct ServiceOptions {
  /// Admission control: max concurrently standing queries.
  size_t max_queries = 8;
  /// Default per-query MemoryBudget slice when a register request does
  /// not carry budget_bytes; 0 = uncapped.
  uint64_t default_budget_bytes = 0;
  /// Bounded ingest queue capacity (batches); a full queue blocks
  /// Ingest() — the backpressure mechanism.
  size_t ingest_queue_depth = 64;
  /// File prefix for the primary store and per-view replicas.
  std::string scratch_dir;
  /// Worker threads per view engine (0 = ITG_THREADS / hardware).
  int num_threads = 0;
  /// Audit every freshly registered view against a shadow replay.
  bool verify_on_register = true;
  /// Registry for serve.* counters; null = GlobalMetrics().registry().
  MetricsRegistry* registry = nullptr;
  /// Slow-batch log threshold: a batch whose ingest-entry -> last-flush
  /// latency exceeds this many milliseconds logs its per-stage breakdown
  /// and dumps the flight-recorder window. 0 disables the log.
  uint64_t slow_batch_ms = 0;
};

/// ΔQ sink of one subscriber: called on the maintenance thread with the
/// fully-formed delta message of one view after one batch. Must not
/// re-enter the Service.
using DeltaSink = std::function<void(const Response&)>;

class Service {
 public:
  /// Builds the service around a fresh primary store over `base_edges`.
  static StatusOr<std::unique_ptr<Service>> Create(
      VertexId num_vertices, std::vector<Edge> base_edges,
      const ServiceOptions& options);

  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // ---- control plane (request -> response, synchronous) ----

  /// Admission control + view construction. On success returns an ack
  /// carrying the view's one-shot digest; when `req.snapshot` is set and
  /// `snapshot_out` non-null, also fills a snapshot message to deliver
  /// after the ack. Registration runs the one-shot inline, pausing batch
  /// maintenance (the view must replicate the primary at a batch
  /// boundary).
  Response Register(const Request& req, Response* snapshot_out);

  /// Drops a standing query and releases its budget slice.
  Response Deregister(const Request& req);

  /// Attaches a ΔQ sink to a query; `sub_id_out` is the handle for
  /// RemoveSubscriber. Errors: unknown_query.
  Response Subscribe(const Request& req, DeltaSink sink, int* sub_id_out);
  void RemoveSubscriber(const std::string& query, int sub_id);

  /// Validates and enqueues one Δ-batch. Blocks while the queue is full
  /// (backpressure). The ack reports the post-enqueue queue depth; view
  /// maintenance happens asynchronously.
  Response Ingest(const Request& req);

  /// Per-query rows + service counters.
  Response GetStatus();

  /// Stops admitting work, drains the queue through every view, joins
  /// the maintenance thread. Idempotent; also run by the destructor.
  void Drain();
  bool draining() const;

  /// The /statusz splice: `"serving":{...}` with the same rows as the
  /// status op (TelemetryServer::set_statusz_extra).
  std::string StatuszExtraJson();

  // ---- introspection (tests, run reports) ----

  size_t standing_queries() const;
  uint64_t backpressure_stalls() const;
  uint64_t ingest_batches() const;
  const ServiceOptions& options() const { return options_; }
  DynamicGraphStore* primary() { return primary_.get(); }

  /// Test hook: while paused the maintenance thread holds off dequeuing,
  /// so a unit test can fill a tiny queue and observe a deterministic
  /// backpressure stall.
  void SetMaintenancePaused(bool paused);

 private:
  Service() = default;

  // One ingested Δ-batch in flight through the pipeline. The three time
  // points below are deliberately shared between adjacent stage
  // measurements (each stage ends exactly where the next begins, on the
  // same steady clock), so the per-stage serve.stage_latency_us.* samples
  // sum to the end-to-end serve.delta_latency_us with no unattributed
  // time — asserted by tests.
  struct PendingBatch {
    std::vector<EdgeDelta> ops;
    uint64_t seq = 0;
    /// Pipeline trace id (MakeTraceId(seq)); echoed in the ingest ack,
    /// every delta message, and the serve.batch flow events.
    uint64_t trace_id = 0;
    std::chrono::steady_clock::time_point ingest_start;  // Ingest() entry
    /// Validation done; the `validate` stage ends and `queue_wait` (incl.
    /// any backpressure block) begins here.
    std::chrono::steady_clock::time_point enqueued_at;
    /// Set by the maintenance thread at dequeue; `queue_wait` ends and
    /// `apply` begins here.
    std::chrono::steady_clock::time_point dequeued_at;
  };

  void MaintenanceLoop();
  void ApplyOneBatch(PendingBatch batch);
  void FillStatusLocked(Response* out);
  /// `{"slow_batch_ms":...,"stages":{...},"views":{...}}` — the
  /// "pipeline" object of the /statusz splice.
  std::string PipelineStatuszJson();
  /// Trace id for batch `seq`: a per-service random-ish base mixed with
  /// the seq (bijective), so ids are not accidentally equal to seqs and
  /// client correlation through the wire round-trip is meaningful.
  uint64_t MakeTraceId(uint64_t seq) const;
  /// Resolves + caches the per-view metric handles and seeds the
  /// staleness reference. Call under mu_ right after admission.
  void BindViewPipelineLocked(StandingQuery* query);
  /// Drops the view's serve.*.<name> registry series (after the cached
  /// handles died with the view). Call under mu_ after erasing the view.
  void RetireViewSeriesLocked(const std::vector<std::string>& names);
  /// Recomputes one view's lag gauges from last_ingested_* vs the view's
  /// applied position. Call under mu_.
  void UpdateViewLagLocked(StandingQuery* query);

  ServiceOptions options_;
  MetricsRegistry* registry_ = nullptr;
  std::unique_ptr<DynamicGraphStore> primary_;

  mutable std::mutex mu_;  // control plane + primary + views + subscribers
  std::map<std::string, std::unique_ptr<StandingQuery>> queries_;
  struct Subscriber {
    int id;
    DeltaSink sink;
  };
  std::map<std::string, std::vector<Subscriber>> subscribers_;
  int next_sub_id_ = 1;
  /// Live edge set mirror for ingest validation (the store's degree
  /// bookkeeping requires inserts of absent and deletes of present
  /// edges); includes batches still in the queue.
  std::unordered_set<Edge, EdgeHash> present_;
  bool draining_ = false;

  /// Guards the ingest queue. Timed (contention.serve.ingest_queue.*):
  /// producers racing the maintenance thread for the queue — including
  /// the condition-variable relock after a backpressure wakeup herd —
  /// surface as wait_us samples. A pointer because the histogram lives
  /// in registry_, which Create() resolves after construction.
  std::unique_ptr<TimedMutex> queue_mu_;
  std::condition_variable_any queue_cv_;   // consumer wakeups
  std::condition_variable_any space_cv_;   // producer wakeups (backpressure)
  std::deque<PendingBatch> queue_;
  bool applying_ = false;  // a batch is between dequeue and fan-out
  bool paused_ = false;
  bool stop_thread_ = false;
  std::thread maintenance_;
  /// Next ticket allowed to enqueue (strict seq FIFO under backpressure).
  uint64_t next_ticket_ = 1;

  uint64_t next_seq_ = 1;
  /// Position of the graph of record in the ingest stream (under mu_):
  /// seq + ingest entry time of the newest validated batch, and the seq
  /// of the newest batch already applied to the primary. The per-view
  /// lag gauges measure views against these.
  uint64_t last_ingested_seq_ = 0;
  std::chrono::steady_clock::time_point last_ingest_time_{};
  uint64_t last_applied_seq_ = 0;
  uint64_t trace_id_base_ = 0;
  Counter* backpressure_stalls_ = nullptr;
  Counter* ingest_batches_ = nullptr;
  Counter* ingest_ops_ = nullptr;
  Counter* delta_messages_ = nullptr;
  Counter* slow_batches_ = nullptr;
  Gauge* standing_queries_gauge_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  // Batch-level stage histograms (per-view stages live on the views).
  Histogram* stage_validate_ = nullptr;
  Histogram* stage_queue_wait_ = nullptr;
  Histogram* stage_apply_ = nullptr;
};

}  // namespace serve
}  // namespace itg

#endif  // ITG_SERVE_SERVICE_H_
