#include "serve/service.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "algos/programs.h"
#include "common/live_status.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace itg {
namespace serve {

namespace {

// Structured error code for a failed registration, from the Status the
// view-construction pipeline produced.
const char* RegisterErrorCode(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOutOfMemory:
      return "budget_exceeded";
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kCompileError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnsupported:
      return "compile_error";
    default:
      return "internal";
  }
}

}  // namespace

StatusOr<std::unique_ptr<Service>> Service::Create(
    VertexId num_vertices, std::vector<Edge> base_edges,
    const ServiceOptions& options) {
  auto service = std::unique_ptr<Service>(new Service());
  service->options_ = options;
  service->registry_ = options.registry != nullptr
                           ? options.registry
                           : &GlobalMetrics().registry();
  MetricsRegistry* reg = service->registry_;
  service->backpressure_stalls_ = reg->counter("serve.backpressure_stalls");
  service->ingest_batches_ = reg->counter("serve.ingest_batches");
  service->ingest_ops_ = reg->counter("serve.ingest_ops");
  service->delta_messages_ = reg->counter("serve.delta_messages");
  service->standing_queries_gauge_ = reg->gauge("serve.standing_queries");
  service->queue_depth_gauge_ = reg->gauge("serve.queue_depth");

  if (!options.scratch_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.scratch_dir, ec);
  }

  // The primary mirrors the store's simple-graph normalization (dedup,
  // no self-loops) into present_, the ingest-validation edge set.
  for (const Edge& e : base_edges) {
    if (e.src != e.dst) service->present_.insert(e);
  }
  std::vector<Edge> edges(service->present_.begin(),
                          service->present_.end());
  ITG_ASSIGN_OR_RETURN(
      service->primary_,
      DynamicGraphStore::Create(options.scratch_dir + "/primary",
                                num_vertices, std::move(edges),
                                DynamicGraphStore::Options{},
                                &GlobalMetrics()));
  service->maintenance_ = std::thread([s = service.get()] {
    s->MaintenanceLoop();
  });
  return service;
}

Service::~Service() { Drain(); }

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

Response Service::Register(const Request& req, Response* snapshot_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return MakeError(RequestOp::kRegister, req.query, "shutting_down",
                     "service is draining");
  }
  if (queries_.count(req.query) != 0) {
    return MakeError(RequestOp::kRegister, req.query, "already_exists",
                     "query '" + req.query + "' is already registered");
  }
  if (queries_.size() >= options_.max_queries) {
    return MakeError(RequestOp::kRegister, req.query, "admission_full",
                     "max standing queries reached (" +
                         std::to_string(options_.max_queries) + ")");
  }

  StandingQueryOptions sq;
  sq.name = req.query;
  sq.fixed_supersteps = -1;
  if (!req.program.empty()) {
    int builtin_supersteps = -1;
    if (!NamedProgram(req.program, &sq.source, &builtin_supersteps)) {
      return MakeError(RequestOp::kRegister, req.query, "compile_error",
                       "unknown builtin program '" + req.program + "'");
    }
    sq.fixed_supersteps = builtin_supersteps;
  } else {
    sq.source = req.source;
  }
  if (req.supersteps != 0) sq.fixed_supersteps = req.supersteps;
  sq.symmetric = req.symmetric;
  sq.budget_bytes = req.budget_bytes != 0 ? req.budget_bytes
                                          : options_.default_budget_bytes;
  sq.scratch_path = options_.scratch_dir + "/view_" + req.query;
  sq.num_threads = options_.num_threads;
  sq.verify_on_register = options_.verify_on_register;

  auto query_or = StandingQuery::Create(primary_.get(), sq);
  if (!query_or.ok()) {
    const Status& s = query_or.status();
    ITG_LOG(Warn) << "serve: register '" << req.query
                  << "' failed: " << s.ToString();
    return MakeError(RequestOp::kRegister, req.query, RegisterErrorCode(s),
                     s.ToString());
  }
  auto query = std::move(query_or).value();

  Response ack = MakeAck(RequestOp::kRegister, req.query);
  ack.timestamp = query->timestamp();
  ack.digest = query->digest();
  if (req.snapshot && snapshot_out != nullptr) {
    query->FillSnapshot(snapshot_out);
  }
  queries_[req.query] = std::move(query);
  standing_queries_gauge_->Set(static_cast<int64_t>(queries_.size()));
  ITG_LOG(Info) << "serve: registered standing query '" << req.query << "'";
  return ack;
}

Response Service::Deregister(const Request& req) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(req.query);
  if (it == queries_.end()) {
    return MakeError(RequestOp::kDeregister, req.query, "unknown_query",
                     "no standing query '" + req.query + "'");
  }
  queries_.erase(it);
  subscribers_.erase(req.query);
  standing_queries_gauge_->Set(static_cast<int64_t>(queries_.size()));
  return MakeAck(RequestOp::kDeregister, req.query);
}

Response Service::Subscribe(const Request& req, DeltaSink sink,
                            int* sub_id_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.count(req.query) == 0) {
    return MakeError(RequestOp::kSubscribe, req.query, "unknown_query",
                     "no standing query '" + req.query + "'");
  }
  const int id = next_sub_id_++;
  subscribers_[req.query].push_back(Subscriber{id, std::move(sink)});
  if (sub_id_out != nullptr) *sub_id_out = id;
  return MakeAck(RequestOp::kSubscribe, req.query);
}

void Service::RemoveSubscriber(const std::string& query, int sub_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscribers_.find(query);
  if (it == subscribers_.end()) return;
  auto& subs = it->second;
  subs.erase(std::remove_if(subs.begin(), subs.end(),
                            [&](const Subscriber& s) {
                              return s.id == sub_id;
                            }),
             subs.end());
  if (subs.empty()) subscribers_.erase(it);
}

Response Service::Ingest(const Request& req) {
  PendingBatch batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return MakeError(RequestOp::kIngest, "", "shutting_down",
                       "service is draining");
    }
    // Validate against the live edge set (including still-queued
    // batches): the store's degree bookkeeping requires that inserts
    // target absent edges and deletes present ones, and every vertex
    // must be inside the fixed vertex space.
    const VertexId n = primary_->num_vertices();
    for (const Edge& e : req.inserts) {
      if (e.src < 0 || e.dst < 0 || e.src >= n || e.dst >= n) {
        return MakeError(RequestOp::kIngest, "", "out_of_range",
                         "insert [" + std::to_string(e.src) + "," +
                             std::to_string(e.dst) +
                             ") outside vertex space of " +
                             std::to_string(n));
      }
      if (e.src == e.dst || present_.count(e) != 0) {
        return MakeError(RequestOp::kIngest, "", "invalid_mutation",
                         "insert of present edge or self-loop [" +
                             std::to_string(e.src) + "," +
                             std::to_string(e.dst) + "]");
      }
    }
    for (const Edge& e : req.deletes) {
      if (present_.count(e) == 0) {
        return MakeError(RequestOp::kIngest, "", "invalid_mutation",
                         "delete of absent edge [" +
                             std::to_string(e.src) + "," +
                             std::to_string(e.dst) + "]");
      }
    }
    for (const Edge& e : req.inserts) {
      present_.insert(e);
      batch.ops.push_back({e, Multiplicity{1}});
    }
    for (const Edge& e : req.deletes) {
      present_.erase(e);
      batch.ops.push_back({e, Multiplicity{-1}});
    }
    batch.seq = next_seq_++;
  }
  batch.enqueued_at = std::chrono::steady_clock::now();

  size_t depth;
  {
    std::unique_lock<std::mutex> ql(queue_mu_);
    // Backpressure: block while the bounded queue is full. Tickets
    // (seq order) keep concurrently blocked producers from reordering
    // batches relative to the validation order above.
    if (queue_.size() >= options_.ingest_queue_depth) {
      backpressure_stalls_->Increment();
    }
    space_cv_.wait(ql, [&] {
      return queue_.size() < options_.ingest_queue_depth &&
             batch.seq == next_ticket_;
    });
    ++next_ticket_;
    queue_.push_back(std::move(batch));
    depth = queue_.size();
    queue_depth_gauge_->Set(static_cast<int64_t>(depth));
    queue_cv_.notify_all();
    space_cv_.notify_all();
  }
  ingest_batches_->Increment();
  ingest_ops_->Add(req.inserts.size() + req.deletes.size());

  Response ack = MakeAck(RequestOp::kIngest, "");
  ack.queue_depth = depth;
  return ack;
}

Response Service::GetStatus() {
  Response resp;
  std::lock_guard<std::mutex> lock(mu_);
  FillStatusLocked(&resp);
  return resp;
}

void Service::FillStatusLocked(Response* out) {
  out->type = ResponseType::kStatus;
  for (const auto& [name, query] : queries_) {
    QueryRow row;
    query->FillRow(&row);
    auto sub_it = subscribers_.find(name);
    row.subscribers = sub_it != subscribers_.end()
                          ? static_cast<int>(sub_it->second.size())
                          : 0;
    out->queries.push_back(std::move(row));
  }
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    out->queue_depth = queue_.size() + (applying_ ? 1 : 0);
  }
  out->backpressure_stalls = backpressure_stalls_->value();
  out->ingest_batches = ingest_batches_->value();
  out->max_queries = options_.max_queries;
  out->draining = draining_;
}

std::string Service::StatuszExtraJson() {
  Response status = GetStatus();
  // Reuse the wire rendering, then lift the members we want into a
  // named "serving" object (the status message is itself a JSON object;
  // strip its "type" discriminator).
  std::string body = SerializeResponse(status);
  // body = {"type":"status",REST} -> "serving":{REST}
  const std::string prefix = "{\"type\":\"status\",";
  std::string inner = body.substr(prefix.size());  // REST}  (ends with })
  return "\"serving\":{" + inner;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void Service::MaintenanceLoop() {
  for (;;) {
    PendingBatch batch;
    {
      std::unique_lock<std::mutex> ql(queue_mu_);
      queue_cv_.wait(ql, [&] {
        return stop_thread_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty()) {
        if (stop_thread_) break;
        continue;
      }
      // A drain overrides a test-hook pause: queued work always
      // finishes before the thread exits.
      if (paused_ && !stop_thread_) continue;
      batch = std::move(queue_.front());
      queue_.pop_front();
      applying_ = true;
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
      space_cv_.notify_all();
    }
    ApplyOneBatch(std::move(batch));
    {
      std::lock_guard<std::mutex> ql(queue_mu_);
      applying_ = false;
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
  }
}

void Service::ApplyOneBatch(PendingBatch batch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto ts_or = primary_->ApplyMutations(batch.ops);
  if (!ts_or.ok()) {
    // Validation in Ingest() makes this unreachable short of storage
    // failure; the batch is lost but the service stays up.
    ITG_LOG(Error) << "serve: primary ApplyMutations failed: "
                   << ts_or.status().ToString();
    return;
  }
  GlobalLiveStatus().SetDeltaSeq(*ts_or);

  std::vector<std::string> broken;
  for (auto& [name, query] : queries_) {
    Response delta;
    Status s = query->ApplyBatch(batch.ops, &delta);
    if (!s.ok()) {
      ITG_LOG(Error) << "serve: view '" << name
                     << "' failed incremental maintenance, dropping it: "
                     << s.ToString();
      broken.push_back(name);
      continue;
    }
    delta.seq = batch.seq;
    const auto now = std::chrono::steady_clock::now();
    delta.latency_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - batch.enqueued_at)
            .count());
    registry_->histogram("serve.delta_latency_us." + name)
        ->Record(delta.latency_us);
    auto sub_it = subscribers_.find(name);
    if (sub_it != subscribers_.end()) {
      for (const Subscriber& sub : sub_it->second) {
        sub.sink(delta);
        delta_messages_->Increment();
      }
    }
  }
  for (const std::string& name : broken) {
    queries_.erase(name);
    subscribers_.erase(name);
  }
  if (!broken.empty()) {
    standing_queries_gauge_->Set(static_cast<int64_t>(queries_.size()));
  }
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

void Service::Drain() {
  uint64_t last_issued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Second Drain (destructor after an explicit call): fall through
      // to the join below, which is a no-op once the thread stopped.
      last_issued = next_seq_ - 1;
    } else {
      draining_ = true;
      last_issued = next_seq_ - 1;
      ITG_LOG(Info) << "serve: draining (" << queries_.size()
                    << " standing queries)";
    }
  }
  {
    std::unique_lock<std::mutex> ql(queue_mu_);
    paused_ = false;
    // Wait for every issued ticket to be enqueued and every queued
    // batch to clear the in-flight window.
    queue_cv_.wait(ql, [&] {
      return next_ticket_ > last_issued && queue_.empty() && !applying_;
    });
    stop_thread_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t Service::standing_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

uint64_t Service::backpressure_stalls() const {
  return backpressure_stalls_->value();
}

uint64_t Service::ingest_batches() const {
  return ingest_batches_->value();
}

void Service::SetMaintenancePaused(bool paused) {
  {
    std::lock_guard<std::mutex> ql(queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

}  // namespace serve
}  // namespace itg
