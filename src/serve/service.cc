#include "serve/service.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "algos/programs.h"
#include "common/flight_recorder.h"
#include "common/live_status.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace itg {
namespace serve {

namespace {

uint64_t MicrosBetween(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

// Structured error code for a failed registration, from the Status the
// view-construction pipeline produced.
const char* RegisterErrorCode(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOutOfMemory:
      return "budget_exceeded";
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kCompileError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kUnsupported:
      return "compile_error";
    default:
      return "internal";
  }
}

}  // namespace

StatusOr<std::unique_ptr<Service>> Service::Create(
    VertexId num_vertices, std::vector<Edge> base_edges,
    const ServiceOptions& options) {
  auto service = std::unique_ptr<Service>(new Service());
  service->options_ = options;
  service->registry_ = options.registry != nullptr
                           ? options.registry
                           : &GlobalMetrics().registry();
  MetricsRegistry* reg = service->registry_;
  service->backpressure_stalls_ = reg->counter("serve.backpressure_stalls");
  service->ingest_batches_ = reg->counter("serve.ingest_batches");
  service->ingest_ops_ = reg->counter("serve.ingest_ops");
  service->delta_messages_ = reg->counter("serve.delta_messages");
  service->slow_batches_ = reg->counter("serve.slow_batches");
  service->standing_queries_gauge_ = reg->gauge("serve.standing_queries");
  service->queue_depth_gauge_ = reg->gauge("serve.queue_depth");
  service->stage_validate_ = reg->histogram("serve.stage_latency_us.validate");
  service->stage_queue_wait_ =
      reg->histogram("serve.stage_latency_us.queue_wait");
  service->stage_apply_ = reg->histogram("serve.stage_latency_us.apply");
  // Built here (not at member init) because the contention histogram
  // lives in the service's registry, resolved just above. Must precede
  // the maintenance-thread spawn below.
  service->queue_mu_ =
      std::make_unique<TimedMutex>("serve.ingest_queue", reg);
  // Trace-id layout: a 31-bit per-process salt in bits 32..62, the batch
  // seq in the low 32 bits. Ids are therefore nonzero, unique per service
  // for 2^32 batches, visibly distinct from raw seqs, and fit in a
  // positive int64 so they double as trace-span arguments.
  const uint64_t nanos = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  service->trace_id_base_ = ((nanos & 0x3FFFFFFFull) | 0x40000000ull) << 32;

  if (!options.scratch_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.scratch_dir, ec);
  }

  // The primary mirrors the store's simple-graph normalization (dedup,
  // no self-loops) into present_, the ingest-validation edge set.
  for (const Edge& e : base_edges) {
    if (e.src != e.dst) service->present_.insert(e);
  }
  std::vector<Edge> edges(service->present_.begin(),
                          service->present_.end());
  ITG_ASSIGN_OR_RETURN(
      service->primary_,
      DynamicGraphStore::Create(options.scratch_dir + "/primary",
                                num_vertices, std::move(edges),
                                DynamicGraphStore::Options{},
                                &GlobalMetrics()));
  service->maintenance_ = std::thread([s = service.get()] {
    s->MaintenanceLoop();
  });
  return service;
}

Service::~Service() { Drain(); }

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

Response Service::Register(const Request& req, Response* snapshot_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return MakeError(RequestOp::kRegister, req.query, "shutting_down",
                     "service is draining");
  }
  if (queries_.count(req.query) != 0) {
    return MakeError(RequestOp::kRegister, req.query, "already_exists",
                     "query '" + req.query + "' is already registered");
  }
  if (queries_.size() >= options_.max_queries) {
    return MakeError(RequestOp::kRegister, req.query, "admission_full",
                     "max standing queries reached (" +
                         std::to_string(options_.max_queries) + ")");
  }

  StandingQueryOptions sq;
  sq.name = req.query;
  sq.fixed_supersteps = -1;
  if (!req.program.empty()) {
    int builtin_supersteps = -1;
    if (!NamedProgram(req.program, &sq.source, &builtin_supersteps)) {
      return MakeError(RequestOp::kRegister, req.query, "compile_error",
                       "unknown builtin program '" + req.program + "'");
    }
    sq.fixed_supersteps = builtin_supersteps;
  } else {
    sq.source = req.source;
  }
  if (req.supersteps != 0) sq.fixed_supersteps = req.supersteps;
  sq.symmetric = req.symmetric;
  sq.budget_bytes = req.budget_bytes != 0 ? req.budget_bytes
                                          : options_.default_budget_bytes;
  sq.scratch_path = options_.scratch_dir + "/view_" + req.query;
  sq.num_threads = options_.num_threads;
  sq.verify_on_register = options_.verify_on_register;
  sq.registry = registry_;

  auto query_or = StandingQuery::Create(primary_.get(), sq);
  if (!query_or.ok()) {
    const Status& s = query_or.status();
    ITG_LOG(Warn) << "serve: register '" << req.query
                  << "' failed: " << s.ToString();
    return MakeError(RequestOp::kRegister, req.query, RegisterErrorCode(s),
                     s.ToString());
  }
  auto query = std::move(query_or).value();

  Response ack = MakeAck(RequestOp::kRegister, req.query);
  ack.timestamp = query->timestamp();
  ack.digest = query->digest();
  if (req.snapshot && snapshot_out != nullptr) {
    query->FillSnapshot(snapshot_out);
  }
  BindViewPipelineLocked(query.get());
  queries_[req.query] = std::move(query);
  standing_queries_gauge_->Set(static_cast<int64_t>(queries_.size()));
  ITG_LOG(Info) << "serve: registered standing query '" << req.query << "'";
  return ack;
}

Response Service::Deregister(const Request& req) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(req.query);
  if (it == queries_.end()) {
    return MakeError(RequestOp::kDeregister, req.query, "unknown_query",
                     "no standing query '" + req.query + "'");
  }
  // Retire the view's per-name registry series so register/deregister
  // churn does not leak dead serve.*.<name> series into /metrics. The
  // cached handles die with the view, so collect the names first.
  const std::vector<std::string> series = it->second->MetricSeriesNames();
  queries_.erase(it);
  RetireViewSeriesLocked(series);
  subscribers_.erase(req.query);
  standing_queries_gauge_->Set(static_cast<int64_t>(queries_.size()));
  return MakeAck(RequestOp::kDeregister, req.query);
}

Response Service::Subscribe(const Request& req, DeltaSink sink,
                            int* sub_id_out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queries_.count(req.query) == 0) {
    return MakeError(RequestOp::kSubscribe, req.query, "unknown_query",
                     "no standing query '" + req.query + "'");
  }
  const int id = next_sub_id_++;
  subscribers_[req.query].push_back(Subscriber{id, std::move(sink)});
  if (sub_id_out != nullptr) *sub_id_out = id;
  return MakeAck(RequestOp::kSubscribe, req.query);
}

void Service::RemoveSubscriber(const std::string& query, int sub_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscribers_.find(query);
  if (it == subscribers_.end()) return;
  auto& subs = it->second;
  subs.erase(std::remove_if(subs.begin(), subs.end(),
                            [&](const Subscriber& s) {
                              return s.id == sub_id;
                            }),
             subs.end());
  if (subs.empty()) subscribers_.erase(it);
}

Response Service::Ingest(const Request& req) {
  // The batch's end-to-end latency clock starts here; the `validate`
  // stage covers everything up to the ticket hand-off below.
  const auto ingest_start = std::chrono::steady_clock::now();
  // The ingest span is emitted as an explicit complete event at the end
  // so it can carry the batch's trace id (unknown until the seq is
  // assigned under mu_) — that links it into the per-batch waterfall.
  const uint64_t trace_t0 = TraceNowNanos();
  PendingBatch batch;
  batch.ingest_start = ingest_start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      return MakeError(RequestOp::kIngest, "", "shutting_down",
                       "service is draining");
    }
    // Validate against the live edge set (including still-queued
    // batches): the store's degree bookkeeping requires that inserts
    // target absent edges and deletes present ones, and every vertex
    // must be inside the fixed vertex space.
    const VertexId n = primary_->num_vertices();
    for (const Edge& e : req.inserts) {
      if (e.src < 0 || e.dst < 0 || e.src >= n || e.dst >= n) {
        return MakeError(RequestOp::kIngest, "", "out_of_range",
                         "insert [" + std::to_string(e.src) + "," +
                             std::to_string(e.dst) +
                             ") outside vertex space of " +
                             std::to_string(n));
      }
      if (e.src == e.dst || present_.count(e) != 0) {
        return MakeError(RequestOp::kIngest, "", "invalid_mutation",
                         "insert of present edge or self-loop [" +
                             std::to_string(e.src) + "," +
                             std::to_string(e.dst) + "]");
      }
    }
    for (const Edge& e : req.deletes) {
      if (present_.count(e) == 0) {
        return MakeError(RequestOp::kIngest, "", "invalid_mutation",
                         "delete of absent edge [" +
                             std::to_string(e.src) + "," +
                             std::to_string(e.dst) + "]");
      }
    }
    for (const Edge& e : req.inserts) {
      present_.insert(e);
      batch.ops.push_back({e, Multiplicity{1}});
    }
    for (const Edge& e : req.deletes) {
      present_.erase(e);
      batch.ops.push_back({e, Multiplicity{-1}});
    }
    batch.seq = next_seq_++;
    batch.trace_id = MakeTraceId(batch.seq);
    // Advance the graph-of-record ingest frontier and refresh every
    // view's staleness gauges against it.
    last_ingested_seq_ = batch.seq;
    last_ingest_time_ = ingest_start;
    for (auto& [name, query] : queries_) UpdateViewLagLocked(query.get());
  }
  batch.enqueued_at = std::chrono::steady_clock::now();
  stage_validate_->Record(MicrosBetween(ingest_start, batch.enqueued_at));
  // The per-batch flow starts inside the ingest span; the maintenance
  // thread emits the steps, so Perfetto draws ingest -> apply ->
  // view_run -> stream_flush arrows under one id.
  TraceFlowBegin("serve.batch", "serve", batch.trace_id);
  const uint64_t trace_id = batch.trace_id;

  size_t depth;
  {
    std::unique_lock<TimedMutex> ql(*queue_mu_);
    // Backpressure: block while the bounded queue is full. Tickets
    // (seq order) keep concurrently blocked producers from reordering
    // batches relative to the validation order above.
    if (queue_.size() >= options_.ingest_queue_depth) {
      backpressure_stalls_->Increment();
    }
    space_cv_.wait(ql, [&] {
      return queue_.size() < options_.ingest_queue_depth &&
             batch.seq == next_ticket_;
    });
    ++next_ticket_;
    queue_.push_back(std::move(batch));
    // Queue depth counts queued + in-flight batches, matching the
    // status op (a batch between dequeue and fan-out is still pending
    // work; reporting it avoids a "0 deep but busy" reading).
    depth = queue_.size() + (applying_ ? 1 : 0);
    queue_depth_gauge_->Set(static_cast<int64_t>(depth));
    queue_cv_.notify_all();
    space_cv_.notify_all();
  }
  ingest_batches_->Increment();
  ingest_ops_->Add(req.inserts.size() + req.deletes.size());

  Response ack = MakeAck(RequestOp::kIngest, "");
  ack.queue_depth = depth;
  ack.trace_id = trace_id;
  TraceCompleteEvent("serve.ingest", "serve", trace_t0,
                     TraceNowNanos() - trace_t0,
                     static_cast<int64_t>(trace_id));
  return ack;
}

Response Service::GetStatus() {
  Response resp;
  std::lock_guard<std::mutex> lock(mu_);
  FillStatusLocked(&resp);
  return resp;
}

void Service::FillStatusLocked(Response* out) {
  out->type = ResponseType::kStatus;
  for (const auto& [name, query] : queries_) {
    UpdateViewLagLocked(query.get());
    QueryRow row;
    query->FillRow(&row);
    auto sub_it = subscribers_.find(name);
    row.subscribers = sub_it != subscribers_.end()
                          ? static_cast<int>(sub_it->second.size())
                          : 0;
    out->queries.push_back(std::move(row));
  }
  {
    std::lock_guard<TimedMutex> ql(*queue_mu_);
    out->queue_depth = queue_.size() + (applying_ ? 1 : 0);
  }
  out->backpressure_stalls = backpressure_stalls_->value();
  out->ingest_batches = ingest_batches_->value();
  out->max_queries = options_.max_queries;
  out->draining = draining_;
}

std::string Service::StatuszExtraJson() {
  Response status = GetStatus();
  // Reuse the wire rendering, then lift the members we want into a
  // named "serving" object (the status message is itself a JSON object;
  // strip its "type" discriminator).
  std::string body = SerializeResponse(status);
  // body = {"type":"status",REST} -> "serving":{REST,"pipeline":{...}}
  const std::string prefix = "{\"type\":\"status\",";
  std::string inner = body.substr(prefix.size());  // REST}  (ends with })
  inner.pop_back();  // re-closed after splicing in the pipeline member
  return "\"serving\":{" + inner + ",\"pipeline\":" + PipelineStatuszJson() +
         "}";
}

std::string Service::PipelineStatuszJson() {
  auto hist_json = [](const Histogram* h) {
    return "{\"count\":" + std::to_string(h->count()) +
           ",\"sum_us\":" + std::to_string(h->sum()) +
           ",\"p50_us\":" + std::to_string(h->PercentileUpperBound(50)) +
           ",\"p95_us\":" + std::to_string(h->PercentileUpperBound(95)) +
           ",\"p99_us\":" + std::to_string(h->PercentileUpperBound(99)) +
           "}";
  };
  std::lock_guard<std::mutex> lock(mu_);
  std::string out =
      "{\"slow_batch_ms\":" + std::to_string(options_.slow_batch_ms) +
      ",\"slow_batches\":" + std::to_string(slow_batches_->value()) +
      ",\"last_ingested_seq\":" + std::to_string(last_ingested_seq_) +
      ",\"last_applied_seq\":" + std::to_string(last_applied_seq_) +
      ",\"stages\":{\"validate\":" + hist_json(stage_validate_) +
      ",\"queue_wait\":" + hist_json(stage_queue_wait_) +
      ",\"apply\":" + hist_json(stage_apply_) + "},\"views\":{";
  bool first = true;
  for (auto& [name, query] : queries_) {
    UpdateViewLagLocked(query.get());
    const auto& pl = query->pipeline();
    if (!first) out.push_back(',');
    first = false;
    const ResourceContext* rc = query->resource_context();
    AppendJsonString(name, &out);
    out += ":{\"lag_batches\":" + std::to_string(pl.lag_batches_now) +
           ",\"lag_us\":" + std::to_string(pl.lag_us_now) +
           ",\"view_run\":" + hist_json(pl.view_run) +
           ",\"stream_flush\":" + hist_json(pl.stream_flush) +
           ",\"cpu_nanos\":" + std::to_string(rc->cpu_nanos()) +
           ",\"pages_read\":" + std::to_string(rc->pages_read()) +
           ",\"bytes_alloc\":" + std::to_string(rc->bytes_alloc()) + "}";
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

void Service::MaintenanceLoop() {
  for (;;) {
    PendingBatch batch;
    {
      std::unique_lock<TimedMutex> ql(*queue_mu_);
      queue_cv_.wait(ql, [&] {
        return stop_thread_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty()) {
        if (stop_thread_) break;
        continue;
      }
      // A drain overrides a test-hook pause: queued work always
      // finishes before the thread exits.
      if (paused_ && !stop_thread_) continue;
      batch = std::move(queue_.front());
      queue_.pop_front();
      // `queue_wait` ends here; ApplyOneBatch starts `apply` from this
      // same time point so no dequeue-to-apply time goes unattributed.
      batch.dequeued_at = std::chrono::steady_clock::now();
      applying_ = true;
      // Gauge keeps the status-op semantics: queued + in-flight.
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size() + 1));
      space_cv_.notify_all();
    }
    ApplyOneBatch(std::move(batch));
    {
      std::lock_guard<TimedMutex> ql(*queue_mu_);
      applying_ = false;
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
    queue_cv_.notify_all();
    space_cv_.notify_all();
  }
}

void Service::ApplyOneBatch(PendingBatch batch) {
  TraceSpan apply_span("serve.apply", "serve",
                       static_cast<int64_t>(batch.trace_id));
  TraceFlowStep("serve.batch", "serve", batch.trace_id);
  stage_queue_wait_->Record(
      MicrosBetween(batch.enqueued_at, batch.dequeued_at));

  std::lock_guard<std::mutex> lock(mu_);
  auto ts_or = primary_->ApplyMutations(batch.ops);
  if (!ts_or.ok()) {
    // Validation in Ingest() makes this unreachable short of storage
    // failure; the batch is lost but the service stays up.
    ITG_LOG(Error) << "serve: primary ApplyMutations failed: "
                   << ts_or.status().ToString();
    return;
  }
  GlobalLiveStatus().SetDeltaSeq(*ts_or);
  last_applied_seq_ = batch.seq;

  // `cursor` walks the stage boundaries: each stage's end time point is
  // the next stage's start, so per-stage samples tile the batch's
  // end-to-end latency exactly (modulo microsecond truncation).
  auto cursor = std::chrono::steady_clock::now();
  const uint64_t apply_us = MicrosBetween(batch.dequeued_at, cursor);
  stage_apply_->Record(apply_us);

  // Per-view stage breakdown retained for the slow-batch log.
  struct ViewTimes {
    std::string name;
    uint64_t run_us = 0;
    uint64_t flush_us = 0;
  };
  std::vector<ViewTimes> view_times;
  const bool slow_log_armed = options_.slow_batch_ms != 0;

  std::vector<std::string> broken;
  for (auto& [name, query] : queries_) {
    auto& pl = query->pipeline();
    Response delta;
    Status s;
    {
      // The view's incremental supersteps run inside this span, so the
      // engine's own phase spans nest under serve.view_run in the trace.
      TraceSpan run_span("serve.view_run", "serve",
                         static_cast<int64_t>(batch.trace_id));
      TraceFlowStep("serve.batch", "serve", batch.trace_id);
      s = query->ApplyBatch(batch.ops, &delta);
    }
    if (!s.ok()) {
      ITG_LOG(Error) << "serve: view '" << name
                     << "' failed incremental maintenance, dropping it: "
                     << s.ToString();
      broken.push_back(name);
      cursor = std::chrono::steady_clock::now();
      continue;
    }
    const auto run_end = std::chrono::steady_clock::now();
    const uint64_t run_us = MicrosBetween(cursor, run_end);
    pl.view_run->Record(run_us);

    delta.seq = batch.seq;
    delta.trace_id = batch.trace_id;
    // The wire latency is ingest entry -> message build: a message
    // cannot contain the time it takes to flush itself. The end-to-end
    // histogram below does include the flush.
    delta.latency_us = MicrosBetween(batch.ingest_start, run_end);
    {
      TraceSpan flush_span("serve.stream_flush", "serve",
                           static_cast<int64_t>(batch.trace_id));
      TraceFlowStep("serve.batch", "serve", batch.trace_id);
      auto sub_it = subscribers_.find(name);
      if (sub_it != subscribers_.end()) {
        for (const Subscriber& sub : sub_it->second) {
          sub.sink(delta);
          delta_messages_->Increment();
        }
      }
    }
    const auto flush_end = std::chrono::steady_clock::now();
    const uint64_t flush_us = MicrosBetween(run_end, flush_end);
    pl.stream_flush->Record(flush_us);
    pl.delta_latency->Record(MicrosBetween(batch.ingest_start, flush_end));
    pl.applied_seq = batch.seq;
    pl.applied_ingest_time = batch.ingest_start;
    UpdateViewLagLocked(query.get());
    if (slow_log_armed) view_times.push_back({name, run_us, flush_us});
    cursor = flush_end;
  }
  TraceFlowEnd("serve.batch", "serve", batch.trace_id);

  for (const std::string& name : broken) {
    auto it = queries_.find(name);
    if (it != queries_.end()) {
      const std::vector<std::string> series =
          it->second->MetricSeriesNames();
      queries_.erase(it);
      RetireViewSeriesLocked(series);
    }
    subscribers_.erase(name);
  }
  if (!broken.empty()) {
    standing_queries_gauge_->Set(static_cast<int64_t>(queries_.size()));
  }

  const uint64_t total_us = MicrosBetween(batch.ingest_start, cursor);
  if (slow_log_armed && total_us > options_.slow_batch_ms * 1000) {
    slow_batches_->Increment();
    std::string msg = "serve: slow batch seq=" + std::to_string(batch.seq) +
                      " trace_id=" + std::to_string(batch.trace_id) +
                      " total_us=" + std::to_string(total_us) +
                      " validate_us=" +
                      std::to_string(MicrosBetween(batch.ingest_start,
                                                   batch.enqueued_at)) +
                      " queue_wait_us=" +
                      std::to_string(MicrosBetween(batch.enqueued_at,
                                                   batch.dequeued_at)) +
                      " apply_us=" + std::to_string(apply_us) + " views=[";
    for (size_t i = 0; i < view_times.size(); ++i) {
      if (i != 0) msg += ", ";
      msg += view_times[i].name +
             " run_us=" + std::to_string(view_times[i].run_us) +
             " flush_us=" + std::to_string(view_times[i].flush_us);
    }
    msg += "]";
    ITG_LOG(Warn) << msg;
    FlightRecorder::Global().DumpToLog("slow batch");
  }
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

void Service::Drain() {
  uint64_t last_issued;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Second Drain (destructor after an explicit call): fall through
      // to the join below, which is a no-op once the thread stopped.
      last_issued = next_seq_ - 1;
    } else {
      draining_ = true;
      last_issued = next_seq_ - 1;
      ITG_LOG(Info) << "serve: draining (" << queries_.size()
                    << " standing queries)";
    }
  }
  {
    std::unique_lock<TimedMutex> ql(*queue_mu_);
    paused_ = false;
    // Wait for every issued ticket to be enqueued and every queued
    // batch to clear the in-flight window.
    queue_cv_.wait(ql, [&] {
      return next_ticket_ > last_issued && queue_.empty() && !applying_;
    });
    stop_thread_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t Service::standing_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

uint64_t Service::backpressure_stalls() const {
  return backpressure_stalls_->value();
}

uint64_t Service::ingest_batches() const {
  return ingest_batches_->value();
}

uint64_t Service::MakeTraceId(uint64_t seq) const {
  return trace_id_base_ | (seq & 0xFFFFFFFFull);
}

void Service::BindViewPipelineLocked(StandingQuery* query) {
  const std::string& n = query->name();
  auto& pl = query->pipeline();
  pl.delta_latency = registry_->histogram("serve.delta_latency_us." + n);
  pl.view_run =
      registry_->histogram("serve.stage_latency_us.view_run." + n);
  pl.stream_flush =
      registry_->histogram("serve.stage_latency_us.stream_flush." + n);
  pl.lag_batches = registry_->gauge("serve.view_lag_batches." + n);
  pl.lag_us = registry_->gauge("serve.view_lag_us." + n);
  pl.budget_used = registry_->gauge("serve.budget_used_bytes." + n);
  // The view replicated the primary at the last applied batch, so
  // anything still queued counts as lag until maintenance catches up.
  // The time reference starts at the newest ingest (lag_us reads 0
  // until the next apply corrects it — a one-batch approximation).
  pl.applied_seq = last_applied_seq_;
  pl.applied_ingest_time = last_ingest_time_;
  UpdateViewLagLocked(query);
}

void Service::RetireViewSeriesLocked(
    const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    // A series may legitimately be any kind — or absent, if the view
    // never recorded. Exact-name removal only: prefix matching would
    // also retire a sibling view ("q1" is a prefix of "q10").
    if (!registry_->RemoveHistogram(name) &&
        !registry_->RemoveGauge(name)) {
      registry_->RemoveCounter(name);
    }
  }
}

void Service::UpdateViewLagLocked(StandingQuery* query) {
  auto& pl = query->pipeline();
  // A view registered before the first ingest has no applied-batch time
  // reference yet; the stream effectively starts at the newest ingest,
  // so anchor there instead of the epoch-zero default (which would read
  // as machine uptime the moment the view falls behind).
  if (pl.applied_ingest_time == std::chrono::steady_clock::time_point{}) {
    pl.applied_ingest_time = last_ingest_time_;
  }
  const uint64_t lag_batches = pl.applied_seq >= last_ingested_seq_
                                   ? 0
                                   : last_ingested_seq_ - pl.applied_seq;
  const uint64_t lag_us =
      lag_batches == 0
          ? 0
          : MicrosBetween(pl.applied_ingest_time, last_ingest_time_);
  pl.lag_batches_now = lag_batches;
  pl.lag_us_now = lag_us;
  pl.lag_batches->Set(static_cast<int64_t>(lag_batches));
  pl.lag_us->Set(static_cast<int64_t>(lag_us));
  pl.budget_used->Set(static_cast<int64_t>(query->budget().used_bytes()));
}

void Service::SetMaintenancePaused(bool paused) {
  {
    std::lock_guard<TimedMutex> ql(*queue_mu_);
    paused_ = paused;
  }
  queue_cv_.notify_all();
}

}  // namespace serve
}  // namespace itg
