#include "serve/standing_query.h"

#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "harness/audit.h"
#include "storage/csr.h"

namespace itg {
namespace serve {

StatusOr<std::unique_ptr<StandingQuery>> StandingQuery::Create(
    DynamicGraphStore* primary, const StandingQueryOptions& options) {
  auto query = std::unique_ptr<StandingQuery>(new StandingQuery());
  query->options_ = options;
  query->budget_ = std::make_unique<MemoryBudget>(options.budget_bytes);
  query->resource_ctx_ = std::make_unique<ResourceContext>(
      "view." + options.name, options.registry);
  // Everything below — compile, replication, the one-shot run, the
  // registration audit — executes as this view, so its construction cost
  // lands on resource.view.<name>.* (ParallelFor re-establishes the
  // context on pool workers).
  ResourceScope attribution(query->resource_ctx_.get());

  ITG_ASSIGN_OR_RETURN(query->program_, CompileProgram(options.source));

  // Replicate the graph of record at its current snapshot. The replica
  // becomes the view's private timeline: its local t=0 is the primary's
  // latest(), and each subsequent Δ-batch advances it by one.
  std::vector<Edge> edges;
  ITG_RETURN_IF_ERROR(primary->MaterializeEdges(
      primary->pool(), primary->latest(), &edges));
  if (options.symmetric) edges = SymmetrizeEdges(edges);
  const size_t edge_bytes = edges.size() * sizeof(Edge);

  ITG_ASSIGN_OR_RETURN(
      query->store_,
      DynamicGraphStore::Create(options.scratch_path,
                                primary->num_vertices(), std::move(edges),
                                DynamicGraphStore::Options{},
                                primary->metrics()));

  EngineOptions eopt;
  eopt.fixed_supersteps = options.fixed_supersteps;
  eopt.record_history = true;  // standing views are incremental forever
  eopt.num_partitions = options.num_partitions;
  eopt.num_threads = options.num_threads;
  eopt.query_label = "serve:" + options.name;
  query->engine_ = std::make_unique<Engine>(query->store_.get(),
                                            query->program_.get(), eopt);
  query->audited_ = query->engine_->AuditedAttrs();

  // Admission-time memory accounting: attribute columns (current +
  // previous engine generations), the previous-state mirror used for ΔQ
  // extraction, and the replica edge list. Estimated from the compiled
  // program's attribute widths — the engine only materializes its
  // ColumnSet inside the first run, and an over-budget view must be
  // rejected without burning that run.
  const size_t n = static_cast<size_t>(primary->num_vertices());
  size_t column_bytes = 0;
  const int attr_count = static_cast<int>(query->program_->vertex_attrs.size());
  for (int attr = 0; attr < attr_count; ++attr) {
    column_bytes += n * static_cast<size_t>(query->program_->attr_width(attr)) *
                    sizeof(double);
  }
  size_t mirror_bytes = 0;
  for (int attr : query->audited_) {
    mirror_bytes += n * static_cast<size_t>(query->program_->attr_width(attr)) *
                    sizeof(double);
  }
  query->charged_bytes_ = 2 * column_bytes + mirror_bytes + edge_bytes;
  ITG_RETURN_IF_ERROR(query->budget_->Charge(query->charged_bytes_));

  ITG_RETURN_IF_ERROR(query->engine_->RunOneShot(0));
  query->runs_ = 1;
  query->t_ = 0;
  query->digest_ = query->engine_->last_stats().state_digest;
  query->last_supersteps_ = query->engine_->last_stats().supersteps;
  query->last_seconds_ = query->engine_->last_stats().seconds;
  query->MirrorState();

  // On-register consistency check: the view's fresh one-shot state must
  // match a shadow replay over the same materialized snapshot — the same
  // audit/digest machinery the drift auditor applies mid-stream.
  if (options.verify_on_register) {
    DriftAuditor::Options aopt;
    aopt.bisect = false;
    DriftAuditor auditor(query->store_.get(), query->engine_.get(),
                         options.source, options.scratch_path + ".audit",
                         aopt);
    auditor.OnRun(0);
    ITG_RETURN_IF_ERROR(auditor.AuditNow(0));
    if (auditor.section().divergence.found) {
      return Status::Internal("registration audit diverged for view '" +
                              options.name + "'");
    }
  }
  return query;
}

StandingQuery::~StandingQuery() {
  if (budget_ != nullptr) budget_->Release(charged_bytes_);
}

void StandingQuery::MirrorState() {
  const ColumnSet& cols = engine_->columns();
  prev_.resize(audited_.size());
  for (size_t ai = 0; ai < audited_.size(); ++ai) {
    prev_[ai] = cols.Column(audited_[ai]);
  }
}

Status StandingQuery::ApplyBatch(const std::vector<EdgeDelta>& batch,
                                 Response* out) {
  // Maintenance runs as this view: incremental supersteps, ΔQ
  // extraction, and any buffer-pool misses they trigger bill to
  // resource.view.<name>.*.
  ResourceScope attribution(resource_ctx_.get());
  std::vector<EdgeDelta> view_batch;
  const std::vector<EdgeDelta>* apply = &batch;
  if (options_.symmetric) {
    view_batch.reserve(batch.size() * 2);
    for (const EdgeDelta& d : batch) {
      view_batch.push_back(d);
      view_batch.push_back({{d.edge.dst, d.edge.src}, d.mult});
    }
    apply = &view_batch;
  }
  ITG_ASSIGN_OR_RETURN(Timestamp ts, store_->ApplyMutations(*apply));
  if (ts != t_ + 1) {
    return Status::Internal("view '" + options_.name +
                            "' drifted off its delta chain");
  }
  ITG_RETURN_IF_ERROR(engine_->RunIncremental(ts));
  t_ = ts;
  ++runs_;
  digest_ = engine_->last_stats().state_digest;
  last_supersteps_ = engine_->last_stats().supersteps;
  last_seconds_ = engine_->last_stats().seconds;

  out->type = ResponseType::kDelta;
  out->query = options_.name;
  out->timestamp = t_;
  out->batch_ops = apply->size();
  out->supersteps = last_supersteps_;
  out->seconds = last_seconds_;
  out->digest = digest_;

  // ΔQ extraction: after-images of every audited cell whose bit pattern
  // moved since the previous snapshot. Bitwise comparison (not ==) so
  // -0.0 vs +0.0 and NaN transitions stream exactly like the digest
  // sees them.
  const ColumnSet& cols = engine_->columns();
  out->changes.clear();
  for (size_t ai = 0; ai < audited_.size(); ++ai) {
    const int attr = audited_[ai];
    const int width = cols.width(attr);
    const std::vector<double>& cur = cols.Column(attr);
    const std::vector<double>& prev = prev_[ai];
    AttrCells cells;
    cells.name = program_->vertex_attrs[attr].name;
    cells.salt = attr;
    cells.width = width;
    for (VertexId v = 0; v < cols.num_vertices(); ++v) {
      const size_t off = static_cast<size_t>(v) * width;
      if (std::memcmp(cur.data() + off, prev.data() + off,
                      sizeof(double) * width) == 0) {
        continue;
      }
      cells.vertices.push_back(v);
      cells.values.insert(cells.values.end(), cur.begin() + off,
                          cur.begin() + off + width);
    }
    if (!cells.vertices.empty()) out->changes.push_back(std::move(cells));
  }
  MirrorState();
  return Status::OK();
}

void StandingQuery::FillSnapshot(Response* out) const {
  out->type = ResponseType::kSnapshot;
  out->query = options_.name;
  out->timestamp = t_;
  out->digest = digest_;
  const ColumnSet& cols = engine_->columns();
  out->num_vertices = cols.num_vertices();
  out->attrs.clear();
  for (int attr : audited_) {
    AttrColumn col;
    col.name = program_->vertex_attrs[attr].name;
    col.salt = attr;
    col.width = cols.width(attr);
    col.values = cols.Column(attr);
    out->attrs.push_back(std::move(col));
  }
}

void StandingQuery::FillRow(QueryRow* row) const {
  row->query = options_.name;
  row->timestamp = t_;
  row->digest = digest_;
  row->runs = runs_;
  row->supersteps = last_supersteps_;
  row->last_seconds = last_seconds_;
  row->budget_bytes = budget_->budget_bytes();
  row->budget_used_bytes = budget_->used_bytes();
  row->lag_batches = pipeline_.lag_batches_now;
  row->lag_us = pipeline_.lag_us_now;
}

std::vector<std::string> StandingQuery::MetricSeriesNames() const {
  const std::string& n = options_.name;
  std::vector<std::string> names = {
      "serve.delta_latency_us." + n,
      "serve.stage_latency_us.view_run." + n,
      "serve.stage_latency_us.stream_flush." + n,
      "serve.view_lag_batches." + n,
      "serve.view_lag_us." + n,
      "serve.budget_used_bytes." + n,
  };
  // The resource.view.<name>.* attribution counters retire with the
  // view too (they are per-principal, and the principal is gone).
  for (std::string& s : ResourceContext::SeriesNamesFor("view." + n)) {
    names.push_back(std::move(s));
  }
  return names;
}

}  // namespace serve
}  // namespace itg
