// Wire protocol of the always-on incremental query service (§1, §2.2 of
// the paper: "incremental graph analytics ... continuously maintained as
// the graph evolves"). The serving daemon promotes the batch engine's
// Q(G ∪ ΔG) = Q(G) ∪ ΔQ contract to a client-visible stream: clients
// register L_NGA queries as standing incremental views and receive one
// ΔQ record per ingested Δ-batch.
//
// Transport is newline-delimited JSON over a loopback TCP socket — the
// same dependency-free plumbing as the telemetry plane
// (common/socket_listener.h). One JSON object per line, requests keyed
// by "op", responses keyed by "type". 64-bit state digests travel as
// decimal *strings* so they survive parsers that read numbers as
// doubles; attribute values serialize with round-trip precision
// (%.17g, Infinity/NaN as bare tokens) so a subscriber can mirror the
// view state and recompute digests bit-exactly (common/digest.h).
//
// This header is transport-free: message structs plus parse/serialize
// functions, so the protocol unit tests (tests/serve_test.cc) round-trip
// every message without a socket.
#ifndef ITG_SERVE_PROTOCOL_H_
#define ITG_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace itg {
namespace serve {

// ---------------------------------------------------------------------------
// Minimal JSON document model
// ---------------------------------------------------------------------------

/// A parsed JSON value. Integers without fraction/exponent are kept as
/// int64 (vertex ids must stay exact); everything else numeric is a
/// double. The non-standard tokens Infinity/-Infinity/NaN are accepted
/// (and emitted by the serializer) because analytic attributes — BFS
/// depths of unreached vertices, for one — legitimately hold them.
struct Json {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool b = false;
  int64_t i = 0;
  double d = 0.0;
  std::string s;
  std::vector<Json> items;                            // kArray
  std::vector<std::pair<std::string, Json>> members;  // kObject

  /// Parses exactly one JSON value (trailing whitespace allowed).
  static StatusOr<Json> Parse(const std::string& text);

  /// Object member lookup; null when absent or not an object.
  const Json* Find(const std::string& key) const;

  bool is_num() const { return kind == Kind::kInt || kind == Kind::kDouble; }
  double AsDouble() const { return kind == Kind::kInt ? static_cast<double>(i) : d; }
  int64_t AsInt() const { return kind == Kind::kDouble ? static_cast<int64_t>(d) : i; }
};

/// Appends `s` JSON-escaped, in quotes.
void AppendJsonString(const std::string& s, std::string* out);

/// Appends a double with round-trip precision; non-finite values become
/// the tokens Infinity / -Infinity / NaN (accepted by Json::Parse and by
/// Python's json module).
void AppendJsonDouble(double v, std::string* out);

// ---------------------------------------------------------------------------
// Requests (client -> server), one JSON object per line, keyed by "op"
// ---------------------------------------------------------------------------

enum class RequestOp {
  kRegister,     // install a standing query (optionally subscribe+snapshot)
  kSubscribe,    // attach this connection to an existing query's ΔQ stream
  kUnsubscribe,  // detach this connection from a query's stream
  kDeregister,   // drop a standing query entirely
  kIngest,       // apply one Δ-batch to the graph of record
  kStatus,       // per-query rows + service counters
  kShutdown,     // drain and stop the daemon
};

const char* RequestOpName(RequestOp op);

struct Request {
  RequestOp op = RequestOp::kStatus;
  /// Query name (register/subscribe/unsubscribe/deregister).
  std::string query;

  // -- register --
  /// Builtin program name (pr|qpr|lp|wcc|bfs[:root]|tc|lcc), or empty
  /// when `source` carries raw L_NGA text.
  std::string program;
  std::string source;
  /// Superstep override; 0 keeps the builtin's default (-1 = converge).
  int supersteps = 0;
  /// Mirror every ingested edge (u,v) as (v,u) for this view.
  bool symmetric = false;
  /// Also subscribe the registering connection to the ΔQ stream.
  bool subscribe = false;
  /// Send a full state snapshot message right after registration.
  bool snapshot = false;
  /// Per-query memory-budget slice in bytes; 0 = service default.
  uint64_t budget_bytes = 0;

  // -- ingest --
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;
};

StatusOr<Request> ParseRequest(const std::string& line);
std::string SerializeRequest(const Request& req);

// ---------------------------------------------------------------------------
// Responses (server -> client), keyed by "type"
// ---------------------------------------------------------------------------

enum class ResponseType {
  kAck,       // request succeeded
  kError,     // request failed: structured code + human message
  kSnapshot,  // full audited-attribute state of one view
  kDelta,     // one ΔQ record: changed cells of one view after a batch
  kStatus,    // service + per-query health rows
};

const char* ResponseTypeName(ResponseType type);

/// Structured error codes (`Response::code`).
///   admission_full   max standing queries reached
///   budget_exceeded  requested view does not fit its memory-budget slice
///   already_exists   query name is taken
///   unknown_query    subscribe/unsubscribe/deregister of a missing name
///   compile_error    L_NGA compilation failed
///   out_of_range     ingest references a vertex >= num_vertices
///   invalid_mutation ingest inserts a present/self-loop edge or
///                    deletes an absent one
///   parse_error      malformed request line
///   shutting_down    daemon is draining; no new work accepted
///   internal         engine/storage failure (message has the status)

/// One dense audited attribute column (snapshot message).
struct AttrColumn {
  std::string name;
  /// Digest salt: the program attribute index fed to
  /// CombineColumnDigest — lets a subscriber recompute the combined
  /// state digest from mirrored columns.
  int salt = 0;
  int width = 1;
  /// width doubles per vertex, row-major, num_vertices rows.
  std::vector<double> values;
};

/// Changed cells of one attribute (delta message).
struct AttrCells {
  std::string name;
  int salt = 0;
  int width = 1;
  std::vector<VertexId> vertices;
  /// width doubles per entry of `vertices`, row-major (after-images).
  std::vector<double> values;
};

/// One per-query row of the status message — the same rows /statusz
/// renders in its "serving" section.
struct QueryRow {
  std::string query;
  Timestamp timestamp = 0;  // view-local snapshot number
  uint64_t digest = 0;
  uint64_t runs = 0;
  int supersteps = 0;       // of the last run
  double last_seconds = 0;
  uint64_t budget_bytes = 0;
  uint64_t budget_used_bytes = 0;
  int subscribers = 0;
  /// Staleness vs the graph of record: batches ingested but not yet
  /// applied to this view, and the ingest age (µs) of the newest batch
  /// the view has applied relative to the newest ingested one (0 when
  /// the view is caught up). Mirrors serve.view_lag_{batches,us}.<name>.
  uint64_t lag_batches = 0;
  uint64_t lag_us = 0;
};

struct Response {
  ResponseType type = ResponseType::kAck;

  /// RequestOpName of the acked/failed request (ack, error).
  std::string op;
  std::string query;
  std::string code;     // error
  std::string message;  // error

  Timestamp timestamp = 0;   // ack(register/ingest), snapshot, delta
  uint64_t digest = 0;       // ack(register), snapshot, delta
  uint64_t seq = 0;          // delta: ingest sequence number
  uint64_t batch_ops = 0;    // delta: ops applied to this view
  int supersteps = 0;        // delta: supersteps of the incremental run
  double seconds = 0;        // delta: incremental run seconds
  uint64_t latency_us = 0;   // delta: ingest entry -> message build latency
  uint64_t queue_depth = 0;  // ack(ingest), status: queued + in-flight
  /// Pipeline trace id of the Δ-batch (ack(ingest), delta). Assigned at
  /// Service::Ingest and carried through queue/apply/view-run/flush, so a
  /// client can correlate its ingest ack with every streamed ΔQ record
  /// and with the serve.* flow events of the Chrome trace. Travels as a
  /// decimal string (like digests); 0 = no trace id (non-ingest acks).
  uint64_t trace_id = 0;

  VertexId num_vertices = 0;       // snapshot
  std::vector<AttrColumn> attrs;   // snapshot
  std::vector<AttrCells> changes;  // delta

  std::vector<QueryRow> queries;     // status
  uint64_t backpressure_stalls = 0;  // status
  uint64_t ingest_batches = 0;       // status
  uint64_t max_queries = 0;          // status
  bool draining = false;             // status
};

StatusOr<Response> ParseResponse(const std::string& line);
std::string SerializeResponse(const Response& resp);

/// Convenience constructors for the two commonest shapes.
Response MakeError(RequestOp op, const std::string& query,
                   const std::string& code, const std::string& message);
Response MakeAck(RequestOp op, const std::string& query);

}  // namespace serve
}  // namespace itg

#endif  // ITG_SERVE_PROTOCOL_H_
