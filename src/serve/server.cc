#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/clean_stop.h"
#include "common/logging.h"

namespace itg {
namespace serve {

namespace {

/// Shared per-connection write end: the connection thread (acks) and the
/// maintenance thread (delta fan-out) both append lines through this.
struct ConnWriter {
  int fd;
  std::mutex mu;
  std::atomic<bool> broken{false};

  explicit ConnWriter(int fd_in) : fd(fd_in) {}

  void WriteLine(const std::string& line) {
    if (broken.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu);
    std::string out = line;
    out.push_back('\n');
    size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t w = ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (w <= 0) {
        // Client gone: stop writing; the read loop notices the closed
        // peer and detaches every subscription of this connection.
        broken.store(true, std::memory_order_relaxed);
        return;
      }
      sent += static_cast<size_t>(w);
    }
  }
};

}  // namespace

Status Server::Start(const ServerOptions& options) {
  SocketListener::Options lopt;
  lopt.port = options.port;
  lopt.port_file = options.port_file;
  lopt.thread_per_connection = true;
  lopt.name = "serve";
  ITG_RETURN_IF_ERROR(
      listener_.Start(lopt, [this](int fd) { HandleConnection(fd); }));
  ITG_LOG(Info) << "serve: listening on 127.0.0.1:" << port();
  return Status::OK();
}

void Server::Stop() { listener_.Stop(); }

void Server::HandleConnection(int fd) {
  auto writer = std::make_shared<ConnWriter>(fd);
  // query name -> subscriber id held by THIS connection.
  std::map<std::string, int> subs;

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed / listener shut us down
    buffer.append(chunk, static_cast<size_t>(n));

    size_t start = 0;
    for (size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      auto req_or = ParseRequest(line);
      if (!req_or.ok()) {
        writer->WriteLine(SerializeResponse(
            MakeError(RequestOp::kStatus, "", "parse_error",
                      req_or.status().ToString())));
        continue;
      }
      const Request req = std::move(req_or).value();
      switch (req.op) {
        case RequestOp::kRegister: {
          Response snapshot;
          Response ack = service_->Register(req, &snapshot);
          if (ack.type == ResponseType::kAck && req.subscribe) {
            int sub_id = 0;
            Response sub_ack = service_->Subscribe(
                req,
                [writer](const Response& delta) {
                  writer->WriteLine(SerializeResponse(delta));
                },
                &sub_id);
            if (sub_ack.type == ResponseType::kAck) {
              subs[req.query] = sub_id;
            }
          }
          writer->WriteLine(SerializeResponse(ack));
          if (ack.type == ResponseType::kAck && req.snapshot) {
            writer->WriteLine(SerializeResponse(snapshot));
          }
          break;
        }
        case RequestOp::kSubscribe: {
          int sub_id = 0;
          Response resp = service_->Subscribe(
              req,
              [writer](const Response& delta) {
                writer->WriteLine(SerializeResponse(delta));
              },
              &sub_id);
          if (resp.type == ResponseType::kAck) subs[req.query] = sub_id;
          writer->WriteLine(SerializeResponse(resp));
          break;
        }
        case RequestOp::kUnsubscribe: {
          auto it = subs.find(req.query);
          if (it == subs.end()) {
            writer->WriteLine(SerializeResponse(MakeError(
                RequestOp::kUnsubscribe, req.query, "unknown_query",
                "this connection is not subscribed to '" + req.query +
                    "'")));
            break;
          }
          service_->RemoveSubscriber(req.query, it->second);
          subs.erase(it);
          writer->WriteLine(
              SerializeResponse(MakeAck(RequestOp::kUnsubscribe, req.query)));
          break;
        }
        case RequestOp::kDeregister: {
          Response resp = service_->Deregister(req);
          if (resp.type == ResponseType::kAck) subs.erase(req.query);
          writer->WriteLine(SerializeResponse(resp));
          break;
        }
        case RequestOp::kIngest:
          writer->WriteLine(SerializeResponse(service_->Ingest(req)));
          break;
        case RequestOp::kStatus:
          writer->WriteLine(SerializeResponse(service_->GetStatus()));
          break;
        case RequestOp::kShutdown:
          // One shutdown path for Ctrl-C and the wire: ack, then trip
          // the clean-stop flag; the daemon's main loop drains.
          writer->WriteLine(
              SerializeResponse(MakeAck(RequestOp::kShutdown, "")));
          ITG_LOG(Info) << "serve: shutdown requested over the wire";
          RequestCleanStop();
          break;
      }
    }
    buffer.erase(0, start);
  }

  // Connection teardown: every subscription this connection held dies
  // with it (the sink's shared writer outlives us harmlessly; broken
  // flag stops late writes).
  writer->broken.store(true, std::memory_order_relaxed);
  for (const auto& [query, sub_id] : subs) {
    service_->RemoveSubscriber(query, sub_id);
  }
}

}  // namespace serve
}  // namespace itg
