#ifndef ITG_COMMON_ALERT_ENGINE_H_
#define ITG_COMMON_ALERT_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/status.h"

namespace itg {

/// SLO alert engine + incident black box.
///
/// A background evaluator samples a MetricsRegistry on a fixed period and
/// drives a per-rule state machine over the snapshot history:
///
///   inactive --cond--> pending --held for `for`--> firing
///   firing --cond clears--> resolved --cooldown elapses--> inactive
///   resolved --cond returns--> firing  (a flap: no new fire/bundle)
///
/// The pending hold (`for`) is hysteresis against one-sample blips; the
/// resolved hold (`cooldown`) suppresses flapping — a rule oscillating
/// around its threshold re-enters firing silently instead of re-firing
/// (and re-bundling) on every oscillation.
///
/// Rule kinds (the `expr` grammar, one home: ParseAlertExpr):
///   gauge(NAME) OP V      current gauge level (counters accepted too)
///   rate(NAME) OP V       counter rate per second over `window`
///   pNN(NAME) OP V        histogram percentile over `window`, computed
///                         from the delta of two log-linear snapshots
///                         (p50 / p99 / p99.9 ... anything in [0,100])
///   absent(NAME)          the metric does not exist in the registry
///   stale(NAME)           it exists but has not moved for `window`
///   burn(NAME, slo=V, objective=P)
///                         multi-window SLO burn rate, Google-SRE style:
///                         error ratio = fraction of histogram samples
///                         above `slo`, budget = 1 - P/100, burn =
///                         ratio / budget; the rule is true only when
///                         BOTH the fast and the slow window burn at
///                         >= `burn_factor` (fast catches the incident
///                         quickly, slow keeps one latency spike from
///                         paging).
///
/// NAME may end in `.*`, aggregating every matching series (sum for
/// counters and histogram buckets, max for gauges) — the serving layer's
/// per-view series (`serve.delta_latency_us.<q>`) are dynamically named.
///
/// On an inactive/pending -> firing transition the engine bumps
/// `alerts.fired_total` and asks the process-global IncidentReporter for
/// a rate-limited incident bundle, so every violation arrives with its
/// own postmortem evidence. When no rules are loaded Start() refuses to
/// spawn the evaluator thread: the engine is strictly zero-cost when off.

enum class AlertSeverity { kInfo, kWarn, kCritical };
enum class AlertState { kInactive, kPending, kFiring, kResolved };

const char* AlertSeverityName(AlertSeverity severity);
const char* AlertStateName(AlertState state);

/// One parsed rule. Fields without a matching key in the rule file keep
/// these defaults; durations are milliseconds.
struct AlertRule {
  enum class Kind { kGauge, kRate, kPercentile, kAbsent, kStale, kBurn };

  std::string name;
  AlertSeverity severity = AlertSeverity::kWarn;
  Kind kind = Kind::kGauge;
  std::string metric;        ///< may end in ".*" (aggregate wildcard)
  std::string expr;          ///< original expression text, for display

  /// Comparison for kGauge / kRate / kPercentile: value OP threshold.
  char op = '>';
  bool or_equal = false;
  double threshold = 0;
  double percentile = 99;    ///< kPercentile only

  /// kBurn parameters.
  double slo_value = 0;      ///< histogram sample above this is an error
  double objective = 99.0;   ///< success objective, percent
  double burn_factor = 1.0;  ///< fire at burn >= this in both windows

  uint64_t for_ms = 0;        ///< condition must hold this long to fire
  uint64_t cooldown_ms = 60'000;  ///< resolved hold before re-arming
  uint64_t window_ms = 60'000;    ///< kRate / kPercentile / kStale window
  uint64_t fast_window_ms = 60'000;   ///< kBurn fast window
  uint64_t slow_window_ms = 300'000;  ///< kBurn slow window
};

/// Parses the line-oriented rule file format (docs/SERVING.md):
///
///   # comment / blank lines ignored
///   alert <name>
///     severity info|warn|critical
///     expr <expression>
///     for 30s            # also: 500ms, 2m, plain integer = ms
///     cooldown 5m
///     window 1m
///     fast_window 5m     # burn rules
///     slow_window 1h
///     burn_factor 2
///
/// Every error is rejected with its line number:
/// "<source>:<line>: <what>". A rule without an expr is an error.
Status ParseAlertRules(const std::string& text, const std::string& source,
                       std::vector<AlertRule>* out);

/// Parses just an expression (exposed for tests and built-in rules).
Status ParseAlertExpr(const std::string& expr, AlertRule* rule);

/// Live view of one rule, as served on /alertz and in run reports.
struct AlertStatus {
  std::string name;
  std::string expr;
  AlertSeverity severity = AlertSeverity::kWarn;
  AlertState state = AlertState::kInactive;
  double value = 0;        ///< last evaluated value (burn: fast burn)
  double threshold = 0;    ///< threshold / burn_factor
  uint64_t since_ms = 0;   ///< wall time the current state was entered
  uint64_t fires = 0;      ///< distinct firing transitions
  uint64_t flaps = 0;      ///< resolved->firing re-entries (suppressed)
};

/// Writes incident bundle directories: a self-contained black box with
/// the flight-recorder span dump, a full metrics snapshot, the /statusz
/// JSON, the /timeseriesz ring, and a short wall-profiler capture, plus
/// an incident.json manifest. Process-global so every trigger path —
/// alert firing, stall-watchdog trip, SIGUSR1 — shares one rate limiter
/// and one sequence; unconfigured it is a strict no-op (Capture returns
/// "" without touching the filesystem).
class IncidentReporter {
 public:
  struct Options {
    /// Bundle parent directory; empty leaves the reporter unconfigured.
    std::string dir;
    /// Minimum wall-time between bundles; triggers inside the limit are
    /// counted in `alerts.bundles_suppressed` instead of written.
    uint64_t min_interval_ms = 30'000;
    /// Wall-profiler capture window per bundle (0 skips the capture and
    /// writes whatever the profiler has accumulated).
    uint64_t profile_ms = 250;
    /// Registry to snapshot; null = GlobalRegistry().
    MetricsRegistry* registry = nullptr;
    /// Optional /timeseriesz ring JSON provider (the telemetry server's
    /// ring); empty result writes an empty-object placeholder.
    std::function<std::string()> timeseries_json;
    /// Optional /statusz extra-section hook (same contract as
    /// TelemetryServer::set_statusz_extra).
    std::function<std::string()> statusz_extra;
  };

  static IncidentReporter& Global();

  /// (Re)configures the reporter; an empty dir de-configures it.
  void Configure(Options options);
  bool configured() const;

  /// Writes one bundle directory `incident_<seq>_<reason>/` and returns
  /// its path; returns "" when unconfigured or rate-limited. Safe from
  /// any thread except a signal handler (it allocates, locks and does
  /// file IO — callers poll, exactly like the flight recorder's dump).
  std::string Capture(const std::string& reason, const std::string& severity,
                      const std::string& detail);

  uint64_t bundles_written() const;
  uint64_t bundles_suppressed() const;

  /// Test hook: forget the last-capture time so the next Capture is not
  /// rate-limited.
  void ResetRateLimitForTest();

 private:
  IncidentReporter() = default;

  mutable std::mutex mu_;
  Options options_;
  bool configured_ = false;
  uint64_t last_capture_ms_ = 0;
  uint64_t seq_ = 0;
  uint64_t written_ = 0;
  uint64_t suppressed_ = 0;
};

class AlertEngine {
 public:
  struct Options {
    /// Evaluation period for the background thread.
    uint64_t period_ms = 1000;
    /// Registry to sample; null = GlobalRegistry().
    MetricsRegistry* registry = nullptr;
    /// Ask IncidentReporter::Global() for a bundle on firing transitions.
    bool capture_incidents = true;
  };

  AlertEngine() = default;
  ~AlertEngine();

  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Adds rules; callable only before Start(). Duplicate rule names are
  /// rejected (the later AddRules call fails).
  void AddRule(AlertRule rule);
  Status AddRulesFromText(const std::string& text, const std::string& source);
  Status AddRulesFromFile(const std::string& path);
  size_t rule_count() const;

  /// Spawns the evaluator thread. With zero rules this is a no-op and
  /// running() stays false — the zero-cost-when-off contract.
  void Start(const Options& options);
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }
  uint64_t period_ms() const { return options_.period_ms; }

  /// One evaluation pass at wall time `now_ms` (the thread calls this
  /// once per period; tests drive it directly with synthetic clocks).
  void EvaluateOnceAt(uint64_t now_ms);

  /// Test hook: applies `options` and sizes the history window exactly
  /// like Start() would, without spawning the evaluator thread — tests
  /// then drive EvaluateOnceAt() directly with synthetic clocks.
  void ConfigureForTest(const Options& options);

  /// Evaluations performed so far.
  uint64_t evaluations() const;

  std::vector<AlertStatus> Statuses() const;
  /// Names of critical rules currently firing (the /healthz reasons).
  std::vector<std::string> CriticalFiring() const;

  /// `{"enabled":true,"period_ms":N,"evaluations":N,"alerts":[...]}`.
  std::string ToJson() const;
  /// Human table, one rule per line.
  std::string ToText() const;

 private:
  struct RuleState {
    AlertRule rule;
    AlertState state = AlertState::kInactive;
    uint64_t entered_ms = 0;   ///< when `state` was entered
    double last_value = 0;
    uint64_t fires = 0;
    uint64_t flaps = 0;
  };
  struct HistorySample {
    uint64_t t_ms = 0;
    MetricsRegistry::Snapshot snap;
  };

  // Condition + evaluated value for one rule against the history
  // (newest sample is history_.back()).
  bool EvalCondition(const AlertRule& rule, double* value) const;
  void Transition(RuleState* rs, bool cond, uint64_t now_ms);

  MetricsRegistry* registry() const;

  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  mutable std::mutex mu_;
  std::vector<RuleState> rules_;
  std::deque<HistorySample> history_;
  uint64_t max_window_ms_ = 0;  ///< widest window any rule needs
  uint64_t evaluations_ = 0;
};

/// Inputs for the serving daemon's built-in rules (examples/itg_serve.cc
/// installs them whenever alerting is enabled; docs/SERVING.md lists the
/// exact expressions).
struct ServingAlertDefaults {
  size_t ingest_queue_depth = 64;     ///< --queue-depth
  double slo_ms = 0;                  ///< --slo-ms; 0 skips the burn rule
  uint64_t memory_budget_bytes = 0;   ///< --memory-budget; 0 skips
  uint64_t period_ms = 1000;          ///< evaluation period (windows scale)
};
std::vector<AlertRule> DefaultServingAlertRules(
    const ServingAlertDefaults& defaults);

}  // namespace itg

#endif  // ITG_COMMON_ALERT_ENGINE_H_
