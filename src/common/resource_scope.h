#ifndef ITG_COMMON_RESOURCE_SCOPE_H_
#define ITG_COMMON_RESOURCE_SCOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics_registry.h"

namespace itg {

/// Per-context resource attribution: "who spent the CPU, who paid for the
/// page reads, who allocated" — the observability layer under the
/// multi-query serving work, where N standing views share one process and
/// aggregate meters can no longer answer which view is the expensive one.
///
/// A ResourceContext names a chargeable principal (a standing-query id, a
/// serve pipeline stage, a harness phase) and owns three monotonic
/// registry series:
///
///   resource.<name>.cpu_nanos    thread-CPU nanos executed on its behalf
///   resource.<name>.pages_read   buffer-pool misses charged to it
///   resource.<name>.bytes_alloc  bytes charged to memory budgets while
///                                it was the current context
///
/// Charging is steered by a thread-local *current context* managed by the
/// RAII ResourceScope. Scopes nest with suspend semantics: entering an
/// inner scope charges the outer context's CPU up to that instant and
/// re-baselines on exit, so every CPU nanosecond is charged to exactly one
/// context (exclusive self time, never double-counted). The buffer pool
/// and MemoryBudget charge page reads / allocation bytes to whatever
/// context is current on the calling thread; ThreadPool::ParallelFor
/// captures the caller's context and re-establishes it on every worker for
/// the duration of the batch, so worker CPU is billed to the query that
/// scheduled the work.
///
/// When no context is current (and none is being entered) a ResourceScope
/// is free: no clock read, no atomics — instrumentation can stay in hot
/// paths unconditionally.

/// CPU time consumed by the calling thread
/// (`clock_gettime(CLOCK_THREAD_CPUTIME_ID)`). Meters built on this bill
/// only time actually executed: time a thread spends descheduled on an
/// oversubscribed host — or blocked on a lock or condition variable — is
/// not counted as work.
uint64_t ThreadCpuNanos();

class ResourceContext {
 public:
  /// Binds the three `resource.<name>.*` series in `registry`
  /// (`GlobalRegistry()` when null). The context must not outlive the
  /// registry, and the registry must not remove the series while any
  /// context still holds them (see SeriesNames / MetricsRegistry::Remove*).
  explicit ResourceContext(const std::string& name,
                           MetricsRegistry* registry = nullptr);

  ResourceContext(const ResourceContext&) = delete;
  ResourceContext& operator=(const ResourceContext&) = delete;

  const std::string& name() const { return name_; }

  void ChargeCpu(uint64_t nanos) { cpu_nanos_->Add(nanos); }
  void ChargePagesRead(uint64_t pages) { pages_read_->Add(pages); }
  void ChargeBytesAlloc(uint64_t bytes) { bytes_alloc_->Add(bytes); }

  uint64_t cpu_nanos() const { return cpu_nanos_->value(); }
  uint64_t pages_read() const { return pages_read_->value(); }
  uint64_t bytes_alloc() const { return bytes_alloc_->value(); }

  /// The exact registry series this context feeds, for retirement of
  /// dynamically named contexts (the serving layer removes a view's
  /// series on deregister — after destroying the context, since removal
  /// dangles the cached counter handles).
  std::vector<std::string> SeriesNames() const {
    return SeriesNamesFor(name_);
  }
  static std::vector<std::string> SeriesNamesFor(const std::string& name);

 private:
  std::string name_;
  Counter* cpu_nanos_;
  Counter* pages_read_;
  Counter* bytes_alloc_;
};

/// The calling thread's current context (null when unattributed).
ResourceContext* CurrentResourceContext();

/// Charge page reads / allocation bytes to the calling thread's current
/// context; no-ops when unattributed. One relaxed fetch_add when attributed.
void ChargeCurrentPagesRead(uint64_t pages);
void ChargeCurrentBytesAlloc(uint64_t bytes);

/// RAII: makes `ctx` the calling thread's current context for the scope's
/// lifetime. Entering with null while a context is current *suspends*
/// attribution (the outer context is charged up to the suspend point);
/// entering with null while nothing is current is free.
class ResourceScope {
 public:
  explicit ResourceScope(ResourceContext* ctx);
  ~ResourceScope();

  ResourceScope(const ResourceScope&) = delete;
  ResourceScope& operator=(const ResourceScope&) = delete;

 private:
  ResourceContext* prev_ = nullptr;
  bool active_ = false;
};

}  // namespace itg

#endif  // ITG_COMMON_RESOURCE_SCOPE_H_
