#include "common/resource_scope.h"

#include <ctime>

namespace itg {

namespace {

/// The thread's attribution lane: the current context plus the thread-CPU
/// reading at the instant it (re)became current. CPU is charged lazily —
/// only at scope boundaries — so steady-state attributed execution costs
/// nothing per unit of work, and the charge at each boundary is exact.
struct ThreadLane {
  ResourceContext* ctx = nullptr;
  uint64_t cpu_base = 0;
};

thread_local ThreadLane t_lane;

}  // namespace

uint64_t ThreadCpuNanos() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

ResourceContext::ResourceContext(const std::string& name,
                                 MetricsRegistry* registry)
    : name_(name) {
  MetricsRegistry& reg = registry != nullptr ? *registry : GlobalRegistry();
  const std::string prefix = "resource." + name;
  cpu_nanos_ = reg.counter(prefix + ".cpu_nanos");
  pages_read_ = reg.counter(prefix + ".pages_read");
  bytes_alloc_ = reg.counter(prefix + ".bytes_alloc");
}

std::vector<std::string> ResourceContext::SeriesNamesFor(
    const std::string& name) {
  const std::string prefix = "resource." + name;
  return {prefix + ".cpu_nanos", prefix + ".pages_read",
          prefix + ".bytes_alloc"};
}

ResourceContext* CurrentResourceContext() { return t_lane.ctx; }

void ChargeCurrentPagesRead(uint64_t pages) {
  if (t_lane.ctx != nullptr) t_lane.ctx->ChargePagesRead(pages);
}

void ChargeCurrentBytesAlloc(uint64_t bytes) {
  if (t_lane.ctx != nullptr) t_lane.ctx->ChargeBytesAlloc(bytes);
}

ResourceScope::ResourceScope(ResourceContext* ctx) {
  ThreadLane& lane = t_lane;
  if (ctx == nullptr && lane.ctx == nullptr) return;  // free fast path
  active_ = true;
  prev_ = lane.ctx;
  const uint64_t now = ThreadCpuNanos();
  // Suspend the outer context: charge it up to this instant so the inner
  // scope's CPU is never billed twice.
  if (lane.ctx != nullptr) lane.ctx->ChargeCpu(now - lane.cpu_base);
  lane.ctx = ctx;
  lane.cpu_base = now;
}

ResourceScope::~ResourceScope() {
  if (!active_) return;
  ThreadLane& lane = t_lane;
  const uint64_t now = ThreadCpuNanos();
  if (lane.ctx != nullptr) lane.ctx->ChargeCpu(now - lane.cpu_base);
  // Resume the outer context with a fresh baseline.
  lane.ctx = prev_;
  lane.cpu_base = now;
}

}  // namespace itg
