#ifndef ITG_COMMON_METRICS_H_
#define ITG_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace itg {

/// Counters mirroring the quantities the paper reports: disk IO bytes
/// (§6.2), network transfer bytes (§6.2.2), CPU time (§6.2 Group 3) and
/// peak tracked memory (the DD OOM experiments).
///
/// One instance per simulated machine; `GlobalMetrics()` is the
/// process-wide default used by single-machine runs.
class Metrics {
 public:
  /// Upper bound on per-thread CPU meters (and hence on usable pool
  /// sizes); threads beyond this are clamped into the last slot.
  static constexpr int kMaxTrackedThreads = 64;

  void AddReadBytes(uint64_t n) { read_bytes_ += n; }
  void AddWriteBytes(uint64_t n) { write_bytes_ += n; }
  void AddNetworkBytes(uint64_t n) { network_bytes_ += n; }
  void AddCpuNanos(uint64_t n) { cpu_nanos_ += n; }
  void AddPageReads(uint64_t n) { page_reads_ += n; }
  void AddThreadCpuNanos(int thread, uint64_t n) {
    thread_cpu_nanos_[ClampThread(thread)] += n;
  }
  void AddSteals(uint64_t n) { steals_ += n; }

  uint64_t read_bytes() const { return read_bytes_; }
  uint64_t write_bytes() const { return write_bytes_; }
  uint64_t network_bytes() const { return network_bytes_; }
  uint64_t cpu_nanos() const { return cpu_nanos_; }
  uint64_t page_reads() const { return page_reads_; }
  uint64_t thread_cpu_nanos(int thread) const {
    return thread_cpu_nanos_[ClampThread(thread)];
  }
  uint64_t steals() const { return steals_; }

  void Reset() {
    read_bytes_ = 0;
    write_bytes_ = 0;
    network_bytes_ = 0;
    cpu_nanos_ = 0;
    page_reads_ = 0;
    steals_ = 0;
    for (auto& n : thread_cpu_nanos_) n = 0;
  }

  /// Merges another metrics snapshot into this one (used when collapsing
  /// per-machine meters into a cluster total).
  void Merge(const Metrics& other) {
    read_bytes_ += other.read_bytes_;
    write_bytes_ += other.write_bytes_;
    network_bytes_ += other.network_bytes_;
    cpu_nanos_ += other.cpu_nanos_;
    page_reads_ += other.page_reads_;
    steals_ += other.steals_;
    for (int t = 0; t < kMaxTrackedThreads; ++t) {
      thread_cpu_nanos_[static_cast<size_t>(t)] +=
          other.thread_cpu_nanos_[static_cast<size_t>(t)];
    }
  }

  std::string ToString() const;

 private:
  static size_t ClampThread(int thread) {
    if (thread < 0) return 0;
    if (thread >= kMaxTrackedThreads) return kMaxTrackedThreads - 1;
    return static_cast<size_t>(thread);
  }

  std::atomic<uint64_t> read_bytes_{0};
  std::atomic<uint64_t> write_bytes_{0};
  std::atomic<uint64_t> network_bytes_{0};
  std::atomic<uint64_t> cpu_nanos_{0};
  std::atomic<uint64_t> page_reads_{0};
  std::atomic<uint64_t> steals_{0};
  std::array<std::atomic<uint64_t>, kMaxTrackedThreads> thread_cpu_nanos_{};
};

/// The process-wide metrics sink.
Metrics& GlobalMetrics();

/// Wall-clock stopwatch used by the bench harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace itg

#endif  // ITG_COMMON_METRICS_H_
