#ifndef ITG_COMMON_METRICS_H_
#define ITG_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/metrics_registry.h"

namespace itg {

/// Counters mirroring the quantities the paper reports: disk IO bytes
/// (§6.2), network transfer bytes (§6.2.2), CPU time (§6.2 Group 3) and
/// peak tracked memory (the DD OOM experiments).
///
/// One instance per simulated machine; `GlobalMetrics()` is the
/// process-wide default used by single-machine runs.
///
/// Since the metrics-registry refactor this class is a compatibility
/// facade: the six original counters live in the owned `MetricsRegistry`
/// (names `io.read_bytes`, `io.write_bytes`, `net.bytes`, `cpu.nanos`,
/// `io.page_reads`, `pool.steals`), alongside whatever named metrics the
/// storage/engine layers register via `registry()`. All updates and reads
/// are relaxed atomics; use `Snapshot()` for a consistent-enough plain
/// value view instead of racing individual accessors against workers.
class Metrics;

/// Plain-value copy of the facade counters, safe to pass around.
struct MetricsSnapshot {
  static constexpr int kMaxTrackedThreads = 64;

  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t network_bytes = 0;
  uint64_t cpu_nanos = 0;
  uint64_t page_reads = 0;
  uint64_t steals = 0;
  std::array<uint64_t, kMaxTrackedThreads> thread_cpu_nanos{};
  /// CPU executed inline on pool callers (the sequential ParallelFor
  /// fast path) — deliberately not part of any per-worker lane.
  uint64_t caller_cpu_nanos = 0;
};

class Metrics {
 public:
  /// Upper bound on per-thread CPU meters (and hence on usable pool
  /// sizes); threads beyond this are clamped into the last slot.
  static constexpr int kMaxTrackedThreads =
      MetricsSnapshot::kMaxTrackedThreads;

  Metrics();

  void AddReadBytes(uint64_t n) { read_bytes_->Add(n); }
  void AddWriteBytes(uint64_t n) { write_bytes_->Add(n); }
  void AddNetworkBytes(uint64_t n) { network_bytes_->Add(n); }
  void AddCpuNanos(uint64_t n) { cpu_nanos_->Add(n); }
  void AddPageReads(uint64_t n) { page_reads_->Add(n); }
  void AddThreadCpuNanos(int thread, uint64_t n) {
    thread_cpu_nanos_[ClampThread(thread)].fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Caller-lane CPU: inline (sequential fast path) execution on the
  /// thread that called ParallelFor, kept out of the per-worker meters
  /// so busy-meter skew reflects only real parallel batches.
  void AddCallerCpuNanos(uint64_t n) {
    caller_cpu_nanos_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSteals(uint64_t n) { steals_->Add(n); }

  uint64_t read_bytes() const { return read_bytes_->value(); }
  uint64_t write_bytes() const { return write_bytes_->value(); }
  uint64_t network_bytes() const { return network_bytes_->value(); }
  uint64_t cpu_nanos() const { return cpu_nanos_->value(); }
  uint64_t page_reads() const { return page_reads_->value(); }
  uint64_t thread_cpu_nanos(int thread) const {
    return thread_cpu_nanos_[ClampThread(thread)].load(
        std::memory_order_relaxed);
  }
  uint64_t caller_cpu_nanos() const {
    return caller_cpu_nanos_.load(std::memory_order_relaxed);
  }
  uint64_t steals() const { return steals_->value(); }

  /// The named-metric registry backing this machine's meters. Storage and
  /// engine components register their own counters/histograms here (e.g.
  /// `buffer_pool.hits`, `page_store.read_nanos`); run reports export it.
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Consistent plain-value copy of the facade counters (each field is an
  /// individually-relaxed read; no torn 64-bit values).
  MetricsSnapshot Snapshot() const {
    MetricsSnapshot snap;
    snap.read_bytes = read_bytes();
    snap.write_bytes = write_bytes();
    snap.network_bytes = network_bytes();
    snap.cpu_nanos = cpu_nanos();
    snap.page_reads = page_reads();
    snap.steals = steals();
    for (int t = 0; t < kMaxTrackedThreads; ++t) {
      snap.thread_cpu_nanos[static_cast<size_t>(t)] = thread_cpu_nanos(t);
    }
    snap.caller_cpu_nanos = caller_cpu_nanos();
    return snap;
  }

  /// Zeroes every metric in the registry (named ones included) and the
  /// per-thread CPU meters.
  void Reset() {
    registry_.Reset();
    for (auto& n : thread_cpu_nanos_) n.store(0, std::memory_order_relaxed);
    caller_cpu_nanos_.store(0, std::memory_order_relaxed);
  }

  /// Merges another machine's meters into this one (used when collapsing
  /// per-machine meters into a cluster total). Merges the full registry,
  /// so named storage metrics roll up alongside the six facade counters.
  void Merge(const Metrics& other) {
    registry_.Merge(other.registry_);
    for (int t = 0; t < kMaxTrackedThreads; ++t) {
      thread_cpu_nanos_[static_cast<size_t>(t)].fetch_add(
          other.thread_cpu_nanos(t), std::memory_order_relaxed);
    }
    caller_cpu_nanos_.fetch_add(other.caller_cpu_nanos(),
                                std::memory_order_relaxed);
  }

  std::string ToString() const;

 private:
  static size_t ClampThread(int thread) {
    if (thread < 0) return 0;
    if (thread >= kMaxTrackedThreads) return kMaxTrackedThreads - 1;
    return static_cast<size_t>(thread);
  }

  MetricsRegistry registry_;
  Counter* read_bytes_;
  Counter* write_bytes_;
  Counter* network_bytes_;
  Counter* cpu_nanos_;
  Counter* page_reads_;
  Counter* steals_;
  std::array<std::atomic<uint64_t>, kMaxTrackedThreads> thread_cpu_nanos_{};
  std::atomic<uint64_t> caller_cpu_nanos_{0};
};

/// The process-wide metrics sink.
Metrics& GlobalMetrics();

/// Wall-clock stopwatch used by the bench harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace itg

#endif  // ITG_COMMON_METRICS_H_
