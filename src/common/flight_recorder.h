#ifndef ITG_COMMON_FLIGHT_RECORDER_H_
#define ITG_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"

namespace itg {

/// A bounded ring of the most recent trace spans, kept even when full
/// Chrome tracing is off. Where ITG_TRACE answers "what happened over the
/// whole run" post-mortem, the flight recorder answers "what were the
/// last few thousand things the engine did" at the moment something
/// wedges: the stall watchdog dumps it when a superstep blows its
/// deadline, and SIGUSR1 requests a dump of a live process.
///
/// Recording goes through the same instrumentation points as the tracer
/// (TraceSpan / TraceInstant); enabling the recorder turns those RAII
/// gates on without buffering unbounded per-thread event vectors — the
/// ring overwrites, it never grows.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static FlightRecorder& Global();

  /// Starts capturing into a ring of `capacity` events. Idempotent;
  /// re-enabling with a different capacity clears the ring.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one event (called from the tracer's emit path; span names
  /// are string literals, so storing the pointers is safe).
  void Record(const internal_trace::TraceEvent& event, int tid);

  /// Number of events currently held (≤ capacity).
  size_t size() const;
  size_t capacity() const;
  void Clear();

  /// Human-readable dump, oldest first: one line per event with relative
  /// timestamp, duration, thread and name. Empty string when empty.
  std::string Dump() const;

  /// Writes Dump() to the log at WARN level with a framing header; no-op
  /// when the ring is empty and `force` is false.
  void DumpToLog(const char* reason, bool force = false);

  // ---- SIGUSR1 integration ----------------------------------------------
  /// Installs a SIGUSR1 handler that requests a dump. The handler only
  /// sets a flag (async-signal-safe); the actual dump happens on the next
  /// PollSignalDump() — the stall watchdog calls it from its poll loop.
  static void InstallSigusr1();
  /// Dumps and clears the pending request, if any. Returns true if a
  /// dump was performed.
  bool PollSignalDump();
  /// Test hook: behaves exactly like receiving SIGUSR1.
  static void RequestSignalDump();

 private:
  FlightRecorder() = default;

  mutable std::mutex mu_;
  std::vector<internal_trace::TraceEvent> ring_;
  std::vector<int> tids_;
  size_t next_ = 0;    // ring write cursor
  size_t count_ = 0;   // events held (saturates at capacity)
  std::atomic<bool> enabled_{false};
};

}  // namespace itg

#endif  // ITG_COMMON_FLIGHT_RECORDER_H_
