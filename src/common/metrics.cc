#include "common/metrics.h"

#include <sstream>

namespace itg {

Metrics& GlobalMetrics() {
  static Metrics* metrics = new Metrics();
  return *metrics;
}

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "read=" << read_bytes() << "B write=" << write_bytes()
     << "B net=" << network_bytes() << "B cpu=" << cpu_nanos()
     << "ns page_reads=" << page_reads();
  return os.str();
}

}  // namespace itg
