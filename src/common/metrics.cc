#include "common/metrics.h"

#include <sstream>

namespace itg {

Metrics& GlobalMetrics() {
  static Metrics* metrics = new Metrics();
  return *metrics;
}

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "read=" << read_bytes() << "B write=" << write_bytes()
     << "B net=" << network_bytes() << "B cpu=" << cpu_nanos()
     << "ns page_reads=" << page_reads();
  int active_threads = 0;
  for (int t = 0; t < kMaxTrackedThreads; ++t) {
    if (thread_cpu_nanos(t) > 0) active_threads = t + 1;
  }
  if (active_threads > 1 || steals() > 0) {
    os << " threads=" << active_threads << " steals=" << steals()
       << " thread_cpu=[";
    for (int t = 0; t < active_threads; ++t) {
      if (t > 0) os << ",";
      os << thread_cpu_nanos(t) << "ns";
    }
    os << "]";
  }
  return os.str();
}

}  // namespace itg
