#include "common/metrics.h"

#include <sstream>

namespace itg {

Metrics::Metrics()
    : read_bytes_(registry_.counter("io.read_bytes")),
      write_bytes_(registry_.counter("io.write_bytes")),
      network_bytes_(registry_.counter("net.bytes")),
      cpu_nanos_(registry_.counter("cpu.nanos")),
      page_reads_(registry_.counter("io.page_reads")),
      steals_(registry_.counter("pool.steals")) {}

Metrics& GlobalMetrics() {
  static Metrics* metrics = new Metrics();
  return *metrics;
}

MetricsRegistry& GlobalRegistry() { return GlobalMetrics().registry(); }

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "read=" << read_bytes() << "B write=" << write_bytes()
     << "B net=" << network_bytes() << "B cpu=" << cpu_nanos()
     << "ns page_reads=" << page_reads();
  int active_threads = 0;
  for (int t = 0; t < kMaxTrackedThreads; ++t) {
    if (thread_cpu_nanos(t) > 0) active_threads = t + 1;
  }
  if (active_threads > 1 || steals() > 0) {
    os << " threads=" << active_threads << " steals=" << steals()
       << " thread_cpu=[";
    for (int t = 0; t < active_threads; ++t) {
      if (t > 0) os << ",";
      os << thread_cpu_nanos(t) << "ns";
    }
    os << "]";
  }
  return os.str();
}

}  // namespace itg
