#include "common/alert_engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/flight_recorder.h"
#include "common/live_status.h"
#include "common/logging.h"
#include "common/telemetry_server.h"
#include "common/wall_profiler.h"

namespace itg {

namespace {

uint64_t NowWallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// "500ms" / "2s" / "5m" / "1h" / bare integer (= ms) -> milliseconds.
bool ParseDurationMs(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  size_t i = 0;
  while (i < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[i]))) {
    ++i;
  }
  if (i == 0) return false;
  uint64_t value = std::strtoull(token.substr(0, i).c_str(), nullptr, 10);
  const std::string suffix = token.substr(i);
  if (suffix.empty() || suffix == "ms") {
    *out = value;
  } else if (suffix == "s") {
    *out = value * 1000;
  } else if (suffix == "m") {
    *out = value * 60'000;
  } else if (suffix == "h") {
    *out = value * 3'600'000;
  } else {
    return false;
  }
  return true;
}

void AppendJson(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out->append(hex);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// Metric-name pattern: exact, or trailing ".*" aggregating every series
// under the prefix (including the trailing dot, so "a.*" cannot match
// the sibling "ab.x").
struct Matcher {
  bool wild = false;
  std::string key;  // exact name, or prefix ending in '.'
};

Matcher MakeMatcher(const std::string& pattern) {
  Matcher m;
  if (pattern.size() > 2 &&
      pattern.compare(pattern.size() - 2, 2, ".*") == 0) {
    m.wild = true;
    m.key = pattern.substr(0, pattern.size() - 1);  // keep the '.'
  } else {
    m.key = pattern;
  }
  return m;
}

template <typename Map, typename Fn>
void ForEachMatch(const Map& map, const Matcher& m, Fn fn) {
  if (!m.wild) {
    const auto it = map.find(m.key);
    if (it != map.end()) fn(it->second);
    return;
  }
  for (auto it = map.lower_bound(m.key);
       it != map.end() && it->first.rfind(m.key, 0) == 0; ++it) {
    fn(it->second);
  }
}

// Histogram bucket deltas between two snapshots, aggregated over every
// series the matcher selects: (bucket lower bound -> count recorded in
// the window). Counters only grow, so newer - older saturates at 0 only
// when a series was removed and re-created mid-window.
struct HistDelta {
  uint64_t total = 0;
  std::map<uint64_t, uint64_t> buckets;
};

HistDelta HistogramDelta(const MetricsRegistry::Snapshot& older,
                         const MetricsRegistry::Snapshot& newer,
                         const Matcher& m) {
  std::map<uint64_t, int64_t> acc;
  ForEachMatch(newer.histograms, m,
               [&](const MetricsRegistry::HistogramSnapshot& h) {
                 for (const auto& [lower, n] : h.buckets) {
                   acc[lower] += static_cast<int64_t>(n);
                 }
               });
  ForEachMatch(older.histograms, m,
               [&](const MetricsRegistry::HistogramSnapshot& h) {
                 for (const auto& [lower, n] : h.buckets) {
                   acc[lower] -= static_cast<int64_t>(n);
                 }
               });
  HistDelta out;
  for (const auto& [lower, n] : acc) {
    if (n <= 0) continue;
    out.buckets[lower] = static_cast<uint64_t>(n);
    out.total += static_cast<uint64_t>(n);
  }
  return out;
}

// Upper bound of the bucket holding the p-th percentile of the delta
// (the same estimate Histogram::PercentileUpperBound makes over a full
// histogram, here over a window's worth of samples).
uint64_t DeltaPercentile(const HistDelta& d, double p) {
  if (d.total == 0) return 0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(d.total)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  uint64_t last = 0;
  for (const auto& [lower, n] : d.buckets) {
    cumulative += n;
    last = lower;
    if (cumulative >= rank) break;
  }
  return Histogram::BucketUpperBound(Histogram::BucketOf(last));
}

// Fraction of windowed samples whose entire bucket lies above the SLO
// threshold (bucket lower bound > slo): the bucketed approximation of
// "latency exceeded the SLO". 0 when the window holds no samples.
double ErrorRatio(const HistDelta& d, double slo) {
  if (d.total == 0) return 0.0;
  uint64_t errors = 0;
  for (const auto& [lower, n] : d.buckets) {
    if (static_cast<double>(lower) > slo) errors += n;
  }
  return static_cast<double>(errors) / static_cast<double>(d.total);
}

bool Compare(double value, char op, bool or_equal, double threshold) {
  if (op == '>') return or_equal ? value >= threshold : value > threshold;
  return or_equal ? value <= threshold : value < threshold;
}

}  // namespace

const char* AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarn:
      return "warn";
    case AlertSeverity::kCritical:
      return "critical";
  }
  return "warn";
}

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "inactive";
}

// ---------------------------------------------------------------------------
// Expression / rule-file parsing
// ---------------------------------------------------------------------------

Status ParseAlertExpr(const std::string& raw, AlertRule* rule) {
  const std::string expr = Trim(raw);
  const size_t open = expr.find('(');
  if (open == std::string::npos || open == 0) {
    return Status::InvalidArgument("expr is not <kind>(<metric>...): '" +
                                   expr + "'");
  }
  const size_t close = expr.find(')', open);
  if (close == std::string::npos) {
    return Status::InvalidArgument("expr missing ')': '" + expr + "'");
  }
  const std::string head = Trim(expr.substr(0, open));
  const std::string inner = expr.substr(open + 1, close - open - 1);
  const std::string rest = Trim(expr.substr(close + 1));

  std::vector<std::string> args;
  {
    std::string cur;
    std::istringstream in(inner);
    while (std::getline(in, cur, ',')) args.push_back(Trim(cur));
  }
  if (args.empty() || args[0].empty()) {
    return Status::InvalidArgument("expr has no metric name: '" + expr +
                                   "'");
  }

  rule->expr = expr;
  rule->metric = args[0];
  if (rule->metric.find(' ') != std::string::npos) {
    return Status::InvalidArgument("metric name contains a space: '" +
                                   rule->metric + "'");
  }

  bool wants_comparison = false;
  if (head == "gauge") {
    rule->kind = AlertRule::Kind::kGauge;
    wants_comparison = true;
  } else if (head == "rate") {
    rule->kind = AlertRule::Kind::kRate;
    wants_comparison = true;
  } else if (head == "absent") {
    rule->kind = AlertRule::Kind::kAbsent;
  } else if (head == "stale") {
    rule->kind = AlertRule::Kind::kStale;
  } else if (head == "burn") {
    rule->kind = AlertRule::Kind::kBurn;
  } else if (head.size() > 1 && head[0] == 'p') {
    char* end = nullptr;
    const double p = std::strtod(head.c_str() + 1, &end);
    if (end == nullptr || *end != '\0' || p < 0 || p > 100) {
      return Status::InvalidArgument("unknown expr kind '" + head + "'");
    }
    rule->kind = AlertRule::Kind::kPercentile;
    rule->percentile = p;
    wants_comparison = true;
  } else {
    return Status::InvalidArgument("unknown expr kind '" + head + "'");
  }

  if (rule->kind == AlertRule::Kind::kBurn) {
    bool have_slo = false;
    for (size_t i = 1; i < args.size(); ++i) {
      const size_t eq = args[i].find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("burn() argument is not key=value: '" +
                                       args[i] + "'");
      }
      const std::string key = Trim(args[i].substr(0, eq));
      const std::string value = Trim(args[i].substr(eq + 1));
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("burn() " + key +
                                       " is not a number: '" + value + "'");
      }
      if (key == "slo") {
        if (v < 0) return Status::InvalidArgument("burn() slo is negative");
        rule->slo_value = v;
        have_slo = true;
      } else if (key == "objective") {
        if (v <= 0 || v >= 100) {
          return Status::InvalidArgument(
              "burn() objective must be in (0, 100)");
        }
        rule->objective = v;
      } else {
        return Status::InvalidArgument("burn() unknown key '" + key + "'");
      }
    }
    if (!have_slo) {
      return Status::InvalidArgument("burn() requires slo=<threshold>");
    }
  } else if (args.size() > 1) {
    return Status::InvalidArgument(head + "() takes one metric name");
  }

  if (wants_comparison) {
    if (rest.size() < 2) {
      return Status::InvalidArgument(head +
                                     "() needs a comparison, e.g. '> 10'");
    }
    size_t i = 0;
    if (rest[0] == '>' || rest[0] == '<') {
      rule->op = rest[0];
      i = 1;
      if (rest.size() > 1 && rest[1] == '=') {
        rule->or_equal = true;
        i = 2;
      } else {
        rule->or_equal = false;
      }
    } else {
      return Status::InvalidArgument("bad comparison operator in '" + rest +
                                     "'");
    }
    const std::string number = Trim(rest.substr(i));
    char* end = nullptr;
    rule->threshold = std::strtod(number.c_str(), &end);
    if (number.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad threshold '" + number + "'");
    }
  } else if (!rest.empty()) {
    return Status::InvalidArgument(head + "() takes no comparison: '" +
                                   rest + "'");
  }
  return Status::OK();
}

Status ParseAlertRules(const std::string& text, const std::string& source,
                       std::vector<AlertRule>* out) {
  std::vector<AlertRule> rules;
  AlertRule current;
  bool open = false;
  bool have_expr = false;
  int open_line = 0;

  auto where = [&source](int line) {
    return source + ":" + std::to_string(line) + ": ";
  };
  auto finalize = [&]() -> Status {
    if (!open) return Status::OK();
    if (!have_expr) {
      return Status::InvalidArgument(where(open_line) + "alert '" +
                                     current.name + "' has no expr");
    }
    for (const AlertRule& r : rules) {
      if (r.name == current.name) {
        return Status::InvalidArgument(where(open_line) +
                                       "duplicate alert name '" +
                                       current.name + "'");
      }
    }
    rules.push_back(current);
    open = false;
    return Status::OK();
  };

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (const size_t hash = raw.find('#'); hash != std::string::npos) {
      raw.resize(hash);
    }
    const std::string line = Trim(raw);
    if (line.empty()) continue;

    const size_t sp = line.find_first_of(" \t");
    const std::string key = line.substr(0, sp);
    const std::string value =
        sp == std::string::npos ? std::string() : Trim(line.substr(sp + 1));

    if (key == "alert") {
      if (Status s = finalize(); !s.ok()) return s;
      if (value.empty() || value.find_first_of(" \t") != std::string::npos) {
        return Status::InvalidArgument(
            where(lineno) + "alert needs exactly one name, got '" + value +
            "'");
      }
      current = AlertRule();
      current.name = value;
      open = true;
      have_expr = false;
      open_line = lineno;
      continue;
    }
    if (!open) {
      return Status::InvalidArgument(where(lineno) + "'" + key +
                                     "' outside an alert block");
    }
    if (key == "severity") {
      if (value == "info") {
        current.severity = AlertSeverity::kInfo;
      } else if (value == "warn") {
        current.severity = AlertSeverity::kWarn;
      } else if (value == "critical") {
        current.severity = AlertSeverity::kCritical;
      } else {
        return Status::InvalidArgument(
            where(lineno) + "severity must be info|warn|critical, got '" +
            value + "'");
      }
    } else if (key == "expr") {
      if (Status s = ParseAlertExpr(value, &current); !s.ok()) {
        return Status::InvalidArgument(where(lineno) + s.message());
      }
      have_expr = true;
    } else if (key == "for" || key == "cooldown" || key == "window" ||
               key == "fast_window" || key == "slow_window") {
      uint64_t ms = 0;
      if (!ParseDurationMs(value, &ms)) {
        return Status::InvalidArgument(where(lineno) + key +
                                       " is not a duration: '" + value +
                                       "'");
      }
      if (key == "for") current.for_ms = ms;
      else if (key == "cooldown") current.cooldown_ms = ms;
      else if (key == "window") current.window_ms = ms;
      else if (key == "fast_window") current.fast_window_ms = ms;
      else current.slow_window_ms = ms;
    } else if (key == "burn_factor") {
      char* end = nullptr;
      current.burn_factor = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' ||
          current.burn_factor <= 0) {
        return Status::InvalidArgument(where(lineno) +
                                       "burn_factor is not a positive "
                                       "number: '" +
                                       value + "'");
      }
    } else {
      return Status::InvalidArgument(where(lineno) + "unknown key '" + key +
                                     "'");
    }
  }
  if (Status s = finalize(); !s.ok()) return s;
  out->insert(out->end(), rules.begin(), rules.end());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IncidentReporter
// ---------------------------------------------------------------------------

IncidentReporter& IncidentReporter::Global() {
  static IncidentReporter* reporter = new IncidentReporter();
  return *reporter;
}

void IncidentReporter::Configure(Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = std::move(options);
  configured_ = !options_.dir.empty();
}

bool IncidentReporter::configured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return configured_;
}

uint64_t IncidentReporter::bundles_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t IncidentReporter::bundles_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

void IncidentReporter::ResetRateLimitForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  last_capture_ms_ = 0;
}

namespace {

bool WriteFileOrWarn(const std::filesystem::path& path,
                     const std::string& body) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    ITG_LOG(Warn) << "incident bundle: cannot write " << path.string();
    return false;
  }
  f << body;
  return static_cast<bool>(f);
}

}  // namespace

std::string IncidentReporter::Capture(const std::string& reason,
                                      const std::string& severity,
                                      const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!configured_) return std::string();
  MetricsRegistry* registry =
      options_.registry != nullptr ? options_.registry : &GlobalRegistry();
  const uint64_t now_ms = NowWallMs();
  if (last_capture_ms_ != 0 &&
      now_ms - last_capture_ms_ < options_.min_interval_ms) {
    ++suppressed_;
    registry->counter("alerts.bundles_suppressed")->Increment();
    return std::string();
  }
  last_capture_ms_ = now_ms;
  const uint64_t seq = ++seq_;

  std::string slug;
  for (char c : reason) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                    c == '-' || c == '_';
    slug.push_back(ok ? c : '_');
    if (slug.size() >= 48) break;
  }

  namespace fs = std::filesystem;
  const fs::path dir = fs::path(options_.dir) /
                       ("incident_" + std::to_string(seq) + "_" + slug);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    ITG_LOG(Warn) << "incident bundle: cannot create " << dir.string()
                  << ": " << ec.message();
    return std::string();
  }

  // 1. Flight recorder: the last few thousand spans before the trigger.
  // A placeholder keeps every artifact non-empty (the bundle contract
  // alertz_check.py enforces) even when nothing traced yet.
  std::string spans = FlightRecorder::Global().Dump();
  if (spans.empty()) spans = "(no spans recorded)\n";
  WriteFileOrWarn(dir / "flightrecorder.txt", spans);

  // 2. Full metrics snapshot.
  WriteFileOrWarn(dir / "metrics.json", registry->ToJson() + "\n");

  // 3. The /statusz JSON, exactly as a scrape would have seen it (no
  // watchdog handle here; its state is in the metrics snapshot).
  WriteFileOrWarn(
      dir / "statusz.json",
      RenderStatusz(GlobalLiveStatus().Snap(), nullptr, registry->Snap(),
                    options_.statusz_extra ? options_.statusz_extra()
                                           : std::string()));

  // 4. The /timeseriesz ring — metric history leading up to the trigger.
  std::string series =
      options_.timeseries_json ? options_.timeseries_json() : std::string();
  if (series.empty()) series = "{}";
  WriteFileOrWarn(dir / "timeseries.json", series + "\n");

  // 5. A short wall-profile of the incident in progress. Piggybacks on
  // an already-running profiler (ITG_PROFILE) without stopping it.
  {
    WallProfiler& prof = WallProfiler::Global();
    const bool owned = !prof.running();
    if (owned && options_.profile_ms > 0) prof.Start();
    if (options_.profile_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.profile_ms));
    }
    if (owned && options_.profile_ms > 0) prof.Stop();
    WriteFileOrWarn(dir / "profile.txt", prof.Render());
  }

  std::string manifest;
  manifest.append("{\"seq\":").append(std::to_string(seq));
  manifest.append(",\"t_ms\":").append(std::to_string(now_ms));
  manifest.append(",\"reason\":");
  AppendJson(reason, &manifest);
  manifest.append(",\"severity\":");
  AppendJson(severity, &manifest);
  manifest.append(",\"detail\":");
  AppendJson(detail, &manifest);
  manifest.append(
      ",\"artifacts\":[\"flightrecorder.txt\",\"metrics.json\","
      "\"statusz.json\",\"timeseries.json\",\"profile.txt\"]}\n");
  WriteFileOrWarn(dir / "incident.json", manifest);

  ++written_;
  registry->counter("alerts.bundles_written")->Increment();
  ITG_LOG(Warn) << "incident bundle written: " << dir.string() << " ("
                << reason << ", " << severity << ")";
  return dir.string();
}

// ---------------------------------------------------------------------------
// AlertEngine
// ---------------------------------------------------------------------------

AlertEngine::~AlertEngine() { Stop(); }

MetricsRegistry* AlertEngine::registry() const {
  return options_.registry != nullptr ? options_.registry
                                      : &GlobalRegistry();
}

void AlertEngine::AddRule(AlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  RuleState rs;
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
}

Status AlertEngine::AddRulesFromText(const std::string& text,
                                     const std::string& source) {
  std::vector<AlertRule> parsed;
  if (Status s = ParseAlertRules(text, source, &parsed); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const AlertRule& r : parsed) {
    for (const RuleState& rs : rules_) {
      if (rs.rule.name == r.name) {
        return Status::InvalidArgument(source + ": duplicate alert name '" +
                                       r.name + "'");
      }
    }
  }
  for (AlertRule& r : parsed) {
    RuleState rs;
    rs.rule = std::move(r);
    rules_.push_back(std::move(rs));
  }
  return Status::OK();
}

Status AlertEngine::AddRulesFromFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open alert rules file " + path);
  std::stringstream buf;
  buf << f.rdbuf();
  return AddRulesFromText(buf.str(), path);
}

size_t AlertEngine::rule_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rules_.size();
}

void AlertEngine::ConfigureForTest(const Options& options) {
  options_ = options;
  std::lock_guard<std::mutex> lock(mu_);
  max_window_ms_ = 0;
  for (const RuleState& rs : rules_) {
    max_window_ms_ = std::max({max_window_ms_, rs.rule.window_ms,
                               rs.rule.fast_window_ms,
                               rs.rule.slow_window_ms});
  }
}

void AlertEngine::Start(const Options& options) {
  if (running()) return;
  options_ = options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (rules_.empty()) return;  // zero-cost when off: no thread at all
    max_window_ms_ = 0;
    for (const RuleState& rs : rules_) {
      max_window_ms_ = std::max({max_window_ms_, rs.rule.window_ms,
                                 rs.rule.fast_window_ms,
                                 rs.rule.slow_window_ms});
    }
  }
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] {
    const auto period = std::chrono::milliseconds(
        options_.period_ms > 0 ? options_.period_ms : 1000);
    while (!stop_.load(std::memory_order_relaxed)) {
      EvaluateOnceAt(NowWallMs());
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, period, [this] {
        return stop_.load(std::memory_order_relaxed);
      });
    }
  });
  ITG_LOG(Info) << "alert engine: " << rule_count() << " rules, period "
                << options_.period_ms << "ms";
}

void AlertEngine::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

uint64_t AlertEngine::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

bool AlertEngine::EvalCondition(const AlertRule& rule, double* value) const {
  *value = 0;
  if (history_.empty()) return false;
  const HistorySample& newest = history_.back();
  const Matcher m = MakeMatcher(rule.metric);

  // Newest sample with a full `window_ms` behind it; falls back to the
  // oldest sample (a clamped window) so short histories still evaluate.
  auto baseline = [this, &newest](uint64_t window_ms) -> const
      HistorySample* {
    const HistorySample* base = &history_.front();
    for (const HistorySample& s : history_) {
      if (s.t_ms + window_ms <= newest.t_ms) base = &s;
      else break;
    }
    if (base == &newest && history_.size() > 1) {
      base = &history_[history_.size() - 2];
    }
    return base;
  };

  switch (rule.kind) {
    case AlertRule::Kind::kGauge: {
      bool found = false;
      int64_t max_gauge = 0;
      ForEachMatch(newest.snap.gauges, m, [&](int64_t v) {
        max_gauge = found ? std::max(max_gauge, v) : v;
        found = true;
      });
      if (found) {
        *value = static_cast<double>(max_gauge);
      } else {
        uint64_t sum = 0;
        ForEachMatch(newest.snap.counters, m, [&](uint64_t v) {
          sum += v;
          found = true;
        });
        *value = static_cast<double>(sum);
      }
      if (!found) return false;
      return Compare(*value, rule.op, rule.or_equal, rule.threshold);
    }

    case AlertRule::Kind::kRate: {
      const HistorySample* base = baseline(rule.window_ms);
      if (base->t_ms >= newest.t_ms) return false;
      uint64_t cur = 0, old = 0;
      bool found = false;
      ForEachMatch(newest.snap.counters, m, [&](uint64_t v) {
        cur += v;
        found = true;
      });
      ForEachMatch(base->snap.counters, m, [&](uint64_t v) { old += v; });
      if (!found) return false;
      const double dt = static_cast<double>(newest.t_ms - base->t_ms) / 1e3;
      *value = cur > old ? static_cast<double>(cur - old) / dt : 0.0;
      return Compare(*value, rule.op, rule.or_equal, rule.threshold);
    }

    case AlertRule::Kind::kPercentile: {
      const HistorySample* base = baseline(rule.window_ms);
      const HistDelta d = HistogramDelta(base->snap, newest.snap, m);
      if (d.total == 0) return false;
      *value = static_cast<double>(DeltaPercentile(d, rule.percentile));
      return Compare(*value, rule.op, rule.or_equal, rule.threshold);
    }

    case AlertRule::Kind::kAbsent: {
      bool found = false;
      ForEachMatch(newest.snap.counters, m, [&](uint64_t) { found = true; });
      ForEachMatch(newest.snap.gauges, m, [&](int64_t) { found = true; });
      ForEachMatch(newest.snap.histograms, m,
                   [&](const MetricsRegistry::HistogramSnapshot&) {
                     found = true;
                   });
      *value = found ? 0.0 : 1.0;
      return !found;
    }

    case AlertRule::Kind::kStale: {
      // Requires a baseline covering the full window: a freshly started
      // process is not "stale", it just has no history yet.
      if (history_.front().t_ms + rule.window_ms > newest.t_ms) {
        return false;
      }
      const HistorySample* base = baseline(rule.window_ms);
      bool found = false;
      bool moved = false;
      uint64_t cur_c = 0, old_c = 0;
      ForEachMatch(newest.snap.counters, m, [&](uint64_t v) {
        cur_c += v;
        found = true;
      });
      ForEachMatch(base->snap.counters, m, [&](uint64_t v) { old_c += v; });
      if (cur_c != old_c) moved = true;
      std::vector<int64_t> cur_g, old_g;
      ForEachMatch(newest.snap.gauges, m, [&](int64_t v) {
        cur_g.push_back(v);
        found = true;
      });
      ForEachMatch(base->snap.gauges, m,
                   [&](int64_t v) { old_g.push_back(v); });
      if (cur_g != old_g) moved = true;
      uint64_t cur_h = 0, old_h = 0;
      ForEachMatch(newest.snap.histograms, m,
                   [&](const MetricsRegistry::HistogramSnapshot& h) {
                     cur_h += h.count;
                     found = true;
                   });
      ForEachMatch(base->snap.histograms, m,
                   [&](const MetricsRegistry::HistogramSnapshot& h) {
                     old_h += h.count;
                   });
      if (cur_h != old_h) moved = true;
      *value = (found && !moved) ? 1.0 : 0.0;
      return found && !moved;
    }

    case AlertRule::Kind::kBurn: {
      const double budget = 1.0 - rule.objective / 100.0;
      auto burn_over = [&](uint64_t window_ms) {
        const HistorySample* base = baseline(window_ms);
        const HistDelta d = HistogramDelta(base->snap, newest.snap, m);
        return ErrorRatio(d, rule.slo_value) / budget;
      };
      const double fast = burn_over(rule.fast_window_ms);
      const double slow = burn_over(rule.slow_window_ms);
      *value = fast;
      return fast >= rule.burn_factor && slow >= rule.burn_factor;
    }
  }
  return false;
}

void AlertEngine::Transition(RuleState* rs, bool cond, uint64_t now_ms) {
  switch (rs->state) {
    case AlertState::kInactive:
      if (cond) {
        rs->state = AlertState::kPending;
        rs->entered_ms = now_ms;
      }
      break;
    case AlertState::kPending:
      if (!cond) {
        rs->state = AlertState::kInactive;
        rs->entered_ms = now_ms;
      }
      break;
    case AlertState::kFiring:
      if (!cond) {
        rs->state = AlertState::kResolved;
        rs->entered_ms = now_ms;
      }
      break;
    case AlertState::kResolved:
      if (cond) {
        // A flap: re-enter firing silently — no new fire tally, no new
        // incident bundle. The cooldown exists exactly for this.
        rs->state = AlertState::kFiring;
        rs->entered_ms = now_ms;
        ++rs->flaps;
      } else if (now_ms - rs->entered_ms >= rs->rule.cooldown_ms) {
        rs->state = AlertState::kInactive;
        rs->entered_ms = now_ms;
      }
      break;
  }
  // The pending hold: promote in the same evaluation once the condition
  // has been continuously true for `for_ms` (for_ms == 0 fires at once).
  if (rs->state == AlertState::kPending && cond &&
      now_ms - rs->entered_ms >= rs->rule.for_ms) {
    rs->state = AlertState::kFiring;
    rs->entered_ms = now_ms;
    ++rs->fires;
  }
}

void AlertEngine::EvaluateOnceAt(uint64_t now_ms) {
  MetricsRegistry::Snapshot snap = registry()->Snap();
  struct Fired {
    std::string name;
    std::string severity;
    std::string detail;
  };
  std::vector<Fired> fired;
  uint64_t resolved = 0;
  uint64_t flapped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back({now_ms, std::move(snap)});
    // Keep just enough history for the widest window (plus slack for
    // the baseline search), bounded hard against clock weirdness.
    const uint64_t keep_ms = max_window_ms_ + 2 * options_.period_ms + 1000;
    while (history_.size() > 2 &&
           history_.front().t_ms + keep_ms < now_ms) {
      history_.pop_front();
    }
    while (history_.size() > 4096) history_.pop_front();
    ++evaluations_;

    for (RuleState& rs : rules_) {
      double value = 0;
      const bool cond = EvalCondition(rs.rule, &value);
      rs.last_value = value;
      const AlertState before = rs.state;
      const uint64_t fires_before = rs.fires;
      const uint64_t flaps_before = rs.flaps;
      Transition(&rs, cond, now_ms);
      if (rs.fires > fires_before) {
        char detail[160];
        std::snprintf(detail, sizeof(detail),
                      "%s: value=%.6g threshold=%.6g", rs.rule.expr.c_str(),
                      value,
                      rs.rule.kind == AlertRule::Kind::kBurn
                          ? rs.rule.burn_factor
                          : rs.rule.threshold);
        fired.push_back({rs.rule.name, AlertSeverityName(rs.rule.severity),
                         detail});
      }
      if (rs.flaps > flaps_before) ++flapped;
      if (before == AlertState::kFiring &&
          rs.state == AlertState::kResolved) {
        ++resolved;
      }
    }
  }

  MetricsRegistry* reg = registry();
  reg->counter("alerts.evaluations")->Increment();
  if (!fired.empty()) {
    reg->counter("alerts.fired_total")->Add(fired.size());
  }
  if (resolved > 0) reg->counter("alerts.resolved_total")->Add(resolved);
  if (flapped > 0) reg->counter("alerts.flaps_total")->Add(flapped);
  for (const Fired& f : fired) {
    ITG_LOG(Warn) << "alert firing: " << f.name << " [" << f.severity
                  << "] " << f.detail;
    if (options_.capture_incidents) {
      IncidentReporter::Global().Capture(f.name, f.severity, f.detail);
    }
  }
}

std::vector<AlertStatus> AlertEngine::Statuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(rules_.size());
  for (const RuleState& rs : rules_) {
    AlertStatus st;
    st.name = rs.rule.name;
    st.expr = rs.rule.expr;
    st.severity = rs.rule.severity;
    st.state = rs.state;
    st.value = rs.last_value;
    st.threshold = rs.rule.kind == AlertRule::Kind::kBurn
                       ? rs.rule.burn_factor
                       : rs.rule.threshold;
    st.since_ms = rs.entered_ms;
    st.fires = rs.fires;
    st.flaps = rs.flaps;
    out.push_back(std::move(st));
  }
  return out;
}

std::vector<std::string> AlertEngine::CriticalFiring() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const RuleState& rs : rules_) {
    if (rs.rule.severity == AlertSeverity::kCritical &&
        rs.state == AlertState::kFiring) {
      out.push_back(rs.rule.name);
    }
  }
  return out;
}

std::string AlertEngine::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(1 << 11);
  out.append("{\"enabled\":true,\"period_ms\":")
      .append(std::to_string(options_.period_ms));
  out.append(",\"evaluations\":").append(std::to_string(evaluations_));
  out.append(",\"alerts\":[");
  bool first = true;
  for (const RuleState& rs : rules_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    AppendJson(rs.rule.name, &out);
    out.append(",\"severity\":\"")
        .append(AlertSeverityName(rs.rule.severity));
    out.append("\",\"state\":\"").append(AlertStateName(rs.state));
    out.append("\",\"value\":");
    AppendDouble(rs.last_value, &out);
    out.append(",\"threshold\":");
    AppendDouble(rs.rule.kind == AlertRule::Kind::kBurn
                     ? rs.rule.burn_factor
                     : rs.rule.threshold,
                 &out);
    out.append(",\"since_ms\":").append(std::to_string(rs.entered_ms));
    out.append(",\"fires\":").append(std::to_string(rs.fires));
    out.append(",\"flaps\":").append(std::to_string(rs.flaps));
    out.append(",\"expr\":");
    AppendJson(rs.rule.expr, &out);
    out.push_back('}');
  }
  out.append("]}\n");
  return out;
}

std::string AlertEngine::ToText() const {
  std::vector<AlertStatus> statuses = Statuses();
  std::string out;
  out.append("alerts: ")
      .append(std::to_string(statuses.size()))
      .append(" rules, ")
      .append(std::to_string(evaluations()))
      .append(" evaluations, period ")
      .append(std::to_string(options_.period_ms))
      .append("ms\n");
  for (const AlertStatus& st : statuses) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-8s %-8s %-32s value=%.6g threshold=%.6g fires=%llu "
                  "flaps=%llu  %s\n",
                  AlertStateName(st.state), AlertSeverityName(st.severity),
                  st.name.c_str(), st.value, st.threshold,
                  static_cast<unsigned long long>(st.fires),
                  static_cast<unsigned long long>(st.flaps),
                  st.expr.c_str());
    out.append(line);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Built-in serving defaults
// ---------------------------------------------------------------------------

std::vector<AlertRule> DefaultServingAlertRules(
    const ServingAlertDefaults& defaults) {
  const uint64_t p =
      defaults.period_ms > 0 ? defaults.period_ms : uint64_t{1000};
  std::vector<AlertRule> rules;
  auto add = [&rules](const std::string& name, AlertSeverity severity,
                      const std::string& expr, uint64_t for_ms,
                      uint64_t cooldown_ms) -> AlertRule* {
    AlertRule r;
    r.name = name;
    r.severity = severity;
    if (Status s = ParseAlertExpr(expr, &r); !s.ok()) {
      ITG_LOG(Warn) << "default alert rule '" << name
                    << "' failed to parse: " << s.ToString();
      return nullptr;
    }
    r.for_ms = for_ms;
    r.cooldown_ms = cooldown_ms;
    rules.push_back(std::move(r));
    return &rules.back();
  };

  // Ingest-queue saturation: the bounded queue is the backpressure
  // boundary; sitting at >= 90% for a while means producers outrun the
  // maintenance loop.
  const uint64_t sat = std::max<uint64_t>(
      1, defaults.ingest_queue_depth * 9 / 10);
  add("serve_ingest_queue_saturated", AlertSeverity::kWarn,
      "gauge(serve.queue_depth) >= " + std::to_string(sat), 2 * p, 10 * p);

  // View staleness: any standing view lagging the graph of record by a
  // large multiple of the SLO (or 5 s without one).
  const uint64_t lag_us =
      defaults.slo_ms > 0
          ? static_cast<uint64_t>(defaults.slo_ms * 1000.0 * 8.0)
          : uint64_t{5'000'000};
  add("serve_view_lag_stale", AlertSeverity::kWarn,
      "gauge(serve.view_lag_us.*) > " + std::to_string(lag_us), 2 * p,
      10 * p);

  // Backpressure stalls: ingest producers blocking on the full queue at
  // a sustained rate.
  {
    AlertRule* r = add("serve_backpressure_stalls", AlertSeverity::kWarn,
                       "rate(serve.backpressure_stalls) > 1", 0, 10 * p);
    if (r != nullptr) r->window_ms = 10 * p;
  }

  // Notify-latency SLO burn: the page-worthy one. Fast window = 2
  // evaluation periods so a real burn fires within two ticks; the slow
  // window keeps a single spike from paging.
  if (defaults.slo_ms > 0) {
    const uint64_t slo_us =
        static_cast<uint64_t>(defaults.slo_ms * 1000.0);
    AlertRule* r =
        add("serve_notify_p99_burn", AlertSeverity::kCritical,
            "burn(serve.delta_latency_us.*, slo=" + std::to_string(slo_us) +
                ", objective=99)",
            0, 2 * p);
    if (r != nullptr) {
      r->fast_window_ms = 2 * p;
      r->slow_window_ms = 10 * p;
      r->burn_factor = 1.0;
    }
  }

  // Memory-budget pressure: any standing view consuming >= 90% of its
  // admission slice (serve.budget_used_bytes.<q>, set by the service).
  if (defaults.memory_budget_bytes > 0) {
    const uint64_t limit = defaults.memory_budget_bytes * 9 / 10;
    add("serve_memory_pressure", AlertSeverity::kWarn,
        "gauge(serve.budget_used_bytes.*) >= " + std::to_string(limit),
        2 * p, 10 * p);
  }

  return rules;
}

}  // namespace itg
