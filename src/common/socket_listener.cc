#include "common/socket_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace itg {

SocketListener::~SocketListener() { Stop(); }

Status SocketListener::Start(const Options& options, Handler handler) {
  if (running()) {
    return Status::InvalidArgument(options.name + " listener already running");
  }
  options_ = options;
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(options_.name + " socket: " +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(options_.name + " bind 127.0.0.1:" +
                           std::to_string(options.port) + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, options.backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(options_.name + " listen: " + std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(options_.name + " getsockname: " +
                           std::strerror(err));
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;

  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });

  if (!options_.port_file.empty()) {
    std::FILE* f = std::fopen(options_.port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%d\n", port_);
      std::fclose(f);
    } else {
      ITG_LOG(Warn) << options_.name << ": cannot write port file "
                    << options_.port_file;
    }
  }
  return Status::OK();
}

void SocketListener::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  stop_.store(true, std::memory_order_relaxed);
  // shutdown() unblocks the accept loop (close alone would race a
  // concurrently re-opened fd number).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Unblock any handler still parked in recv() on a live connection,
  // then join all handler threads (each closes its own fd on exit).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (Conn& c : conns_) {
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  for (;;) {
    Conn c;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (conns_.empty()) break;
      c = std::move(conns_.back());
      conns_.pop_back();
    }
    if (c.thread.joinable()) c.thread.join();
  }
  if (!options_.port_file.empty()) {
    std::remove(options_.port_file.c_str());
  }
}

void SocketListener::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (stop_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR) continue;
      break;  // listener gone
    }
    if (!options_.thread_per_connection) {
      RunHandler(conn);
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    Conn c;
    c.fd = conn;
    c.done = std::make_shared<std::atomic<bool>>(false);
    auto done = c.done;
    c.thread = std::thread([this, conn, done] {
      RunHandler(conn);
      done->store(true, std::memory_order_release);
    });
    conns_.push_back(std::move(c));
  }
}

void SocketListener::RunHandler(int fd) {
  if (handler_) handler_(fd);
  ::close(fd);
}

// Joins handler threads whose connections already ended, so a
// long-lived server does not accumulate one zombie thread per past
// client. Called with conn_mu_ held from the accept thread only.
void SocketListener::ReapFinishedLocked() {
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i].done->load(std::memory_order_acquire)) {
      if (conns_[i].thread.joinable()) conns_[i].thread.join();
      conns_[i] = std::move(conns_.back());
      conns_.pop_back();
    } else {
      ++i;
    }
  }
}

}  // namespace itg
