#ifndef ITG_COMMON_STATUS_H_
#define ITG_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace itg {

/// Result code carried by Status. Mirrors the RocksDB/Arrow idiom: errors
/// cross module boundaries as values, never as exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kIOError,
  kParseError,
  kTypeError,
  kCompileError,
  kUnsupported,
  kInternal,
};

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); error path carries a message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status CompileError(std::string msg) {
    return Status(StatusCode::kCompileError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kOutOfMemory: return "OutOfMemory";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kCompileError: return "CompileError";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A Status or a value of type T. `value()` must only be called when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define ITG_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::itg::Status _itg_status = (expr);        \
    if (!_itg_status.ok()) return _itg_status; \
  } while (0)

/// Evaluates a StatusOr expression, propagating error or binding the value.
#define ITG_ASSIGN_OR_RETURN(lhs, expr)                   \
  ITG_ASSIGN_OR_RETURN_IMPL_(                             \
      ITG_STATUS_MACRO_CONCAT_(_itg_sor, __LINE__), lhs, expr)

#define ITG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define ITG_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define ITG_STATUS_MACRO_CONCAT_(x, y) ITG_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace itg

#endif  // ITG_COMMON_STATUS_H_
