#include "common/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/alert_engine.h"
#include "common/logging.h"

namespace itg {

namespace {

// Set from the SIGUSR1 handler; polled by the watchdog thread. A plain
// volatile sig_atomic_t would do, but the atomic makes the cross-thread
// poll well-defined too.
std::atomic<int> g_dump_requested{0};

// Only lock-free atomics are async-signal-safe (POSIX: a handler may not
// touch anything that can block, including a mutex-protected atomic
// emulation), so refuse to build where std::atomic<int> would degrade to
// a locking implementation.
static_assert(std::atomic<int>::is_always_lock_free,
              "SIGUSR1 handler requires a lock-free std::atomic<int>");

// CONTRACT: this handler must stay async-signal-safe. It may only store
// to lock-free atomics — no allocation, no locks, no logging, no call
// into FlightRecorder (whose ring is mutex-protected) and certainly no
// IncidentReporter::Capture (locks + file IO). The actual dump — log
// dump AND, when a reporter is configured, the full incident bundle —
// happens later, on the watchdog/telemetry thread, via PollSignalDump().
void Sigusr1Handler(int /*signo*/) {
  g_dump_requested.store(1, std::memory_order_relaxed);
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Enable(size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() != capacity) {
    ring_.assign(capacity, internal_trace::TraceEvent{});
    tids_.assign(capacity, 0);
    next_ = 0;
    count_ = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
  internal_trace::g_flight.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  internal_trace::g_flight.store(false, std::memory_order_relaxed);
}

void FlightRecorder::Record(const internal_trace::TraceEvent& event,
                            int tid) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  ring_[next_] = event;
  tids_[next_] = tid;
  next_ = (next_ + 1) % ring_.size();
  if (count_ < ring_.size()) ++count_;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = 0;
  count_ = 0;
}

std::string FlightRecorder::Dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(count_ * 64);
  const size_t cap = ring_.size();
  const size_t first = count_ < cap ? 0 : next_;
  for (size_t i = 0; i < count_; ++i) {
    const size_t idx = (first + i) % cap;
    const internal_trace::TraceEvent& e = ring_[idx];
    char line[192];
    if (e.phase == 'X') {
      std::snprintf(line, sizeof(line),
                    "  +%12.3fms %8.3fms tid=%-3d %s/%s", e.ts_nanos / 1e6,
                    e.dur_nanos / 1e6, tids_[idx], e.cat, e.name);
    } else {
      std::snprintf(line, sizeof(line), "  +%12.3fms     inst tid=%-3d %s/%s",
                    e.ts_nanos / 1e6, tids_[idx], e.cat, e.name);
    }
    out.append(line);
    if (e.has_arg) {
      char arg[32];
      std::snprintf(arg, sizeof(arg), " arg=%lld",
                    static_cast<long long>(e.arg));
      out.append(arg);
    }
    out.push_back('\n');
  }
  return out;
}

void FlightRecorder::DumpToLog(const char* reason, bool force) {
  std::string dump = Dump();
  if (dump.empty() && !force) return;
  ITG_LOG(Warn) << "flight recorder dump (" << reason << "), " << size()
                << " events, oldest first:\n"
                << (dump.empty() ? std::string("  <empty>\n") : dump)
                << "  --- end of flight recorder dump ---";
}

void FlightRecorder::InstallSigusr1() {
#ifdef SIGUSR1
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = Sigusr1Handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &action, nullptr);
#endif
}

void FlightRecorder::RequestSignalDump() {
  g_dump_requested.store(1, std::memory_order_relaxed);
}

bool FlightRecorder::PollSignalDump() {
  if (g_dump_requested.exchange(0, std::memory_order_relaxed) == 0) {
    return false;
  }
  DumpToLog("SIGUSR1", /*force=*/true);
  // SIGUSR1 is the operator's "grab me a black box now" button: same
  // bundle as an alert firing or a watchdog trip. We are on the poll
  // thread here, not in the handler, so the file IO is fine.
  IncidentReporter::Global().Capture("sigusr1", "info",
                                     "operator-requested dump (SIGUSR1)");
  return true;
}

}  // namespace itg
