#ifndef ITG_COMMON_LOGGING_H_
#define ITG_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace itg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kWarn so tests and benches stay quiet. The initial value
/// can be set with the `ITG_LOG_LEVEL` env var — a name (`debug`, `info`,
/// `warn`, `error`) or the numeric level (0-3).
LogLevel& MinLogLevel();

namespace internal_logging {

inline const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (level_ >= MinLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }

  std::ostringstream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line) {
    stream_ << "[FATAL " << Basename(file) << ":" << line << "] ";
  }
  [[noreturn]] ~FatalMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::abort();
  }
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define ITG_LOG(level)                                                 \
  ::itg::internal_logging::LogMessage(::itg::LogLevel::k##level,       \
                                      __FILE__, __LINE__)              \
      .stream()

/// Always-on invariant check; aborts with a message on violation.
#define ITG_CHECK(cond)                                              \
  if (!(cond))                                                       \
  ::itg::internal_logging::FatalMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define ITG_CHECK_EQ(a, b) ITG_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ITG_CHECK_LT(a, b) ITG_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ITG_CHECK_LE(a, b) ITG_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ITG_CHECK_GT(a, b) ITG_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ITG_CHECK_GE(a, b) ITG_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace itg

#endif  // ITG_COMMON_LOGGING_H_
