#ifndef ITG_COMMON_STALL_WATCHDOG_H_
#define ITG_COMMON_STALL_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace itg {

/// Background monitor of the engine's superstep heartbeat
/// (GlobalLiveStatus). A superstep that stays open past the deadline
/// trips the watchdog: the trip is logged once with a flight-recorder
/// dump, /healthz flips to unhealthy for as long as the stall persists,
/// and `watchdog.stalls_total` is bumped in GlobalRegistry(). The poll
/// loop also services SIGUSR1 flight-recorder dump requests, so a plain
/// `kill -USR1 <pid>` works on any process with the watchdog running —
/// even with a deadline of 0 (stall detection off).
class StallWatchdog {
 public:
  struct Options {
    /// Superstep deadline in milliseconds; 0 disables stall detection
    /// (the thread still services SIGUSR1 dumps).
    uint64_t deadline_ms = 0;
    uint64_t poll_ms = 25;
  };

  StallWatchdog() = default;
  ~StallWatchdog() { Stop(); }

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Starts the poll thread (idempotent: restarts with new options).
  void Start(const Options& options);
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// False while a superstep is currently past its deadline.
  bool healthy() const { return !stalled_.load(std::memory_order_relaxed); }
  /// Number of distinct stalls observed (sticky; exposed on /healthz and
  /// as the `watchdog.stalls_total` counter).
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  uint64_t deadline_ms() const { return options_.deadline_ms; }

  /// One poll iteration (exposed for deterministic tests; the background
  /// thread calls this in a loop).
  void CheckOnce();

 private:
  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<uint64_t> trips_{0};
  // Progress epoch at the time of the last trip: a stall is re-reported
  // only after the engine makes progress and wedges again.
  uint64_t tripped_epoch_ = ~uint64_t{0};
};

}  // namespace itg

#endif  // ITG_COMMON_STALL_WATCHDOG_H_
