#ifndef ITG_COMMON_RNG_H_
#define ITG_COMMON_RNG_H_

#include <cstdint>

namespace itg {

/// Deterministic 64-bit PRNG (splitmix64 seeding a xoshiro256**).
/// Every generator in the repo takes an explicit seed so that workloads
/// and mutation batches are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace itg

#endif  // ITG_COMMON_RNG_H_
