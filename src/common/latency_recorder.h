#ifndef ITG_COMMON_LATENCY_RECORDER_H_
#define ITG_COMMON_LATENCY_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"

namespace itg {

/// HdrHistogram-style latency recorder for benchmark drivers: the same
/// log-linear bucket map as `Histogram` but at 32 sub-buckets per octave
/// (≤ 3.1% relative error — fine enough that a p999 read off the
/// recorder is a real tail number, not a bucket artifact), plus a
/// tracked maximum. Thread-safe: all updates are relaxed atomics, so M
/// driver connections can record into one recorder.
///
/// Coordinated-omission discipline: callers on an open-loop schedule
/// must measure from the *intended* send time, not the actual one, so a
/// stalled batch is charged its full queueing delay (the load driver in
/// src/load/ does this). For closed-loop callers that cannot,
/// `RecordWithExpectedInterval` applies HdrHistogram's correction:
/// a sample exceeding the expected inter-sample interval back-fills the
/// synthetic samples the stall suppressed.
class LatencyRecorder {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kBuckets = loglin::NumBuckets(kSubBits);

  void Record(uint64_t micros) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(micros, std::memory_order_relaxed);
    buckets_[static_cast<size_t>(BucketOf(micros))].fetch_add(
        1, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (micros > cur && !max_.compare_exchange_weak(
                               cur, micros, std::memory_order_relaxed)) {
    }
  }

  /// HdrHistogram-style coordinated-omission correction for closed-loop
  /// callers: records `micros`, then back-fills one synthetic sample per
  /// `expected_interval_micros` the stall swallowed (micros - interval,
  /// micros - 2*interval, ... while > 0). No-op correction when
  /// `expected_interval_micros` is 0 or the sample is within it.
  void RecordWithExpectedInterval(uint64_t micros,
                                  uint64_t expected_interval_micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  static int BucketOf(uint64_t micros) {
    return loglin::BucketOf(micros, kSubBits);
  }
  static uint64_t BucketLowerBound(int b) {
    return loglin::BucketLowerBound(b, kSubBits);
  }

  /// Upper bound (exclusive) of the bucket holding the p-th percentile
  /// (p in [0, 100]); 0 when empty. Same rank rule as
  /// Histogram::PercentileUpperBound.
  uint64_t PercentileUpperBound(double p) const;

  void Merge(const LatencyRecorder& other);
  void Reset();

  /// Point-in-time digest, internally consistent under concurrent
  /// Record calls (count is derived from the bucket tallies read, like
  /// MetricsRegistry::Snap).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
    /// (bucket lower bound, count) for non-empty buckets, ascending.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
    double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

}  // namespace itg

#endif  // ITG_COMMON_LATENCY_RECORDER_H_
