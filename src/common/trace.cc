#include "common/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics_registry.h"

namespace itg {

namespace internal_trace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_flight{false};
std::atomic<bool> g_stacks{false};

namespace {

// Spans discarded because a per-thread buffer was full (satellite fix:
// losses used to be impossible only because buffers grew without bound;
// now they are bounded and every loss is counted and reported).
std::atomic<uint64_t> g_dropped{0};
std::atomic<size_t> g_max_events_per_thread{
    Tracer::kDefaultMaxEventsPerThread};

}  // namespace

namespace {

// Per-thread event buffer. Buffers are registered once per thread and leak
// intentionally (like GlobalMetrics) so events survive thread exit and the
// writer can run at process exit. Each buffer carries its own mutex so a
// snapshot/export can run while other threads keep recording.
// Stored frames of the live span stack; deeper nesting is still counted
// in live_depth (so pushes and pops balance) but not sampled.
constexpr int kMaxLiveDepth = 64;

struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::string thread_name;
  int tid = 0;
  // Live span stack for the sampling wall-profiler. Single writer (the
  // owning thread); the sampler acquires live_depth and then reads the
  // published frames. Frames are static string literals, so a racing
  // sample can at worst be one frame stale — never invalid.
  std::array<std::atomic<const char*>, kMaxLiveDepth> live_stack{};
  std::atomic<int> live_depth{0};
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadBuffer*> buffers;
  int next_tid = 1;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

ThreadBuffer* GetThreadBuffer() {
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer();
    Registry& r = GetRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return buf;
}

uint64_t RawNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Epoch() {
  static const uint64_t epoch = RawNanos();
  return epoch;
}

}  // namespace

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out->append(hex);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Microseconds with nanosecond precision kept in the fraction.
void AppendMicros(uint64_t nanos, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(nanos / 1000),
                static_cast<unsigned long long>(nanos % 1000));
  out->append(buf);
}

namespace {

void FlushEnvTraceAtExit() {
  const std::string& path = Tracer::env_path();
  if (path.empty()) return;
  Status s = Tracer::WriteTo(path);
  if (!s.ok()) {
    std::fprintf(stderr, "[itg] failed to write ITG_TRACE file %s: %s\n",
                 path.c_str(), s.ToString().c_str());
  }
}

// Enables tracing at startup when ITG_TRACE names an output path.
struct EnvInit {
  EnvInit() {
    if (!Tracer::env_path().empty()) {
      Tracer::Enable();
      std::atexit(FlushEnvTraceAtExit);
    }
  }
};
EnvInit g_env_init;

}  // namespace

uint64_t NowNanos() { return RawNanos() - Epoch(); }

void PushLiveSpan(const char* name) {
  ThreadBuffer* buf = GetThreadBuffer();
  const int d = buf->live_depth.load(std::memory_order_relaxed);
  if (d < kMaxLiveDepth) {
    buf->live_stack[static_cast<size_t>(d)].store(name,
                                                  std::memory_order_relaxed);
  }
  // Publish the frame before the depth that exposes it.
  buf->live_depth.store(d + 1, std::memory_order_release);
}

void PopLiveSpan() {
  ThreadBuffer* buf = GetThreadBuffer();
  const int d = buf->live_depth.load(std::memory_order_relaxed);
  if (d > 0) buf->live_depth.store(d - 1, std::memory_order_release);
}

void Emit(const TraceEvent& event, bool force_buffer) {
  ThreadBuffer* buf = GetThreadBuffer();
  if (g_enabled.load(std::memory_order_relaxed) || force_buffer) {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->events.size() <
        g_max_events_per_thread.load(std::memory_order_relaxed)) {
      buf->events.push_back(event);
    } else {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      // Mirrored into the registry so /metrics surfaces the loss live.
      static Counter* dropped_counter =
          GlobalRegistry().counter("trace.spans_dropped");
      dropped_counter->Increment();
    }
  }
  if (g_flight.load(std::memory_order_relaxed)) {
    FlightRecorder::Global().Record(event, buf->tid);
  }
}

}  // namespace internal_trace

using internal_trace::AppendJsonString;
using internal_trace::GetRegistry;
using internal_trace::GetThreadBuffer;
using internal_trace::Registry;
using internal_trace::ThreadBuffer;

void Tracer::Enable() {
  internal_trace::Epoch();  // pin the epoch before the first event
  internal_trace::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  internal_trace::g_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::SetStacksEnabled(bool on) {
  internal_trace::g_stacks.store(on, std::memory_order_relaxed);
}

std::vector<std::string> Tracer::SampleLiveStacks() {
  std::vector<std::string> out;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadBuffer* buf : r.buffers) {
    int depth = buf->live_depth.load(std::memory_order_acquire);
    if (depth <= 0) continue;  // idle threads don't produce samples
    depth = std::min(depth, internal_trace::kMaxLiveDepth);
    std::string folded;
    {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      folded = buf->thread_name.empty() ? "tid-" + std::to_string(buf->tid)
                                        : buf->thread_name;
    }
    for (int i = 0; i < depth; ++i) {
      const char* frame =
          buf->live_stack[static_cast<size_t>(i)].load(
              std::memory_order_relaxed);
      if (frame == nullptr) break;  // racing first push; take what we have
      folded.push_back(';');
      folded.append(frame);
    }
    out.push_back(std::move(folded));
  }
  return out;
}

int Tracer::LiveStackDepth() {
  return GetThreadBuffer()->live_depth.load(std::memory_order_relaxed);
}

void Tracer::Reset() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadBuffer* buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  internal_trace::g_dropped.store(0, std::memory_order_relaxed);
  GlobalRegistry().counter("trace.spans_dropped")->Reset();
}

uint64_t Tracer::dropped_count() {
  return internal_trace::g_dropped.load(std::memory_order_relaxed);
}

void Tracer::set_max_events_per_thread(size_t cap) {
  internal_trace::g_max_events_per_thread.store(
      cap == 0 ? kDefaultMaxEventsPerThread : cap,
      std::memory_order_relaxed);
}

size_t Tracer::max_events_per_thread() {
  return internal_trace::g_max_events_per_thread.load(
      std::memory_order_relaxed);
}

size_t Tracer::event_count() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  size_t total = 0;
  for (ThreadBuffer* buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->events.size();
  }
  return total;
}

std::vector<Tracer::CollectedEvent> Tracer::Collect() {
  std::vector<CollectedEvent> out;
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadBuffer* buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (const internal_trace::TraceEvent& e : buf->events) {
      CollectedEvent c;
      c.name = e.name;
      c.cat = e.cat;
      c.ts_nanos = e.ts_nanos;
      c.dur_nanos = e.dur_nanos;
      c.arg = e.arg;
      c.has_arg = e.has_arg;
      c.tid = buf->tid;
      c.phase = e.phase;
      c.flow_id = e.flow_id;
      out.push_back(std::move(c));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.ts_nanos < b.ts_nanos;
            });
  return out;
}

std::string Tracer::ToJson() {
  std::string out;
  out.reserve(1 << 16);
  out.append("{\"traceEvents\":[");
  bool first = true;

  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (ThreadBuffer* buf : r.buffers) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    if (!buf->thread_name.empty()) {
      if (!first) out.push_back(',');
      first = false;
      out.append(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
      out.append(std::to_string(buf->tid));
      out.append(",\"args\":{\"name\":");
      AppendJsonString(buf->thread_name, &out);
      out.append("}}");
    }
    for (const internal_trace::TraceEvent& e : buf->events) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":");
      AppendJsonString(e.name, &out);
      out.append(",\"cat\":");
      AppendJsonString(e.cat, &out);
      out.append(",\"ph\":\"");
      out.push_back(e.phase);
      out.append("\",\"pid\":1,\"tid\":");
      out.append(std::to_string(buf->tid));
      out.append(",\"ts\":");
      internal_trace::AppendMicros(e.ts_nanos, &out);
      if (e.phase == 'X') {
        out.append(",\"dur\":");
        internal_trace::AppendMicros(e.dur_nanos == 0 ? 1 : e.dur_nanos,
                                     &out);
      } else if (e.phase == 'i') {
        out.append(",\"s\":\"t\"");
      } else if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
        // Flow events carry the correlation id; the finish event binds to
        // the enclosing slice ("bp":"e") so the arrow lands on the span
        // that completed the flow rather than the next slice to start.
        out.append(",\"id\":\"");
        out.append(std::to_string(e.flow_id));
        out.push_back('"');
        if (e.phase == 'f') out.append(",\"bp\":\"e\"");
      }
      if (e.has_arg) {
        out.append(",\"args\":{\"value\":");
        out.append(std::to_string(e.arg));
        out.append("}");
      }
      out.append("}");
    }
  }
  out.append("],\"droppedSpans\":");
  out.append(std::to_string(
      internal_trace::g_dropped.load(std::memory_order_relaxed)));
  out.append(",\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

Status Tracer::WriteTo(const std::string& path) {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

void Tracer::SetThreadName(const std::string& name) {
  ThreadBuffer* buf = GetThreadBuffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->thread_name = name;
}

const std::string& Tracer::env_path() {
  static const std::string* path = [] {
    const char* env = std::getenv("ITG_TRACE");
    return new std::string(env == nullptr ? "" : env);
  }();
  return *path;
}

void TraceSpan::Begin(const char* name, const char* cat, int64_t arg,
                      bool record, bool push) {
  if (push) {
    internal_trace::PushLiveSpan(name);
    pushed_ = true;
  }
  if (record) {
    name_ = name;
    cat_ = cat;
    arg_ = arg;
    buffered_ = Tracer::enabled();
    t0_ = internal_trace::NowNanos();
  }
}

void TraceSpan::End() {
  if (pushed_) internal_trace::PopLiveSpan();
  if (name_ == nullptr) return;  // live-stack-only span, nothing buffered
  // If tracing was disabled mid-span, still record it: the begin was
  // observed, and a dangling begin would corrupt nesting in the export.
  uint64_t t1 = internal_trace::NowNanos();
  internal_trace::Emit({name_, cat_, t0_, t1 - t0_, arg_, 'X',
                        arg_ != Tracer::kNoArg},
                       /*force_buffer=*/buffered_);
}

}  // namespace itg
