#include "common/logging.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace itg {

namespace {

LogLevel InitialLogLevel() {
  const char* env = std::getenv("ITG_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kWarn;
  std::string value;
  for (const char* p = env; *p; ++p) {
    value.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") {
    return LogLevel::kWarn;
  }
  if (value == "error" || value == "3") return LogLevel::kError;
  std::fprintf(stderr,
               "[itg] unrecognized ITG_LOG_LEVEL=%s (want debug|info|warn|"
               "error or 0-3); defaulting to warn\n",
               env);
  return LogLevel::kWarn;
}

}  // namespace

LogLevel& MinLogLevel() {
  static LogLevel level = InitialLogLevel();
  return level;
}

namespace {

// Force ITG_LOG_LEVEL parsing at startup so a typo in the variable is
// diagnosed even in processes that never log.
const LogLevel g_startup_level = MinLogLevel();

}  // namespace

}  // namespace itg
