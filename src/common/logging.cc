#include "common/logging.h"

namespace itg {

LogLevel& MinLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

}  // namespace itg
