#include "common/metrics_registry.h"

namespace itg {

namespace {

template <typename T>
T* GetOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>* m,
               std::string_view name) {
  auto it = m->find(name);
  if (it == m->end()) {
    it = m->emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

void AppendJsonKey(const std::string& name, std::string* out) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

// Index of the bucket holding rank `rank` within `total` samples walked
// as cumulative counts; the one shared rank rule for both percentile
// entry points (and mirrored by tools/histogram_math.py).
uint64_t RankOf(double p, uint64_t total) {
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  return rank;
}

}  // namespace

uint64_t Histogram::PercentileUpperBound(double p) const {
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) total += bucket_count(b);
  if (total == 0) return 0;
  const uint64_t rank = RankOf(p, total);
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen > rank) {
      if (b + 1 >= kBuckets) return ~uint64_t{0};
      return BucketLowerBound(b + 1);
    }
  }
  return ~uint64_t{0};
}

uint64_t MetricsRegistry::HistogramSnapshot::PercentileUpperBound(
    double p) const {
  uint64_t total = 0;
  for (const auto& [lower, n] : buckets) total += n;
  if (total == 0) return 0;
  const uint64_t rank = RankOf(p, total);
  uint64_t seen = 0;
  for (const auto& [lower, n] : buckets) {
    seen += n;
    if (seen > rank) {
      const int b = Histogram::BucketOf(lower);
      if (b + 1 >= Histogram::kBuckets) return ~uint64_t{0};
      return Histogram::BucketLowerBound(b + 1);
    }
  }
  return ~uint64_t{0};
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&counters_, name);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&gauges_, name);
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreate(&histograms_, name);
}

namespace {

template <typename T>
bool RemoveByName(std::map<std::string, std::unique_ptr<T>, std::less<>>* m,
                  std::string_view name) {
  auto it = m->find(name);
  if (it == m->end()) return false;
  m->erase(it);
  return true;
}

}  // namespace

bool MetricsRegistry::RemoveCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RemoveByName(&counters_, name);
}

bool MetricsRegistry::RemoveGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RemoveByName(&gauges_, name);
}

bool MetricsRegistry::RemoveHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RemoveByName(&histograms_, name);
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    // A concurrent Record() is three independent relaxed adds, so the
    // count_ cell can run ahead of the bucket tallies we read here.
    // Deriving count from the buckets makes every snapshot internally
    // consistent (Σ buckets == count) — the invariant report validators
    // and the serving smoke assert on.
    HistogramSnapshot hs;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      uint64_t n = h->bucket_count(b);
      if (n != 0) {
        hs.buckets.emplace_back(Histogram::BucketLowerBound(b), n);
        hs.count += n;
      }
    }
    hs.sum = h->sum();
    snap.histograms[name] = std::move(hs);
  }
  return snap;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  // Snapshot `other` first so we never hold both registry mutexes at once.
  Snapshot snap = other.Snap();
  for (const auto& [name, v] : snap.counters) counter(name)->Add(v);
  for (const auto& [name, v] : snap.gauges) gauge(name)->Add(v);
  for (const auto& [name, hs] : snap.histograms) {
    histogram(name)->MergeRaw(hs.count, hs.sum, hs.buckets);
  }
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = Snap();
  std::string out;
  out.append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(name, &out);
    out.append(std::to_string(v));
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(name, &out);
    out.append(std::to_string(v));
  }
  out.append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hs] : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonKey(name, &out);
    out.append("{\"count\":");
    out.append(std::to_string(hs.count));
    out.append(",\"sum\":");
    out.append(std::to_string(hs.sum));
    out.append(",\"buckets\":[");
    bool bfirst = true;
    for (const auto& [lower, n] : hs.buckets) {
      if (!bfirst) out.push_back(',');
      bfirst = false;
      out.push_back('[');
      out.append(std::to_string(lower));
      out.push_back(',');
      out.append(std::to_string(n));
      out.push_back(']');
    }
    out.append("]}");
  }
  out.append("}}");
  return out;
}

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRing::Push(uint64_t t_ms, MetricsRegistry::Snapshot snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() == capacity_) {
    samples_.pop_front();
    ++evicted_;
  }
  samples_.push_back(Sample{t_ms, std::move(snap)});
}

size_t TimeSeriesRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

uint64_t TimeSeriesRing::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::vector<TimeSeriesRing::Sample> TimeSeriesRing::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Sample>(samples_.begin(), samples_.end());
}

std::string TimeSeriesRing::ToJson(uint64_t interval_ms) const {
  const std::vector<Sample> samples = Samples();
  std::string out;
  out.reserve(1 << 14);
  out.append("{\"capacity\":").append(std::to_string(capacity_));
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.append(",\"evicted\":").append(std::to_string(evicted_));
  }
  out.append(",\"interval_ms\":").append(std::to_string(interval_ms));
  out.append(",\"samples\":[");
  bool sfirst = true;
  for (const Sample& s : samples) {
    if (!sfirst) out.push_back(',');
    sfirst = false;
    out.append("{\"t_ms\":").append(std::to_string(s.t_ms));
    out.append(",\"counters\":{");
    bool first = true;
    for (const auto& [name, v] : s.snap.counters) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonKey(name, &out);
      out.append(std::to_string(v));
    }
    out.append("},\"gauges\":{");
    first = true;
    for (const auto& [name, v] : s.snap.gauges) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonKey(name, &out);
      out.append(std::to_string(v));
    }
    out.append("},\"histograms\":{");
    first = true;
    for (const auto& [name, hs] : s.snap.histograms) {
      if (!first) out.push_back(',');
      first = false;
      AppendJsonKey(name, &out);
      out.append("{\"count\":").append(std::to_string(hs.count));
      out.append(",\"sum\":").append(std::to_string(hs.sum));
      out.append(",\"p50\":")
          .append(std::to_string(hs.PercentileUpperBound(50)));
      out.append(",\"p99\":")
          .append(std::to_string(hs.PercentileUpperBound(99)));
      out.push_back('}');
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

}  // namespace itg
