#include "common/thread_pool.h"


#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/resource_scope.h"
#include "common/trace.h"

// The busy meters use ThreadCpuNanos (common/resource_scope.h) rather
// than wall clock so that, on a host with fewer cores than workers, time
// a worker spends descheduled inside a task is not billed as work — the
// per-batch max over workers then models the parallel section's wall
// time with one core per worker.

namespace itg {

ThreadPool::ThreadPool(int num_threads, Metrics* metrics)
    : num_threads_(std::max(1, num_threads)), metrics_(metrics) {
  queues_.reserve(static_cast<size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  batch_busy_.assign(static_cast<size_t>(num_threads_), 0);
  batch_longest_.assign(static_cast<size_t>(num_threads_), 0);
  busy_nanos_.assign(static_cast<size_t>(num_threads_), 0);
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<TimedMutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::DefaultThreads() {
  const int cap = Metrics::kMaxTrackedThreads;
  if (const char* env = std::getenv("ITG_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return std::min(v, cap);
  }
  unsigned hc = std::thread::hardware_concurrency();
  int n = (hc == 0) ? 1 : static_cast<int>(hc);
  return std::min(n, cap);
}

uint64_t ThreadPool::total_busy_nanos() const {
  uint64_t total = caller_busy_nanos_;
  for (uint64_t n : busy_nanos_) total += n;
  return total;
}

bool ThreadPool::PopOwn(int w, size_t* task) {
  WorkerQueue& q = *queues_[static_cast<size_t>(w)];
  std::lock_guard<TimedMutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  *task = q.tasks.front();
  q.tasks.pop_front();
  return true;
}

bool ThreadPool::StealTask(int w, size_t* task) {
  // Scan victims starting from the next worker; steal from the back so
  // the owner keeps the front of its contiguous (cache-friendly) range.
  for (int i = 1; i < num_threads_; ++i) {
    int victim = (w + i) % num_threads_;
    WorkerQueue& q = *queues_[static_cast<size_t>(victim)];
    std::lock_guard<TimedMutex> lock(q.mu);
    if (q.tasks.empty()) continue;
    *task = q.tasks.back();
    q.tasks.pop_back();
    steals_.fetch_add(1, std::memory_order_relaxed);
    TraceInstant("steal", "pool", victim);
    return true;
  }
  return false;
}

void ThreadPool::RunTasks(int w) {
  // Bill this worker's share of the batch to the scheduling query's
  // context. On the caller (worker 0) the context is typically already
  // current — re-entering is still correct (suspend/resume with disjoint
  // intervals), and a null context costs nothing.
  ResourceScope resources(batch_ctx_);
  uint64_t busy = 0;
  uint64_t longest = 0;
  while (true) {
    size_t task;
    if (!PopOwn(w, &task) && !StealTask(w, &task)) {
      // Queues drained: this worker is about to park at the batch barrier.
      TraceInstant("park", "pool", w);
      break;
    }
    const uint64_t cpu0 = ThreadCpuNanos();
    (*fn_)(task, w);
    const uint64_t elapsed = ThreadCpuNanos() - cpu0;
    busy += elapsed;
    longest = std::max(longest, elapsed);
  }
  batch_busy_[static_cast<size_t>(w)] = busy;
  batch_longest_[static_cast<size_t>(w)] = longest;
}

void ThreadPool::WorkerLoop(int w) {
  Tracer::SetThreadName("itg-worker-" + std::to_string(w));
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<TimedMutex> lock(mu_);
      wake_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    RunTasks(w);
    {
      std::lock_guard<TimedMutex> lock(mu_);
      ++drained_;
      if (drained_ == num_threads_) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t num_tasks, const TaskFn& fn) {
  if (num_tasks == 0) return;
  if (num_threads_ == 1 || num_tasks == 1) {
    // Sequential fast path: no handoff, still metered — into the caller
    // lane, not worker 0's meter, so inline execution is attributed to
    // the thread that actually ran it. The caller's own ResourceScope
    // (if any) keeps accruing, so no attribution plumbing is needed here.
    const uint64_t cpu0 = ThreadCpuNanos();
    for (size_t i = 0; i < num_tasks; ++i) fn(i, 0);
    uint64_t nanos = ThreadCpuNanos() - cpu0;
    caller_busy_nanos_ += nanos;
    critical_nanos_ += nanos;
    if (metrics_ != nullptr) metrics_->AddCallerCpuNanos(nanos);
    return;
  }

  fn_ = &fn;
  batch_ctx_ = CurrentResourceContext();
  std::fill(batch_busy_.begin(), batch_busy_.end(), 0);
  std::fill(batch_longest_.begin(), batch_longest_.end(), 0);
  const uint64_t steals0 = steals_.load(std::memory_order_relaxed);

  // Deal contiguous ranges: worker w owns tasks [w*chunk, ...), so
  // neighboring start-vertex blocks stay on one worker unless stolen.
  const size_t per = (num_tasks + static_cast<size_t>(num_threads_) - 1) /
                     static_cast<size_t>(num_threads_);
  for (int w = 0; w < num_threads_; ++w) {
    size_t begin = std::min(num_tasks, static_cast<size_t>(w) * per);
    size_t end = std::min(num_tasks, begin + per);
    WorkerQueue& q = *queues_[static_cast<size_t>(w)];
    std::lock_guard<TimedMutex> lock(q.mu);
    ITG_CHECK(q.tasks.empty());
    for (size_t i = begin; i < end; ++i) q.tasks.push_back(i);
  }

  {
    std::lock_guard<TimedMutex> lock(mu_);
    ++epoch_;
    drained_ = 0;
  }
  wake_cv_.notify_all();

  RunTasks(0);  // the caller is worker 0

  // The batch ends when every worker has passed through the drain
  // barrier — not merely when all tasks finished — so no straggler can
  // observe the next batch's queues or task function.
  {
    std::unique_lock<TimedMutex> lock(mu_);
    ++drained_;
    done_cv_.wait(lock, [&] { return drained_ == num_threads_; });
  }

  uint64_t total = 0;
  uint64_t longest = 0;
  for (int w = 0; w < num_threads_; ++w) {
    uint64_t nanos = batch_busy_[static_cast<size_t>(w)];
    busy_nanos_[static_cast<size_t>(w)] += nanos;
    total += nanos;
    longest = std::max(longest, batch_longest_[static_cast<size_t>(w)]);
    if (metrics_ != nullptr && nanos > 0) {
      metrics_->AddThreadCpuNanos(w, nanos);
    }
  }
  // Modeled batch makespan with one core per worker: Brent's bound
  // T_k <= T_total/k + T_span (span = longest single task, tasks being
  // independent) — achievable under greedy stealing, and immune to how
  // the host OS happens to timeslice an oversubscribed pool. Capped at
  // the serial time.
  critical_nanos_ += std::min(
      total, total / static_cast<uint64_t>(num_threads_) + longest);
  if (metrics_ != nullptr) {
    uint64_t stolen = steals_.load(std::memory_order_relaxed) - steals0;
    if (stolen > 0) metrics_->AddSteals(stolen);
  }
  fn_ = nullptr;
  batch_ctx_ = nullptr;
}

}  // namespace itg
