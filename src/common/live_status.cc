#include "common/live_status.h"

#include <chrono>

namespace itg {

uint64_t LiveStatus::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void LiveStatus::SetQuery(const std::string& query) {
  std::lock_guard<std::mutex> lock(mu_);
  query_ = query;
}

void LiveStatus::BeginRun(const char* phase, int64_t timestamp) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = phase;
  }
  timestamp_.store(timestamp, std::memory_order_relaxed);
  superstep_.store(-1, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  Pulse();
}

void LiveStatus::EndRun() {
  in_superstep_.store(false, std::memory_order_relaxed);
  running_.store(false, std::memory_order_relaxed);
  runs_total_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    phase_ = "idle";
  }
  Pulse();
}

void LiveStatus::BeginSuperstep(int64_t s) {
  superstep_.store(s, std::memory_order_relaxed);
  superstep_start_nanos_.store(NowNanos(), std::memory_order_relaxed);
  in_superstep_.store(true, std::memory_order_relaxed);
  Pulse();
}

void LiveStatus::EndSuperstep() {
  in_superstep_.store(false, std::memory_order_relaxed);
  supersteps_total_.fetch_add(1, std::memory_order_relaxed);
  Pulse();
}

void LiveStatus::SetDeltaSeq(int64_t seq) {
  delta_seq_.store(seq, std::memory_order_relaxed);
}

void LiveStatus::SetPartitions(
    const std::vector<PartitionState>& partitions) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_ = partitions;
}

void LiveStatus::SetDigest(uint64_t digest, int64_t timestamp) {
  state_digest_.store(digest, std::memory_order_relaxed);
  digest_timestamp_.store(timestamp, std::memory_order_relaxed);
}

void LiveStatus::RecordAudit(bool ok) {
  audits_total_.fetch_add(1, std::memory_order_relaxed);
  if (!ok) audit_failures_.fetch_add(1, std::memory_order_relaxed);
  last_audit_ok_.store(ok, std::memory_order_relaxed);
}

LiveStatus::Snapshot LiveStatus::Snap() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.query = query_;
    snap.phase = phase_;
    snap.partitions = partitions_;
  }
  snap.running = running_.load(std::memory_order_relaxed);
  snap.in_superstep = in_superstep_.load(std::memory_order_relaxed);
  snap.timestamp = timestamp_.load(std::memory_order_relaxed);
  snap.superstep = superstep_.load(std::memory_order_relaxed);
  snap.delta_seq = delta_seq_.load(std::memory_order_relaxed);
  snap.runs_total = runs_total_.load(std::memory_order_relaxed);
  snap.supersteps_total = supersteps_total_.load(std::memory_order_relaxed);
  snap.state_digest = state_digest_.load(std::memory_order_relaxed);
  snap.digest_timestamp = digest_timestamp_.load(std::memory_order_relaxed);
  snap.audits_total = audits_total_.load(std::memory_order_relaxed);
  snap.audit_failures = audit_failures_.load(std::memory_order_relaxed);
  snap.last_audit_ok = last_audit_ok_.load(std::memory_order_relaxed);
  if (snap.in_superstep) {
    uint64_t start = superstep_start_nanos_.load(std::memory_order_relaxed);
    uint64_t now = NowNanos();
    snap.superstep_age_nanos = now > start ? now - start : 0;
  }
  return snap;
}

LiveStatus& GlobalLiveStatus() {
  static LiveStatus* status = new LiveStatus();
  return *status;
}

}  // namespace itg
