#ifndef ITG_COMMON_SOCKET_LISTENER_H_
#define ITG_COMMON_SOCKET_LISTENER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace itg {

/// Dependency-free loopback TCP accept loop, extracted from the
/// telemetry server so the serving layer (src/serve/) can reuse the
/// exact same socket plumbing. Binds 127.0.0.1 only — both the
/// telemetry scrape plane and the standing-query wire protocol are
/// operator-local by design; put a real proxy in front for anything
/// else.
///
/// Two connection-handling modes:
///   - sequential (default): connections are handled one at a time on
///     the accept thread. Right for tiny request/response exchanges
///     like Prometheus scrapes.
///   - thread-per-connection: each accepted fd gets its own detachedly
///     tracked thread, so a long-lived subscriber connection (delta
///     streaming) cannot starve new clients. Stop() shuts down every
///     open connection fd and joins all handler threads.
class SocketListener {
 public:
  /// Called with the connected socket fd; the listener closes the fd
  /// after the handler returns.
  using Handler = std::function<void(int fd)>;

  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read
    /// it back with port()).
    int port = 0;
    /// When non-empty, the bound port is written to this file (one
    /// decimal line) once listening, and removed on Stop() — how the
    /// smoke tests find an ephemeral port.
    std::string port_file;
    /// Accept backlog.
    int backlog = 16;
    /// Spawn one thread per accepted connection instead of handling
    /// sequentially on the accept thread.
    bool thread_per_connection = false;
    /// Tag used in error messages and logs ("telemetry", "serve").
    std::string name = "listener";
  };

  SocketListener() = default;
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds, listens, and starts the accept loop on a background
  /// thread. `handler` is invoked for every accepted connection.
  Status Start(const Options& options, Handler handler);

  /// Unblocks the accept loop, shuts down open connection fds (thread-
  /// per-connection mode), joins every thread, and removes the port
  /// file. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  /// The actually-bound port (differs from options.port when it was 0).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void RunHandler(int fd);
  void ReapFinishedLocked();

  Options options_;
  Handler handler_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = 0;

  // thread-per-connection bookkeeping: live fds (so Stop() can unblock
  // handlers mid-read) and joinable handler threads.
  std::mutex conn_mu_;
  struct Conn {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Conn> conns_;
};

}  // namespace itg

#endif  // ITG_COMMON_SOCKET_LISTENER_H_
