#ifndef ITG_COMMON_TELEMETRY_SERVER_H_
#define ITG_COMMON_TELEMETRY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/flight_recorder.h"
#include "common/live_status.h"
#include "common/metrics_registry.h"
#include "common/socket_listener.h"
#include "common/stall_watchdog.h"
#include "common/status.h"

namespace itg {

class AlertEngine;

/// Options for the embedded telemetry endpoint.
struct TelemetryOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with TelemetryServer::port()).
  int port = 0;
  /// Superstep stall deadline in ms for the watchdog behind /healthz;
  /// 0 disables stall detection (the watchdog thread still runs and
  /// services SIGUSR1 flight-recorder dumps).
  uint64_t watchdog_deadline_ms = 0;
  /// When non-empty, the bound port is written to this file (one decimal
  /// line) once listening — how the telemetry smoke test finds an
  /// ephemeral port.
  std::string port_file;
  /// Ring capacity of the flight recorder enabled alongside the server.
  size_t flight_recorder_events = FlightRecorder::kDefaultCapacity;
  /// When > 0, a sampler thread pushes a registry snapshot into a
  /// TimeSeriesRing every `timeseries_interval_ms`, served at
  /// /timeseriesz — the server-side counterpart of the load driver's
  /// client-observed latency series (correlate tail spikes with queue
  /// depth / lag / stage shifts at matching wall-clock timestamps).
  uint64_t timeseries_interval_ms = 0;
  /// Ring capacity: /timeseriesz keeps the most recent N samples.
  size_t timeseries_capacity = 512;
};

/// Dependency-free embedded HTTP server for live telemetry:
///
///   GET /metrics  Prometheus text exposition (format 0.0.4) of the
///                 attached MetricsRegistry — every counter, gauge and
///                 log-scale histogram, including the per-partition skew
///                 and per-structure memory gauges.
///   GET /statusz  JSON of the live engine state (GlobalLiveStatus):
///                 current query, superstep, Δ-batch sequence,
///                 per-partition progress, watchdog and memory summary,
///                 plus any host-provided extra section (the serving
///                 daemon splices per-standing-query rows in here).
///   GET /healthz  200 {"status":"ok"} normally; 503 with status
///                 "stalled" (superstep past the watchdog deadline) or
///                 "alerting" (critical alert firing), and a `reasons`
///                 array naming each cause.
///   GET /alertz   alert-engine rule states (JSON; `?format=text` for
///                 the human table). 404 until an engine is attached
///                 with set_alert_engine().
///   GET /timeseriesz  JSON ring of periodic registry snapshots (404
///                 unless TelemetryOptions::timeseries_interval_ms > 0).
///   GET /profilez JSON-free folded wall-profile: runs the sampling
///                 profiler (common/wall_profiler.h) for `?seconds=N`
///                 (default 1, clamped to 30) and returns collapsed
///                 stacks plus a '#'-commented top table. Piggybacks on
///                 an already-running profiler (ITG_PROFILE) without
///                 stopping it.
///
/// Socket plumbing lives in SocketListener (shared with the serving
/// layer); this class is routing + rendering. Connections are handled
/// sequentially (scrapes are tiny and rare). Binds 127.0.0.1 only.
/// Enabling the server turns on the flight recorder and the stall
/// watchdog; reads never mutate engine state, so runs are bit-identical
/// with the server on or off.
class TelemetryServer {
 public:
  /// `registry` defaults to GlobalRegistry() when null.
  explicit TelemetryServer(MetricsRegistry* registry = nullptr);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  Status Start(const TelemetryOptions& options);
  void Stop();

  bool running() const { return listener_.running(); }
  /// The actually-bound port (differs from options.port when it was 0).
  int port() const { return listener_.port(); }
  const StallWatchdog& watchdog() const { return watchdog_; }

  /// Installs a hook whose return value — one or more complete JSON
  /// members, e.g. `"serving":{...}` — is spliced into the /statusz
  /// object. Set before Start() or from a quiesced server; the hook is
  /// called on the accept thread per scrape and must be thread-safe.
  void set_statusz_extra(std::function<std::string()> hook) {
    statusz_extra_ = std::move(hook);
  }

  /// Attaches an alert engine: enables /alertz, appends the Prometheus
  /// `ALERTS{...}` series to /metrics, and folds critical firing alerts
  /// into /healthz. The engine must outlive the server (or be detached
  /// with nullptr first). Set before Start() or from a quiesced server.
  void set_alert_engine(const AlertEngine* engine) {
    alert_engine_ = engine;
  }

  /// An HTTP response before serialization; exposed so unit tests can
  /// exercise routing without sockets.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  Response Handle(const std::string& path) const;

  /// The /timeseriesz ring; null unless sampling was enabled. Hosts read
  /// it to embed the server-side series in run reports.
  const TimeSeriesRing* timeseries() const { return timeseries_.get(); }

  /// Builds a server from the environment: ITG_TELEMETRY_PORT (required;
  /// unset/empty returns null), ITG_WATCHDOG_MS, ITG_TELEMETRY_PORTFILE,
  /// ITG_TIMESERIES_MS. The returned server is already started, exposing
  /// GlobalRegistry().
  static std::unique_ptr<TelemetryServer> FromEnv();

 private:
  void HandleConnection(int fd);
  void SamplerLoop();

  MetricsRegistry* registry_;
  TelemetryOptions options_;
  StallWatchdog watchdog_;
  SocketListener listener_;
  std::function<std::string()> statusz_extra_;
  const AlertEngine* alert_engine_ = nullptr;
  std::unique_ptr<TimeSeriesRing> timeseries_;
  std::thread sampler_;
  std::atomic<bool> sampler_stop_{false};
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
};

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP`/`# TYPE` per metric, names sanitized to
/// [a-zA-Z0-9_] with an `itg_` prefix, histograms expanded to cumulative
/// `_bucket{le="..."}` series plus `_sum`/`_count`. Exposed standalone so
/// the exposition-format unit tests need no server.
std::string RenderPrometheusText(const MetricsRegistry::Snapshot& snap);

/// `io.read_bytes` -> `itg_io_read_bytes` (every char outside
/// [a-zA-Z0-9_] becomes `_`; the prefix guarantees a valid first char).
std::string PrometheusMetricName(const std::string& name);

/// The /statusz payload (exposed for schema tests). `extra`, when
/// non-empty, must be one or more complete JSON members ("key":value)
/// and is spliced before the closing brace.
std::string RenderStatusz(const LiveStatus::Snapshot& live,
                          const StallWatchdog* watchdog,
                          const MetricsRegistry::Snapshot& metrics,
                          const std::string& extra = std::string());

}  // namespace itg

#endif  // ITG_COMMON_TELEMETRY_SERVER_H_
