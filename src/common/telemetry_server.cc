#include "common/telemetry_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "common/alert_engine.h"
#include "common/logging.h"
#include "common/wall_profiler.h"

namespace itg {

namespace {

void AppendJson(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out->append(hex);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Prometheus HELP text and label values escape `\` and newline (label
// values additionally escape `"`; our le values never need it).
void AppendPromEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

void AppendDouble(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// `seconds=N` from a /profilez query string; default 1, clamped to
// [0, 30] (0 = render the current accumulation without capturing —
// useful when ITG_PROFILE has the profiler running for the whole
// process). The clamp keeps a scrape from parking the accept thread
// (connections are handled sequentially) for minutes.
uint64_t ProfileSeconds(const std::string& query) {
  uint64_t seconds = 1;
  const size_t pos = query.find("seconds=");
  if (pos != std::string::npos) {
    seconds = std::strtoull(query.c_str() + pos + 8, nullptr, 10);
  }
  return seconds > 30 ? 30 : seconds;
}

// Endpoint label for the telemetry self-metrics: "/metrics" -> "metrics",
// "/" -> "index", anything unrouted -> "other" (so probing random paths
// cannot mint unbounded series).
std::string EndpointLabel(const std::string& path, int status) {
  if (path == "/") return "index";
  if (status == 404) return "other";
  std::string label = path.substr(1);
  for (char& c : label) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return label;
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "itg_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string RenderPrometheusText(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  out.reserve(1 << 14);

  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PrometheusMetricName(name);
    out.append("# HELP ").append(prom).append(" itg counter ");
    AppendPromEscaped(name, &out);
    out.push_back('\n');
    out.append("# TYPE ").append(prom).append(" counter\n");
    out.append(prom).push_back(' ');
    out.append(std::to_string(value));
    out.push_back('\n');
  }

  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusMetricName(name);
    out.append("# HELP ").append(prom).append(" itg gauge ");
    AppendPromEscaped(name, &out);
    out.push_back('\n');
    out.append("# TYPE ").append(prom).append(" gauge\n");
    out.append(prom).push_back(' ');
    out.append(std::to_string(value));
    out.push_back('\n');
  }

  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = PrometheusMetricName(name);
    out.append("# HELP ").append(prom).append(" itg histogram ");
    AppendPromEscaped(name, &out);
    out.push_back('\n');
    out.append("# TYPE ").append(prom).append(" histogram\n");
    // Integer-valued buckets make `le` of the inclusive upper bound
    // exact; the bound comes from the histogram's own log-linear bucket
    // map (the zero bucket renders as le="0").
    uint64_t cumulative = 0;
    for (const auto& [lower, n] : h.buckets) {
      cumulative += n;
      const uint64_t le =
          Histogram::BucketUpperBound(Histogram::BucketOf(lower));
      out.append(prom).append("_bucket{le=\"");
      out.append(std::to_string(le));
      out.append("\"} ");
      out.append(std::to_string(cumulative));
      out.push_back('\n');
    }
    out.append(prom).append("_bucket{le=\"+Inf\"} ");
    out.append(std::to_string(h.count));
    out.push_back('\n');
    out.append(prom).append("_sum ");
    out.append(std::to_string(h.sum));
    out.push_back('\n');
    out.append(prom).append("_count ");
    out.append(std::to_string(h.count));
    out.push_back('\n');
  }

  return out;
}

std::string RenderStatusz(const LiveStatus::Snapshot& live,
                          const StallWatchdog* watchdog,
                          const MetricsRegistry::Snapshot& metrics,
                          const std::string& extra) {
  std::string out;
  out.reserve(1 << 12);
  out.append("{\"query\":");
  AppendJson(live.query, &out);
  out.append(",\"phase\":");
  AppendJson(live.phase, &out);
  out.append(",\"running\":").append(live.running ? "true" : "false");
  out.append(",\"in_superstep\":")
      .append(live.in_superstep ? "true" : "false");
  out.append(",\"timestamp\":").append(std::to_string(live.timestamp));
  out.append(",\"superstep\":").append(std::to_string(live.superstep));
  out.append(",\"delta_seq\":").append(std::to_string(live.delta_seq));
  out.append(",\"runs_total\":").append(std::to_string(live.runs_total));
  out.append(",\"supersteps_total\":")
      .append(std::to_string(live.supersteps_total));
  out.append(",\"superstep_age_ms\":");
  AppendDouble(static_cast<double>(live.superstep_age_nanos) / 1e6, &out);

  out.append(",\"watchdog\":{");
  if (watchdog != nullptr) {
    out.append("\"running\":")
        .append(watchdog->running() ? "true" : "false");
    out.append(",\"deadline_ms\":")
        .append(std::to_string(watchdog->deadline_ms()));
    out.append(",\"healthy\":")
        .append(watchdog->healthy() ? "true" : "false");
    out.append(",\"stalls_total\":")
        .append(std::to_string(watchdog->trips()));
  } else {
    out.append("\"running\":false");
  }
  out.push_back('}');

  // Incremental-correctness observability: the latest state digest and
  // the drift auditor's running verdict counts.
  out.append(",\"audit\":{\"state_digest\":")
      .append(std::to_string(live.state_digest));
  out.append(",\"digest_timestamp\":")
      .append(std::to_string(live.digest_timestamp));
  out.append(",\"audits_total\":").append(std::to_string(live.audits_total));
  out.append(",\"audit_failures\":")
      .append(std::to_string(live.audit_failures));
  out.append(",\"last_audit_ok\":")
      .append(live.last_audit_ok ? "true" : "false");
  out.push_back('}');

  out.append(",\"partitions\":[");
  for (size_t i = 0; i < live.partitions.size(); ++i) {
    const LiveStatus::PartitionState& p = live.partitions[i];
    if (i != 0) out.push_back(',');
    out.append("{\"id\":").append(std::to_string(i));
    out.append(",\"network_bytes\":")
        .append(std::to_string(p.network_bytes));
    out.append(",\"barrier_wait_ms\":");
    AppendDouble(static_cast<double>(p.barrier_wait_nanos) / 1e6, &out);
    out.append(",\"seconds\":");
    AppendDouble(p.seconds, &out);
    out.push_back('}');
  }
  out.push_back(']');

  // Per-context resource attribution: every counter triple
  // resource.<ctx>.{cpu_nanos,pages_read,bytes_alloc} collapses into one
  // JSON object — "who is eating my CPU" at a glance.
  out.append(",\"resources\":{");
  {
    bool first_ctx = true;
    constexpr std::string_view kResPrefix = "resource.";
    constexpr std::string_view kCpuSuffix = ".cpu_nanos";
    for (const auto& [name, value] : metrics.counters) {
      if (name.rfind(kResPrefix, 0) != 0) continue;
      if (name.size() <= kResPrefix.size() + kCpuSuffix.size() ||
          name.compare(name.size() - kCpuSuffix.size(), kCpuSuffix.size(),
                       kCpuSuffix) != 0) {
        continue;
      }
      const std::string ctx = name.substr(
          kResPrefix.size(),
          name.size() - kResPrefix.size() - kCpuSuffix.size());
      auto counter_or_zero = [&](const std::string& series) -> uint64_t {
        const auto it = metrics.counters.find(series);
        return it != metrics.counters.end() ? it->second : 0;
      };
      if (!first_ctx) out.push_back(',');
      first_ctx = false;
      AppendJson(ctx, &out);
      out.append(":{\"cpu_nanos\":").append(std::to_string(value));
      out.append(",\"pages_read\":")
          .append(std::to_string(
              counter_or_zero("resource." + ctx + ".pages_read")));
      out.append(",\"bytes_alloc\":")
          .append(std::to_string(
              counter_or_zero("resource." + ctx + ".bytes_alloc")));
      out.append("}");
    }
  }
  out.push_back('}');

  // Per-structure memory: every gauge pair mem.<name>.bytes /
  // mem.<name>.peak_bytes collapses into one JSON object.
  out.append(",\"memory\":{");
  bool first = true;
  for (const auto& [name, value] : metrics.gauges) {
    constexpr std::string_view kPrefix = "mem.";
    constexpr std::string_view kBytes = ".bytes";
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.size() <= kPrefix.size() + kBytes.size() ||
        name.compare(name.size() - kBytes.size(), kBytes.size(), kBytes) !=
            0) {
      continue;
    }
    std::string struct_name = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kBytes.size());
    if (struct_name.size() > 5 &&
        struct_name.compare(struct_name.size() - 5, 5, ".peak") == 0) {
      continue;  // folded into its base entry below
    }
    const auto peak_it = metrics.gauges.find("mem." + struct_name +
                                             ".peak_bytes");
    if (!first) out.push_back(',');
    first = false;
    AppendJson(struct_name, &out);
    out.append(":{\"bytes\":").append(std::to_string(value));
    out.append(",\"peak_bytes\":")
        .append(std::to_string(
            peak_it != metrics.gauges.end() ? peak_it->second : value));
    out.append("}");
  }
  out.push_back('}');
  if (!extra.empty()) {
    out.push_back(',');
    out.append(extra);
  }
  out.append("}\n");
  return out;
}

TelemetryServer::TelemetryServer(MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &GlobalRegistry()) {}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(const TelemetryOptions& options) {
  if (running()) {
    return Status::InvalidArgument("telemetry server already running");
  }
  options_ = options;

  SocketListener::Options lopt;
  lopt.port = options.port;
  lopt.port_file = options.port_file;
  lopt.name = "telemetry";
  Status s =
      listener_.Start(lopt, [this](int fd) { HandleConnection(fd); });
  if (!s.ok()) return s;

  FlightRecorder::Global().Enable(options.flight_recorder_events);
  FlightRecorder::InstallSigusr1();
  StallWatchdog::Options wd;
  wd.deadline_ms = options.watchdog_deadline_ms;
  watchdog_.Start(wd);

  if (options.timeseries_interval_ms > 0) {
    timeseries_ =
        std::make_unique<TimeSeriesRing>(options.timeseries_capacity);
    sampler_stop_.store(false, std::memory_order_relaxed);
    sampler_ = std::thread([this] { SamplerLoop(); });
  }

  ITG_LOG(Info) << "telemetry server listening on 127.0.0.1:" << port()
                << " (/metrics /statusz /healthz"
                << (timeseries_ ? " /timeseriesz)" : ")");
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!running()) return;
  if (sampler_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sampler_mu_);
      sampler_stop_.store(true, std::memory_order_relaxed);
    }
    sampler_cv_.notify_all();
    sampler_.join();
  }
  listener_.Stop();
  watchdog_.Stop();
}

void TelemetryServer::SamplerLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.timeseries_interval_ms);
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_.load(std::memory_order_relaxed)) {
    lock.unlock();
    const uint64_t t_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    timeseries_->Push(t_ms, registry_->Snap());
    lock.lock();
    sampler_cv_.wait_for(lock, interval, [this] {
      return sampler_stop_.load(std::memory_order_relaxed);
    });
  }
}

void TelemetryServer::HandleConnection(int fd) {
  // Scrape requests are one small GET; a single read suffices for any
  // client this server is meant for.
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';

  std::string path = "/";
  {
    const char* sp = std::strchr(buf, ' ');
    if (sp != nullptr) {
      const char* end = std::strchr(sp + 1, ' ');
      if (end != nullptr) path.assign(sp + 1, end);
    }
  }
  // The query string is passed through: Handle routes on the path before
  // '?' and /profilez reads its capture window from `seconds=N`.
  const Response resp = Handle(path);
  const char* reason = resp.status == 200   ? "OK"
                       : resp.status == 404 ? "Not Found"
                       : resp.status == 503 ? "Service Unavailable"
                                            : "Error";
  std::string out;
  out.reserve(resp.body.size() + 160);
  out.append("HTTP/1.1 ").append(std::to_string(resp.status));
  out.push_back(' ');
  out.append(reason);
  out.append("\r\nContent-Type: ").append(resp.content_type);
  out.append("\r\nContent-Length: ")
      .append(std::to_string(resp.body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(resp.body);

  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t w = ::send(fd, out.data() + sent, out.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
}

TelemetryServer::Response TelemetryServer::Handle(
    const std::string& full_path) const {
  // Split the route from the query string: /metrics?foo=1 routes like
  // /metrics; /profilez?seconds=N consumes its query below.
  std::string path = full_path;
  std::string query;
  if (const size_t q = full_path.find('?'); q != std::string::npos) {
    path.resize(q);
    query = full_path.substr(q + 1);
  }
  const auto scrape_start = std::chrono::steady_clock::now();
  Response resp;
  if (path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = RenderPrometheusText(registry_->Snap());
    // The Prometheus ALERTS convention: one series per rule currently
    // pending or firing, value 1 (resolved/inactive rules emit nothing).
    if (alert_engine_ != nullptr) {
      std::string alerts;
      for (const AlertStatus& st : alert_engine_->Statuses()) {
        if (st.state != AlertState::kPending &&
            st.state != AlertState::kFiring) {
          continue;
        }
        alerts.append("ALERTS{alertname=\"").append(st.name);
        alerts.append("\",severity=\"")
            .append(AlertSeverityName(st.severity));
        alerts.append("\",state=\"").append(AlertStateName(st.state));
        alerts.append("\"} 1\n");
      }
      if (!alerts.empty()) {
        resp.body.append("# TYPE ALERTS gauge\n").append(alerts);
      }
    }
  } else if (path == "/statusz") {
    resp.content_type = "application/json";
    resp.body = RenderStatusz(GlobalLiveStatus().Snap(), &watchdog_,
                              registry_->Snap(),
                              statusz_extra_ ? statusz_extra_()
                                             : std::string());
  } else if (path == "/healthz") {
    // Health aggregates the stall watchdog with critical firing alerts;
    // the body names WHY it is unhealthy so an LB log or a curl tells
    // the operator which subsystem to look at, not just "503".
    resp.content_type = "application/json";
    const bool stalled = !watchdog_.healthy();
    std::vector<std::string> critical;
    if (alert_engine_ != nullptr) critical = alert_engine_->CriticalFiring();
    const char* status =
        stalled ? "stalled" : (critical.empty() ? "ok" : "alerting");
    resp.status = (stalled || !critical.empty()) ? 503 : 200;
    resp.body = std::string("{\"status\":\"") + status + "\",\"reasons\":[";
    bool first = true;
    if (stalled) {
      resp.body.append("\"watchdog: superstep past deadline\"");
      first = false;
    }
    for (const std::string& name : critical) {
      if (!first) resp.body.push_back(',');
      first = false;
      AppendJson("alert firing: " + name, &resp.body);
    }
    resp.body.append("],\"stalls_total\":")
        .append(std::to_string(watchdog_.trips()));
    resp.body.append(",\"critical_firing\":")
        .append(std::to_string(critical.size()));
    resp.body.append(",\"watchdog_deadline_ms\":")
        .append(std::to_string(watchdog_.deadline_ms()))
        .append("}\n");
  } else if (path == "/alertz" && alert_engine_ != nullptr) {
    if (query.find("format=text") != std::string::npos) {
      resp.body = alert_engine_->ToText();
    } else {
      resp.content_type = "application/json";
      resp.body = alert_engine_->ToJson();
    }
  } else if (path == "/timeseriesz" && timeseries_ != nullptr) {
    resp.content_type = "application/json";
    resp.body = timeseries_->ToJson(options_.timeseries_interval_ms);
    resp.body.push_back('\n');
  } else if (path == "/profilez") {
    // Timed wall-profile capture: start the sampler, hold the connection
    // for the window, stop, and render folded stacks. When the profiler
    // is already running (ITG_PROFILE, or a concurrent scrape), the
    // accumulation is shared: this scrape waits its window and renders
    // without stopping the owner. Blocking the accept thread is fine —
    // scrapes are rare and the window is clamped to 30 s.
    WallProfiler& prof = WallProfiler::Global();
    const uint64_t seconds = ProfileSeconds(query);
    const bool owned = !prof.running();
    if (owned && seconds > 0) {
      prof.Reset();
      prof.Start();
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    if (owned && seconds > 0) prof.Stop();
    resp.body = prof.Render();
  } else if (path == "/") {
    resp.body =
        "itg telemetry\n"
        "  /metrics      Prometheus text exposition\n"
        "  /statusz      live engine state (JSON)\n"
        "  /healthz      watchdog + critical-alert health (with reasons)\n"
        "  /alertz       alert rule states (when an alert engine is "
        "attached; ?format=text)\n"
        "  /timeseriesz  periodic registry snapshots (when sampling "
        "is enabled)\n"
        "  /profilez     folded wall-profile stacks (?seconds=N capture "
        "window)\n";
  } else {
    resp.status = 404;
    resp.body = "not found\n";
  }

  // Self-observability: the cost of the observability plane itself.
  // Recorded after rendering, so a /metrics scrape reports the plane's
  // state as of the previous scrape — the usual Prometheus offset.
  const uint64_t scrape_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - scrape_start)
          .count());
  const std::string endpoint = EndpointLabel(path, resp.status);
  registry_->counter("telemetry.requests_total")->Increment();
  registry_->counter("telemetry.requests." + endpoint)->Increment();
  registry_->counter("telemetry.response_bytes")->Add(resp.body.size());
  registry_->counter("telemetry.response_bytes." + endpoint)
      ->Add(resp.body.size());
  registry_->histogram("telemetry.scrape_latency_us")->Record(scrape_us);
  return resp;
}

std::unique_ptr<TelemetryServer> TelemetryServer::FromEnv() {
  const char* port_env = std::getenv("ITG_TELEMETRY_PORT");
  if (port_env == nullptr || port_env[0] == '\0') return nullptr;
  TelemetryOptions options;
  options.port = std::atoi(port_env);
  if (const char* wd = std::getenv("ITG_WATCHDOG_MS")) {
    options.watchdog_deadline_ms =
        static_cast<uint64_t>(std::strtoull(wd, nullptr, 10));
  }
  if (const char* pf = std::getenv("ITG_TELEMETRY_PORTFILE")) {
    options.port_file = pf;
  }
  if (const char* ts = std::getenv("ITG_TIMESERIES_MS")) {
    options.timeseries_interval_ms =
        static_cast<uint64_t>(std::strtoull(ts, nullptr, 10));
  }
  auto server = std::make_unique<TelemetryServer>();
  Status s = server->Start(options);
  if (!s.ok()) {
    ITG_LOG(Warn) << "telemetry server failed to start: " << s.ToString();
    return nullptr;
  }
  return server;
}

}  // namespace itg
