#ifndef ITG_COMMON_LIVE_STATUS_H_
#define ITG_COMMON_LIVE_STATUS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace itg {

/// Process-wide live engine state — the "what is the engine doing RIGHT
/// NOW" counterpart of the post-mortem run reports. The engine's
/// superstep loop feeds it through cheap hooks (atomic stores plus one
/// short mutex section per superstep for the partition vector); the
/// telemetry server renders it as /statusz and the stall watchdog
/// monitors its superstep heartbeat. Hooks never affect computation, so
/// work fingerprints are identical whether anything reads this or not.
class LiveStatus {
 public:
  /// Per-partition progress of the superstep that most recently finished
  /// (cumulative within the current run).
  struct PartitionState {
    uint64_t network_bytes = 0;      ///< shuffle volume sent so far
    uint64_t barrier_wait_nanos = 0; ///< time spent waiting at BSP barriers
    double seconds = 0;              ///< measured compute + IO time
  };

  /// Plain-value copy for renderers.
  struct Snapshot {
    std::string query;
    std::string phase;  ///< "idle", "oneshot" or "incremental"
    bool running = false;
    bool in_superstep = false;
    int64_t timestamp = 0;       ///< snapshot t of the current/last run
    int64_t superstep = -1;      ///< current/last superstep index
    int64_t delta_seq = 0;       ///< Δ-batch sequence number (ingestion)
    uint64_t runs_total = 0;
    uint64_t supersteps_total = 0;
    uint64_t superstep_age_nanos = 0;  ///< 0 unless in_superstep
    // Correctness audit (state digests + drift auditor verdicts).
    uint64_t state_digest = 0;     ///< end-of-run digest of the last run
    int64_t digest_timestamp = -1; ///< snapshot t the digest belongs to
    uint64_t audits_total = 0;     ///< drift audits performed
    uint64_t audit_failures = 0;   ///< audits that found divergence
    bool last_audit_ok = true;
    std::vector<PartitionState> partitions;
  };

  // ---- engine-side hooks -------------------------------------------------
  void SetQuery(const std::string& query);
  void BeginRun(const char* phase, int64_t timestamp);
  void EndRun();
  void BeginSuperstep(int64_t s);
  void EndSuperstep();
  void SetDeltaSeq(int64_t seq);
  void SetPartitions(const std::vector<PartitionState>& partitions);
  /// End-of-run state digest of snapshot `timestamp`.
  void SetDigest(uint64_t digest, int64_t timestamp);
  /// One drift-audit verdict (ok = no divergence).
  void RecordAudit(bool ok);

  // ---- reader side -------------------------------------------------------
  Snapshot Snap() const;

  /// Monotonic heartbeat: bumped by every Begin/End hook. The stall
  /// watchdog compares epochs to distinguish "stuck inside one superstep"
  /// from "making progress".
  uint64_t progress_epoch() const {
    return progress_epoch_.load(std::memory_order_relaxed);
  }
  bool in_superstep() const {
    return in_superstep_.load(std::memory_order_relaxed);
  }
  /// Monotonic-clock nanos when the current superstep started (valid
  /// while in_superstep()).
  uint64_t superstep_start_nanos() const {
    return superstep_start_nanos_.load(std::memory_order_relaxed);
  }

  static uint64_t NowNanos();

 private:
  void Pulse() { progress_epoch_.fetch_add(1, std::memory_order_relaxed); }

  mutable std::mutex mu_;  // guards query_, phase_, partitions_
  std::string query_;
  std::string phase_ = "idle";
  std::vector<PartitionState> partitions_;

  std::atomic<bool> running_{false};
  std::atomic<bool> in_superstep_{false};
  std::atomic<int64_t> timestamp_{0};
  std::atomic<int64_t> superstep_{-1};
  std::atomic<int64_t> delta_seq_{0};
  std::atomic<uint64_t> runs_total_{0};
  std::atomic<uint64_t> supersteps_total_{0};
  std::atomic<uint64_t> superstep_start_nanos_{0};
  std::atomic<uint64_t> progress_epoch_{0};
  std::atomic<uint64_t> state_digest_{0};
  std::atomic<int64_t> digest_timestamp_{-1};
  std::atomic<uint64_t> audits_total_{0};
  std::atomic<uint64_t> audit_failures_{0};
  std::atomic<bool> last_audit_ok_{true};
};

/// The process-wide live status every engine instance reports into and
/// the telemetry endpoints read from.
LiveStatus& GlobalLiveStatus();

}  // namespace itg

#endif  // ITG_COMMON_LIVE_STATUS_H_
