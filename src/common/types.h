#ifndef ITG_COMMON_TYPES_H_
#define ITG_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace itg {

/// Identifier of a vertex. The paper predefines `id:long`; 64-bit ids keep
/// the model faithful even though laptop-scale graphs fit in 32 bits.
using VertexId = int64_t;

/// A graph snapshot timestamp `t` (0 = initial graph G_0).
using Timestamp = int32_t;

/// A BSP superstep index `s` within the execution of one snapshot.
using Superstep = int32_t;

/// Signed multiplicity of a stream tuple: +1 = insertion, -1 = deletion.
/// The simple-graph model of the paper restricts multiplicities to ±1.
using Multiplicity = int8_t;

/// A directed edge (src, dst). Undirected graphs are stored as pairs of
/// directed edges in both directions, as in the paper (§4).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Edge& e) {
  return os << "(" << e.src << "->" << e.dst << ")";
}

/// An edge tagged with a multiplicity: one element of a delta edge stream.
struct EdgeDelta {
  Edge edge;
  Multiplicity mult = 1;

  friend bool operator==(const EdgeDelta&, const EdgeDelta&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const EdgeDelta& d) {
  return os << d.edge << (d.mult > 0 ? "+" : "-");
}

struct EdgeHash {
  size_t operator()(const Edge& e) const {
    uint64_t x = static_cast<uint64_t>(e.src) * 0x9E3779B97F4A7C15ull;
    x ^= static_cast<uint64_t>(e.dst) + 0x9E3779B97F4A7C15ull + (x << 6) +
         (x >> 2);
    return static_cast<size_t>(x);
  }
};

}  // namespace itg

#endif  // ITG_COMMON_TYPES_H_
