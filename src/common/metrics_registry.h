#ifndef ITG_COMMON_METRICS_REGISTRY_H_
#define ITG_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace itg {

/// Named-metric registry: counters, gauges, and log-linear histograms.
///
/// Instruments register (or look up) a metric once by name and then update
/// it lock-free; all updates are relaxed atomics, so a metric pointer can
/// be shared across the thread pool. Metric pointers are stable for the
/// lifetime of the registry unless the series is explicitly removed with
/// `RemoveCounter/RemoveGauge/RemoveHistogram` (see below).
///
/// One registry per simulated machine (owned by `Metrics`, which remains
/// the compatibility facade for the six original hard-coded counters);
/// `GlobalRegistry()` is the process-wide default that run reports export.

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed level (e.g. resident bytes, active chain length).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Monotonic raise: keeps the maximum of the current value and `v`
  /// (CAS loop, safe against concurrent SetMax). Peak-byte gauges use
  /// this so concurrent charges cannot regress the high-water mark.
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-linear (HdrHistogram-style) bucket map, parameterized by
/// sub-bucket resolution: values below 2^sub_bits get a single-value
/// bucket each; above that, every power-of-two octave [2^p, 2^(p+1))
/// splits into 2^sub_bits linear sub-buckets, bounding the relative
/// bucket width at 2^-sub_bits. The one home of the bucket math —
/// Histogram (sub_bits=3) and LatencyRecorder (sub_bits=5) both
/// delegate here, and tools/histogram_math.py mirrors it for the
/// Python report readers.
namespace loglin {

constexpr int NumBuckets(int sub_bits) {
  return (1 << sub_bits) + (64 - sub_bits) * (1 << sub_bits);
}

constexpr int BucketOf(uint64_t value, int sub_bits) {
  const uint64_t exact = uint64_t{1} << sub_bits;
  if (value < exact) return static_cast<int>(value);
  const int p = std::bit_width(value) - 1;  // index of the MSB, >= sub_bits
  const int sub =
      static_cast<int>((value >> (p - sub_bits)) & (exact - 1));
  return static_cast<int>(exact) + (p - sub_bits) * static_cast<int>(exact) +
         sub;
}

constexpr uint64_t BucketLowerBound(int b, int sub_bits) {
  const int exact = 1 << sub_bits;
  if (b <= 0) return 0;
  if (b < exact) return static_cast<uint64_t>(b);
  const int i = b - exact;
  const int p = i / exact + sub_bits;
  const int sub = i % exact;
  return static_cast<uint64_t>(exact + sub) << (p - sub_bits);
}

/// Inclusive upper bound; UINT64_MAX for the final bucket.
constexpr uint64_t BucketUpperBound(int b, int sub_bits) {
  if (b < 0) return 0;
  if (b >= NumBuckets(sub_bits) - 1) return ~uint64_t{0};
  return BucketLowerBound(b + 1, sub_bits) - 1;
}

}  // namespace loglin

/// Log-linear (HdrHistogram-style) histogram for long-tailed quantities:
/// walk lengths, Δ-batch sizes, page-read and serve latencies.
///
/// Values 0..7 get their own exact bucket; above that, each power-of-two
/// octave [2^p, 2^(p+1)) is split into `kSubBuckets` = 8 linear
/// sub-buckets, bounding the relative bucket width at 12.5%. At
/// microsecond resolution that makes sub-100µs loopback latencies
/// distinguishable (… 64, 72, 80, 88, 96, 104 …) where the former pure
/// power-of-two scheme lumped everything into [64, 128). Recording is
/// three relaxed fetch_adds.
class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits linear sub-buckets per octave.
  static constexpr int kSubBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Values below kExact land in their own single-value bucket.
  static constexpr int kExact = kSubBuckets;
  /// Octaves p = kSubBits..63 each contribute kSubBuckets buckets.
  static constexpr int kBuckets = loglin::NumBuckets(kSubBits);

  void Record(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[static_cast<size_t>(BucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  /// Index of the bucket `value` falls into.
  static int BucketOf(uint64_t value) {
    return loglin::BucketOf(value, kSubBits);
  }

  /// Smallest value that lands in bucket `b`.
  static uint64_t BucketLowerBound(int b) {
    return loglin::BucketLowerBound(b, kSubBits);
  }

  /// Largest value that lands in bucket `b` (inclusive; UINT64_MAX for
  /// the final bucket). This is what Prometheus `le` labels render.
  static uint64_t BucketUpperBound(int b) {
    return loglin::BucketUpperBound(b, kSubBits);
  }

  /// Upper bound (exclusive) of the bucket holding the p-th percentile
  /// (p in [0, 100]); 0 when empty. Bounded-error approximation: the
  /// true percentile lies within 12.5% below the returned bound.
  uint64_t PercentileUpperBound(double p) const;

  void Merge(const Histogram& other) {
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[static_cast<size_t>(b)].fetch_add(other.bucket_count(b),
                                                 std::memory_order_relaxed);
    }
  }

  /// Merges raw tallies taken from a snapshot: `buckets` holds (bucket
  /// lower bound, count) pairs as produced by `MetricsRegistry::Snap`.
  void MergeRaw(uint64_t count, uint64_t sum,
                const std::vector<std::pair<uint64_t, uint64_t>>& buckets) {
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    for (const auto& [lower, n] : buckets) {
      buckets_[static_cast<size_t>(BucketOf(lower))].fetch_add(
          n, std::memory_order_relaxed);
    }
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Returned pointers are stable for the registry's
  /// lifetime; the lookup takes a mutex, so cache the pointer in hot paths.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Removes one series by exact name so dynamically named metrics (the
  /// serving layer's per-view `serve.*.<query>` series) do not leak into
  /// /metrics and snapshots forever as views register and deregister.
  /// Returns true when the series existed. Removal DESTROYS the metric
  /// object: every cached pointer to it becomes dangling, so the owner of
  /// the dynamic series must drop its handles before removing, and no
  /// other thread may still be updating the series. Re-requesting the
  /// name later creates a fresh zeroed metric.
  bool RemoveCounter(std::string_view name);
  bool RemoveGauge(std::string_view name);
  bool RemoveHistogram(std::string_view name);

  /// Plain-value snapshot, safe to read while workers keep updating.
  /// `count` is derived from the bucket tallies actually read, so
  /// Σ bucket counts == count holds in every snapshot even when it races
  /// a concurrent `Record` (whose count/sum/bucket adds are three
  /// independent relaxed atomics); `sum` may be ahead of the recorded
  /// buckets by in-flight values and is only meaningful for means.
  struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (bucket lower bound, count) for non-empty buckets, ascending.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    /// Same percentile estimate as Histogram::PercentileUpperBound,
    /// computed from the sparse snapshot buckets. The single C++ home of
    /// snapshot-percentile math (run reports, /statusz, /timeseriesz,
    /// itg_serve all call this); tools/histogram_math.py is the Python
    /// mirror, kept in agreement by the histogram_agreement ctest.
    uint64_t PercentileUpperBound(double p) const;
  };
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot Snap() const;

  /// Accumulates every metric of `other` into this registry (creating
  /// same-named metrics as needed). Used to collapse per-machine meters.
  void Merge(const MetricsRegistry& other);

  /// Zeroes every registered metric (names stay registered).
  void Reset();

  /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Bounded ring of timestamped registry snapshots — the server-side
/// time series behind /timeseriesz. A sampler thread pushes periodic
/// `Snap()`s; when the ring is full the oldest sample is evicted (and
/// tallied in `evicted()`), so the ring always holds the most recent
/// `capacity()` samples. Post-hoc analysis correlates client-observed
/// tail-latency spikes with server-side queue depth / lag / stage shifts
/// at matching timestamps.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(size_t capacity);

  struct Sample {
    uint64_t t_ms = 0;  // wall clock, ms since the Unix epoch
    MetricsRegistry::Snapshot snap;
  };

  /// Appends a sample, evicting the oldest when at capacity.
  void Push(uint64_t t_ms, MetricsRegistry::Snapshot snap);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Samples dropped off the old end so far.
  uint64_t evicted() const;
  /// Copy of the ring contents, oldest first.
  std::vector<Sample> Samples() const;

  /// `{"capacity":N,"evicted":E,"interval_ms":I,"samples":[...]}`; each
  /// sample carries t_ms, counters, gauges, and per-histogram
  /// {count,sum,p50,p99} digests (full bucket arrays would dwarf the
  /// payload at sampling rates).
  std::string ToJson(uint64_t interval_ms = 0) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Sample> samples_;
  uint64_t evicted_ = 0;
};

/// The registry behind `GlobalMetrics()` — the process-wide default sink
/// exported by run reports. Defined in metrics.cc.
MetricsRegistry& GlobalRegistry();

}  // namespace itg

#endif  // ITG_COMMON_METRICS_REGISTRY_H_
