#ifndef ITG_COMMON_METRICS_REGISTRY_H_
#define ITG_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace itg {

/// Named-metric registry: counters, gauges, and log-scale histograms.
///
/// Instruments register (or look up) a metric once by name and then update
/// it lock-free; all updates are relaxed atomics, so a metric pointer can
/// be shared across the thread pool. Metric pointers are stable for the
/// lifetime of the registry unless the series is explicitly removed with
/// `RemoveCounter/RemoveGauge/RemoveHistogram` (see below).
///
/// One registry per simulated machine (owned by `Metrics`, which remains
/// the compatibility facade for the six original hard-coded counters);
/// `GlobalRegistry()` is the process-wide default that run reports export.

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed level (e.g. resident bytes, active chain length).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Monotonic raise: keeps the maximum of the current value and `v`
  /// (CAS loop, safe against concurrent SetMax). Peak-byte gauges use
  /// this so concurrent charges cannot regress the high-water mark.
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-scale (power-of-two bucket) histogram for long-tailed quantities:
/// walk lengths, Δ-batch sizes, page-read latencies. Bucket `b` counts
/// values in `[2^(b-1), 2^b)`; bucket 0 counts zeros. Recording is two
/// relaxed fetch_adds plus one for the bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  /// Index of the bucket `value` falls into.
  static int BucketOf(uint64_t value) {
    int b = 0;
    while (value != 0) {
      ++b;
      value >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Smallest value that lands in bucket `b`.
  static uint64_t BucketLowerBound(int b) {
    if (b <= 0) return 0;
    return uint64_t{1} << (b - 1);
  }

  /// Upper bound (exclusive) of the bucket holding the p-th percentile
  /// (p in [0, 100]); 0 when empty. Log-scale approximation.
  uint64_t PercentileUpperBound(double p) const;

  void Merge(const Histogram& other) {
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[static_cast<size_t>(b)].fetch_add(other.bucket_count(b),
                                                 std::memory_order_relaxed);
    }
  }

  /// Merges raw tallies taken from a snapshot: `buckets` holds (bucket
  /// lower bound, count) pairs as produced by `MetricsRegistry::Snap`.
  void MergeRaw(uint64_t count, uint64_t sum,
                const std::vector<std::pair<uint64_t, uint64_t>>& buckets) {
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
    for (const auto& [lower, n] : buckets) {
      buckets_[static_cast<size_t>(BucketOf(lower))].fetch_add(
          n, std::memory_order_relaxed);
    }
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create by name. Returned pointers are stable for the registry's
  /// lifetime; the lookup takes a mutex, so cache the pointer in hot paths.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Removes one series by exact name so dynamically named metrics (the
  /// serving layer's per-view `serve.*.<query>` series) do not leak into
  /// /metrics and snapshots forever as views register and deregister.
  /// Returns true when the series existed. Removal DESTROYS the metric
  /// object: every cached pointer to it becomes dangling, so the owner of
  /// the dynamic series must drop its handles before removing, and no
  /// other thread may still be updating the series. Re-requesting the
  /// name later creates a fresh zeroed metric.
  bool RemoveCounter(std::string_view name);
  bool RemoveGauge(std::string_view name);
  bool RemoveHistogram(std::string_view name);

  /// Plain-value snapshot, safe to read while workers keep updating.
  struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    /// (bucket lower bound, count) for non-empty buckets, ascending.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot Snap() const;

  /// Accumulates every metric of `other` into this registry (creating
  /// same-named metrics as needed). Used to collapse per-machine meters.
  void Merge(const MetricsRegistry& other);

  /// Zeroes every registered metric (names stay registered).
  void Reset();

  /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The registry behind `GlobalMetrics()` — the process-wide default sink
/// exported by run reports. Defined in metrics.cc.
MetricsRegistry& GlobalRegistry();

}  // namespace itg

#endif  // ITG_COMMON_METRICS_REGISTRY_H_
