#ifndef ITG_COMMON_CLEAN_STOP_H_
#define ITG_COMMON_CLEAN_STOP_H_

namespace itg {

/// One shutdown path for every long-running driver (`example_lnga_run
/// --watch`, `itg_serve`): InstallCleanStop() routes SIGINT/SIGTERM to
/// an async-signal-safe flag instead of the default kill, so the main
/// loop can notice CleanStopRequested(), drain in-flight work, emit its
/// final run report, and exit 0.
///
/// A second signal restores the default disposition, so a stuck drain
/// can still be killed with a repeated Ctrl-C.
void InstallCleanStop();

/// True once a SIGINT/SIGTERM arrived after InstallCleanStop().
bool CleanStopRequested();

/// Sets the flag programmatically (the serving daemon's `shutdown`
/// protocol op funnels into the same drain path as Ctrl-C). Also used
/// by tests; pass false to reset between runs.
void RequestCleanStop(bool value = true);

}  // namespace itg

#endif  // ITG_COMMON_CLEAN_STOP_H_
