#ifndef ITG_COMMON_WALL_PROFILER_H_
#define ITG_COMMON_WALL_PROFILER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace itg {

/// Cooperative sampling wall-clock profiler. While started, a sampler
/// thread walks every thread's live trace-span stack (the RAII stacks in
/// `common/trace.h`, enabled on demand via `Tracer::SetStacksEnabled`) at
/// a fixed rate and accumulates folded-stack counts — the Brendan Gregg
/// collapsed format: `thread;outer;...;inner <samples>` — answering
/// "where is wall time going" without per-event buffering or symbolizers.
///
/// The default rate is 97 Hz (prime, so it cannot phase-lock with
/// millisecond-periodic work and systematically over/under-sample one
/// span). Threads whose stack is empty at a tick contribute no sample;
/// `empty_samples()` counts ticks where *no* thread was inside a span.
///
/// Off by default. When stopped, the only residue in instrumented code is
/// one relaxed atomic load per TraceSpan construction — asserted
/// bit-identical work fingerprints in parallel_determinism_test.cc.
///
/// Exposure: the `/profilez?seconds=N` telemetry endpoint runs a timed
/// capture and renders `Render()`; `ITG_PROFILE=<path>` starts the
/// profiler at process start and writes the folded stacks to `path` at
/// exit; `tools/profile_summary.py` parses/validates either output.
class WallProfiler {
 public:
  static constexpr uint64_t kDefaultHz = 97;

  /// The process-wide profiler (leaked, like GlobalMetrics, so the
  /// ITG_PROFILE atexit flush can always reach it).
  static WallProfiler& Global();

  /// Starts the sampler thread and enables the live span stacks. No-op if
  /// already running. Accumulates into the existing folded counts; call
  /// Reset() first for a fresh capture window.
  void Start(uint64_t hz = kDefaultHz);

  /// Stops and joins the sampler and disables the live stacks. No-op if
  /// not running. Folded counts are kept for inspection.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Drops all folded counts and sample tallies.
  void Reset();

  /// Sampler ticks taken so far (across Start/Stop cycles since Reset).
  uint64_t samples() const;
  /// Ticks at which no thread was inside any span.
  uint64_t empty_samples() const;

  /// Snapshot of the folded-stack counts.
  std::map<std::string, uint64_t> Folded() const;

  /// Pure collapsed-stack lines, `stack count\n`, suitable for
  /// flamegraph.pl / speedscope.
  std::string FoldedText() const;

  /// Human-oriented report: '#'-prefixed header and top-table (leaf spans
  /// ranked by samples) followed by the folded lines — so stripping
  /// '#'-comments recovers the pure collapsed format.
  std::string Render(size_t top_n = 10) const;

 private:
  WallProfiler() = default;

  void SamplerLoop(uint64_t hz);

  // Folded data (guarded by data_mu_; the sampler writes, readers snap).
  mutable std::mutex data_mu_;
  std::map<std::string, uint64_t> folded_;
  uint64_t samples_ = 0;
  uint64_t empty_samples_ = 0;

  // Start/Stop lifecycle (serialized by lifecycle_mu_).
  std::mutex lifecycle_mu_;
  std::mutex ctl_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread sampler_;
  std::atomic<bool> running_{false};
};

}  // namespace itg

#endif  // ITG_COMMON_WALL_PROFILER_H_
