#ifndef ITG_COMMON_THREAD_POOL_H_
#define ITG_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/timed_mutex.h"

namespace itg {

class ResourceContext;

/// A small work-stealing thread pool for data-parallel BSP supersteps
/// (the paper's "evaluate non-conflicting walks in parallel", §6.2).
///
/// The pool executes *indexed task batches*: ParallelFor(n, fn) runs
/// fn(task, worker) for every task in [0, n). Tasks are dealt to
/// per-worker deques as contiguous ranges (preserving start-vertex
/// locality in the shared buffer pool); a worker that drains its own
/// deque steals single tasks from the back of the busiest victim.
///
/// The calling thread participates as worker 0, so a pool of size N uses
/// exactly N threads while a batch runs and ParallelFor(n, fn) with a
/// pool of size 1 degenerates to a plain sequential loop (no handoff, no
/// synchronization beyond the function call).
///
/// Accounting: the pool meters per-worker busy nanos (thread CPU time,
/// so time a worker spends descheduled on an oversubscribed host is not
/// billed as work) and the number of steals. `critical_nanos()`
/// accumulates, per batch, the modeled makespan on a machine with one
/// core per worker: Brent's bound `T_total/k + T_span` (span = longest
/// single task), capped at the serial time. This mirrors the repo's simulated
/// distributed-time model (DESIGN.md §2) and is what the bench harness
/// reports as thread scaling on single-core containers, where real
/// wall-clock speedup is unobservable. When a Metrics sink is attached,
/// per-worker busy nanos and steals are also pushed there after every
/// batch. The sequential fast path (pool of 1 / single task) is metered
/// into a dedicated *caller lane* (`caller_busy_nanos()`,
/// `Metrics::AddCallerCpuNanos`) rather than worker 0's meter, so inline
/// execution cannot masquerade as worker-0 skew.
///
/// Attribution: ParallelFor captures the calling thread's current
/// ResourceContext (common/resource_scope.h) and re-establishes it on
/// every worker for the batch, so per-query CPU attribution survives the
/// handoff into the pool.
///
/// ParallelFor is not reentrant and must only be called from the thread
/// that owns the pool (one in-flight batch at a time). Task functions
/// must not throw.
class ThreadPool {
 public:
  using TaskFn = std::function<void(size_t task, int worker)>;

  /// Creates a pool of `num_threads` workers total (spawns
  /// `num_threads - 1` OS threads; the caller is worker 0). `metrics`,
  /// when non-null, receives per-thread CPU nanos and steal counts.
  explicit ThreadPool(int num_threads, Metrics* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(task, worker) for every task in [0, num_tasks); blocks
  /// until all tasks have finished.
  void ParallelFor(size_t num_tasks, const TaskFn& fn);

  int num_threads() const { return num_threads_; }

  /// Total tasks stolen (claimed from another worker's deque) so far.
  uint64_t steals() const { return steals_; }
  /// Cumulative busy (thread-CPU) nanos of worker `w` across batches.
  uint64_t busy_nanos(int w) const { return busy_nanos_[static_cast<size_t>(w)]; }
  /// Busy nanos executed inline on the calling thread by the sequential
  /// fast path (pool of 1, or a single task). Kept out of the per-worker
  /// lanes: worker 0's meter reflects only its share of real parallel
  /// batches, so busy-meter skew analysis is not polluted by inline runs.
  uint64_t caller_busy_nanos() const { return caller_busy_nanos_; }
  /// Cumulative busy nanos summed over all workers plus the caller lane.
  uint64_t total_busy_nanos() const;
  /// Sum over batches of the modeled per-batch makespan (Brent's bound
  /// `total/k + longest task`, capped at total): the wall time of the
  /// parallel sections had each worker owned a core.
  uint64_t critical_nanos() const { return critical_nanos_; }

  /// Default worker count: the ITG_THREADS environment variable if set
  /// to a positive integer, else std::thread::hardware_concurrency(),
  /// clamped to Metrics::kMaxTrackedThreads.
  static int DefaultThreads();

 private:
  struct WorkerQueue {
    // Timed so deal/steal contention shows up as
    // `contention.pool.queue.wait_us` in /metrics.
    TimedMutex mu{"pool.queue"};
    std::deque<size_t> tasks;
  };

  void WorkerLoop(int w);
  /// Drains tasks (own deque first, then stealing) for the current
  /// batch; returns when no claimable task remains.
  void RunTasks(int w);
  bool PopOwn(int w, size_t* task);
  bool StealTask(int w, size_t* task);

  int num_threads_ = 1;
  Metrics* metrics_ = nullptr;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // Epoch/barrier mutex; timed (`contention.pool.barrier.wait_us`), so
  // the condition variables must be the _any flavor.
  TimedMutex mu_{"pool.barrier"};
  std::condition_variable_any wake_cv_;
  std::condition_variable_any done_cv_;
  uint64_t epoch_ = 0;
  bool stop_ = false;

  const TaskFn* fn_ = nullptr;
  // The caller's resource context at ParallelFor entry, re-established on
  // every worker for the batch so worker CPU (and any page reads or
  // allocations inside tasks) is charged to the scheduling query. Written
  // by the caller before the epoch bump, read by workers after observing
  // the new epoch.
  ResourceContext* batch_ctx_ = nullptr;
  // Workers that have finished draining the current batch (guarded by
  // mu_); the batch barrier is drained_ == num_threads_, so no straggler
  // can ever observe the next batch's queues or task function.
  int drained_ = 0;
  std::atomic<uint64_t> steals_{0};

  // Per-batch busy nanos and longest single task (slot per worker;
  // written by that worker only, read by the caller after the batch
  // completes).
  std::vector<uint64_t> batch_busy_;
  std::vector<uint64_t> batch_longest_;
  // Cumulative counters, updated by the caller between batches.
  std::vector<uint64_t> busy_nanos_;
  uint64_t caller_busy_nanos_ = 0;
  uint64_t critical_nanos_ = 0;
};

}  // namespace itg

#endif  // ITG_COMMON_THREAD_POOL_H_
