#include "common/stall_watchdog.h"

#include <chrono>
#include <string>

#include "common/alert_engine.h"
#include "common/flight_recorder.h"
#include "common/live_status.h"
#include "common/logging.h"
#include "common/metrics_registry.h"

namespace itg {

void StallWatchdog::Start(const Options& options) {
  Stop();
  options_ = options;
  stop_.store(false, std::memory_order_relaxed);
  stalled_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      CheckOnce();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.poll_ms));
    }
  });
}

void StallWatchdog::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  thread_.join();
  running_.store(false, std::memory_order_relaxed);
  stalled_.store(false, std::memory_order_relaxed);
}

void StallWatchdog::CheckOnce() {
  FlightRecorder::Global().PollSignalDump();
  if (options_.deadline_ms == 0) return;

  LiveStatus& status = GlobalLiveStatus();
  if (!status.in_superstep()) {
    stalled_.store(false, std::memory_order_relaxed);
    return;
  }
  const uint64_t start = status.superstep_start_nanos();
  const uint64_t now = LiveStatus::NowNanos();
  const uint64_t age_nanos = now > start ? now - start : 0;
  if (age_nanos <= options_.deadline_ms * 1'000'000ull) {
    stalled_.store(false, std::memory_order_relaxed);
    return;
  }

  stalled_.store(true, std::memory_order_relaxed);
  const uint64_t epoch = status.progress_epoch();
  if (epoch == tripped_epoch_) return;  // already reported this stall
  tripped_epoch_ = epoch;
  trips_.fetch_add(1, std::memory_order_relaxed);
  GlobalRegistry().counter("watchdog.stalls_total")->Increment();
  LiveStatus::Snapshot snap = status.Snap();
  ITG_LOG(Warn) << "stall watchdog tripped: superstep " << snap.superstep
                << " of " << snap.phase << " t=" << snap.timestamp
                << " open for " << age_nanos / 1'000'000 << "ms (deadline "
                << options_.deadline_ms << "ms), query='" << snap.query
                << "'";
  FlightRecorder::Global().DumpToLog("stall watchdog", /*force=*/true);
  // A trip is an incident: capture the full black box (flight recorder,
  // metrics, statusz, timeseries, profile) when a reporter is
  // configured. No-op otherwise — the log dump above always happens.
  IncidentReporter::Global().Capture(
      "watchdog_stall", "critical",
      "superstep " + std::to_string(snap.superstep) + " of " + snap.phase +
          " open for " + std::to_string(age_nanos / 1'000'000) +
          "ms (deadline " + std::to_string(options_.deadline_ms) +
          "ms), query='" + snap.query + "'");
}

}  // namespace itg
