// Order-independent 64-bit state digests (correctness observability).
//
// The incremental engine's invariant is Q(G ∪ ΔG) = Q(G) ∪ ΔQ; a digest
// of the attribute state after every timestamp makes that invariant
// *observable*: two engines hold the same state iff their digests match
// (modulo 64-bit collisions). The combine is a wrapping sum of per-vertex
// hashes — commutative and associative — so the digest is bit-identical
// no matter which thread, partition or iteration order produced the
// cells. The per-cell hash mixes the vertex id, the element index and
// the raw IEEE-754 bit pattern of the value, so +0.0 vs -0.0 or any
// last-ulp drift changes the digest.
#ifndef ITG_COMMON_DIGEST_H_
#define ITG_COMMON_DIGEST_H_

#include <cstdint>
#include <cstring>

namespace itg {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash of one attribute cell: (vertex, element index, value bits).
inline uint64_t HashCell(int64_t vertex, int element, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  uint64_t h = Mix64(static_cast<uint64_t>(vertex));
  h = Mix64(h ^ (static_cast<uint64_t>(element) + 0x632be59bd9b4e019ull));
  return Mix64(h ^ bits);
}

/// Digest of one dense column (`width` doubles per vertex, row-major).
/// Per-vertex hashes combine by wrapping addition, so any enumeration
/// order over the vertices yields the same digest.
inline uint64_t ColumnDigest(const double* data, int64_t num_vertices,
                             int width) {
  uint64_t sum = 0;
  for (int64_t v = 0; v < num_vertices; ++v) {
    const double* cell = data + static_cast<size_t>(v) * width;
    uint64_t h = 0;
    for (int i = 0; i < width; ++i) {
      h ^= HashCell(v, i, cell[i]);
    }
    sum += h;
  }
  return sum;
}

/// Folds one named column digest into a combined state digest. Mixing in
/// a per-attribute salt keeps two attributes with swapped columns from
/// colliding; the fold itself is a wrapping add so the attribute
/// iteration order does not matter either.
inline uint64_t CombineColumnDigest(uint64_t combined, int attr_salt,
                                    uint64_t column_digest) {
  return combined +
         Mix64(column_digest ^ Mix64(static_cast<uint64_t>(attr_salt)));
}

}  // namespace itg

#endif  // ITG_COMMON_DIGEST_H_
