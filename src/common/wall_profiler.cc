#include "common/wall_profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace itg {

WallProfiler& WallProfiler::Global() {
  static WallProfiler* p = new WallProfiler();
  return *p;
}

void WallProfiler::Start(uint64_t hz) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> ctl(ctl_mu_);
    stop_ = false;
  }
  // Spans begun from here on push onto the live stacks; spans already
  // in flight are invisible until their next instance — acceptable for a
  // sampler, and the price of a truly zero-cost disabled path.
  Tracer::SetStacksEnabled(true);
  running_.store(true, std::memory_order_relaxed);
  sampler_ = std::thread([this, hz] { SamplerLoop(hz); });
}

void WallProfiler::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> ctl(ctl_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  sampler_.join();
  Tracer::SetStacksEnabled(false);
  running_.store(false, std::memory_order_relaxed);
}

void WallProfiler::Reset() {
  std::lock_guard<std::mutex> data(data_mu_);
  folded_.clear();
  samples_ = 0;
  empty_samples_ = 0;
}

uint64_t WallProfiler::samples() const {
  std::lock_guard<std::mutex> data(data_mu_);
  return samples_;
}

uint64_t WallProfiler::empty_samples() const {
  std::lock_guard<std::mutex> data(data_mu_);
  return empty_samples_;
}

std::map<std::string, uint64_t> WallProfiler::Folded() const {
  std::lock_guard<std::mutex> data(data_mu_);
  return folded_;
}

void WallProfiler::SamplerLoop(uint64_t hz) {
  Tracer::SetThreadName("itg-profiler");
  const auto period =
      std::chrono::nanoseconds(1000000000ull / std::max<uint64_t>(1, hz));
  std::unique_lock<std::mutex> ctl(ctl_mu_);
  while (true) {
    if (cv_.wait_for(ctl, period, [&] { return stop_; })) return;
    ctl.unlock();
    std::vector<std::string> stacks = Tracer::SampleLiveStacks();
    {
      std::lock_guard<std::mutex> data(data_mu_);
      ++samples_;
      if (stacks.empty()) ++empty_samples_;
      for (std::string& s : stacks) ++folded_[std::move(s)];
    }
    ctl.lock();
  }
}

std::string WallProfiler::FoldedText() const {
  std::string out;
  std::lock_guard<std::mutex> data(data_mu_);
  for (const auto& [stack, count] : folded_) {
    out.append(stack);
    out.push_back(' ');
    out.append(std::to_string(count));
    out.push_back('\n');
  }
  return out;
}

std::string WallProfiler::Render(size_t top_n) const {
  std::map<std::string, uint64_t> folded;
  uint64_t samples = 0;
  uint64_t empty = 0;
  {
    std::lock_guard<std::mutex> data(data_mu_);
    folded = folded_;
    samples = samples_;
    empty = empty_samples_;
  }
  uint64_t stack_samples = 0;
  // Rank leaf frames (the innermost span of each folded stack): where
  // threads were actually executing when sampled.
  std::map<std::string, uint64_t> leaves;
  for (const auto& [stack, count] : folded) {
    stack_samples += count;
    const size_t semi = stack.rfind(';');
    leaves[semi == std::string::npos ? stack : stack.substr(semi + 1)] +=
        count;
  }
  std::vector<std::pair<std::string, uint64_t>> top(leaves.begin(),
                                                    leaves.end());
  std::sort(top.begin(), top.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (top.size() > top_n) top.resize(top_n);

  std::string out;
  out.append("# itg wall profile: ticks=" + std::to_string(samples) +
             " stack_samples=" + std::to_string(stack_samples) +
             " empty_ticks=" + std::to_string(empty) +
             " stacks=" + std::to_string(folded.size()) + "\n");
  out.append("# top spans (leaf frame, by samples):\n");
  for (const auto& [leaf, count] : top) {
    const double pct =
        stack_samples == 0
            ? 0.0
            : 100.0 * static_cast<double>(count) /
                  static_cast<double>(stack_samples);
    char line[256];
    std::snprintf(line, sizeof(line), "# %6.2f%% %8llu  %s\n", pct,
                  static_cast<unsigned long long>(count), leaf.c_str());
    out.append(line);
  }
  for (const auto& [stack, count] : folded) {
    out.append(stack);
    out.push_back(' ');
    out.append(std::to_string(count));
    out.push_back('\n');
  }
  return out;
}

namespace {

const std::string& ProfileEnvPath() {
  static const std::string* path = [] {
    const char* env = std::getenv("ITG_PROFILE");
    return new std::string(env == nullptr ? "" : env);
  }();
  return *path;
}

void FlushEnvProfileAtExit() {
  WallProfiler& prof = WallProfiler::Global();
  prof.Stop();
  const std::string& path = ProfileEnvPath();
  const std::string out = prof.Render();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  bool ok = f != nullptr;
  if (ok) {
    ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    ok = (std::fclose(f) == 0) && ok;
  }
  if (!ok) {
    std::fprintf(stderr, "[itg] failed to write ITG_PROFILE file %s\n",
                 path.c_str());
  }
}

// Starts the profiler at startup when ITG_PROFILE names an output path;
// with the variable unset this entire translation unit stays inert.
struct ProfileEnvInit {
  ProfileEnvInit() {
    if (!ProfileEnvPath().empty()) {
      WallProfiler::Global().Start();
      std::atexit(FlushEnvProfileAtExit);
    }
  }
};
ProfileEnvInit g_profile_env_init;

}  // namespace

}  // namespace itg
