#include "common/latency_recorder.h"

namespace itg {

void LatencyRecorder::RecordWithExpectedInterval(
    uint64_t micros, uint64_t expected_interval_micros) {
  Record(micros);
  if (expected_interval_micros == 0) return;
  // Back-fill the samples a coordinated-omission stall suppressed: had
  // the caller kept its cadence, it would also have observed latencies
  // of micros - k*interval for each missed slot.
  for (uint64_t v = micros; v > expected_interval_micros;) {
    v -= expected_interval_micros;
    Record(v);
  }
}

uint64_t LatencyRecorder::PercentileUpperBound(double p) const {
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) total += bucket_count(b);
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen > rank) {
      if (b + 1 >= kBuckets) return ~uint64_t{0};
      return BucketLowerBound(b + 1);
    }
  }
  return ~uint64_t{0};
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const uint64_t omax = other.max();
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (omax > cur && !max_.compare_exchange_weak(
                           cur, omax, std::memory_order_relaxed)) {
  }
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<size_t>(b)].fetch_add(other.bucket_count(b),
                                               std::memory_order_relaxed);
  }
}

void LatencyRecorder::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

LatencyRecorder::Snapshot LatencyRecorder::Snap() const {
  Snapshot snap;
  // One pass over the live buckets; percentiles are then computed from
  // the frozen copy so they cannot shear against concurrent records.
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t n = bucket_count(b);
    if (n != 0) {
      snap.buckets.emplace_back(BucketLowerBound(b), n);
      snap.count += n;
    }
  }
  snap.sum = sum();
  snap.max = max();
  if (snap.count == 0) return snap;
  auto pct = [&snap](double p) -> uint64_t {
    uint64_t rank =
        static_cast<uint64_t>(p / 100.0 * static_cast<double>(snap.count));
    if (rank >= snap.count) rank = snap.count - 1;
    uint64_t seen = 0;
    for (const auto& [lower, n] : snap.buckets) {
      seen += n;
      if (seen > rank) {
        const int b = BucketOf(lower);
        if (b + 1 >= kBuckets) return ~uint64_t{0};
        return BucketLowerBound(b + 1);
      }
    }
    return ~uint64_t{0};
  };
  snap.p50 = pct(50);
  snap.p90 = pct(90);
  snap.p99 = pct(99);
  snap.p999 = pct(99.9);
  return snap;
}

}  // namespace itg
