#ifndef ITG_COMMON_MEMORY_BUDGET_H_
#define ITG_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace itg {

/// Tracks logical memory consumption against a hard budget. The
/// Differential-Dataflow-style baseline charges every arrangement byte to
/// one of these; exceeding the budget turns into the OOM failures the
/// paper marks with "O" in Figures 12 and 13.
///
/// A budget of 0 means unlimited.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  /// Charges `n` bytes. Returns OutOfMemory if the budget would be
  /// exceeded (the charge is still recorded so callers can report usage).
  Status Charge(uint64_t n) {
    uint64_t used = used_bytes_.fetch_add(n) + n;
    if (used > peak_bytes_.load()) peak_bytes_.store(used);
    if (budget_bytes_ != 0 && used > budget_bytes_) {
      return Status::OutOfMemory("memory budget exceeded: used " +
                                 std::to_string(used) + "B of " +
                                 std::to_string(budget_bytes_) + "B");
    }
    return Status::OK();
  }

  void Release(uint64_t n) { used_bytes_ -= n; }

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t peak_bytes() const { return peak_bytes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }

  void Reset() {
    used_bytes_ = 0;
    peak_bytes_ = 0;
  }

 private:
  uint64_t budget_bytes_;
  std::atomic<uint64_t> used_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
};

}  // namespace itg

#endif  // ITG_COMMON_MEMORY_BUDGET_H_
