#ifndef ITG_COMMON_MEMORY_BUDGET_H_
#define ITG_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/metrics_registry.h"
#include "common/resource_scope.h"
#include "common/status.h"

namespace itg {

/// Mirrors one structure's resident bytes into a registry gauge pair:
/// `mem.<name>.bytes` (current) and `mem.<name>.peak_bytes` (sticky
/// high-water mark). Unbound instances are no-ops, so instrumented
/// structures work without a metrics registry (unit tests, detached
/// stores). Multiple instances bound to the same name aggregate through
/// Add() deltas (e.g. the per-machine buffer pools of the distributed
/// simulation all feed `mem.buffer_pool.bytes`).
class ByteGauge {
 public:
  ByteGauge() = default;

  void Bind(MetricsRegistry* registry, const std::string& name) {
    if (registry == nullptr) return;
    cur_ = registry->gauge("mem." + name + ".bytes");
    peak_ = registry->gauge("mem." + name + ".peak_bytes");
  }

  bool bound() const { return cur_ != nullptr; }

  void Set(int64_t bytes) {
    if (cur_ == nullptr) return;
    cur_->Set(bytes);
    peak_->SetMax(bytes);
  }

  void Add(int64_t delta) {
    if (cur_ == nullptr) return;
    cur_->Add(delta);
    peak_->SetMax(cur_->value());
  }

  int64_t value() const { return cur_ != nullptr ? cur_->value() : 0; }

 private:
  Gauge* cur_ = nullptr;
  Gauge* peak_ = nullptr;
};

/// Tracks logical memory consumption against a hard budget. The
/// Differential-Dataflow-style baseline charges every arrangement byte to
/// one of these; exceeding the budget turns into the OOM failures the
/// paper marks with "O" in Figures 12 and 13.
///
/// Thread-safe: Charge/Release are called concurrently from pool workers,
/// so the used counter is a relaxed atomic and the peak is maintained
/// with a CAS-max loop (a plain load/store pair would let a slow writer
/// regress the high-water mark). A budget of 0 means unlimited.
///
/// Optionally registry-backed: BindGauges mirrors used/peak into named
/// gauges so live telemetry (/metrics) and run reports see the budget
/// without polling the object.
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  /// Mirrors used/peak bytes into `mem.<name>.bytes` /
  /// `mem.<name>.peak_bytes` of `registry` from now on.
  void BindGauges(MetricsRegistry* registry, const std::string& name) {
    gauge_.Bind(registry, name);
    gauge_.Set(static_cast<int64_t>(used_bytes()));
  }

  /// Charges `n` bytes. Returns OutOfMemory if the budget would be
  /// exceeded (the charge is still recorded so callers can report usage).
  /// Also attributes the allocation to the calling thread's current
  /// ResourceContext (`resource.<ctx>.bytes_alloc`, cumulative — releases
  /// are not subtracted: attribution answers "who allocated", while the
  /// budget's own used/peak track the net level).
  Status Charge(uint64_t n) {
    ChargeCurrentBytesAlloc(n);
    uint64_t used = used_bytes_.fetch_add(n, std::memory_order_relaxed) + n;
    uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (used > peak &&
           !peak_bytes_.compare_exchange_weak(peak, used,
                                              std::memory_order_relaxed)) {
    }
    gauge_.Set(static_cast<int64_t>(used));
    if (budget_bytes_ != 0 && used > budget_bytes_) {
      return Status::OutOfMemory("memory budget exceeded: used " +
                                 std::to_string(used) + "B of " +
                                 std::to_string(budget_bytes_) + "B");
    }
    return Status::OK();
  }

  void Release(uint64_t n) {
    uint64_t used = used_bytes_.fetch_sub(n, std::memory_order_relaxed) - n;
    gauge_.Set(static_cast<int64_t>(used));
  }

  uint64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t budget_bytes() const { return budget_bytes_; }

  void Reset() {
    used_bytes_.store(0, std::memory_order_relaxed);
    peak_bytes_.store(0, std::memory_order_relaxed);
    gauge_.Set(0);
  }

 private:
  uint64_t budget_bytes_;
  std::atomic<uint64_t> used_bytes_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  ByteGauge gauge_;
};

}  // namespace itg

#endif  // ITG_COMMON_MEMORY_BUDGET_H_
