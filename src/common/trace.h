#ifndef ITG_COMMON_TRACE_H_
#define ITG_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace itg {

// Span tracer with lossless export to the Chrome trace-event JSON format
// (loadable in chrome://tracing and https://ui.perfetto.dev).
//
// Spans are recorded through the RAII `TraceSpan` type into per-thread
// buffers; point-in-time markers (thread-pool steals/parks) go through
// `TraceInstant`; cross-thread flows (the serving layer's per-batch
// ingest->notify waterfall) go through `TraceFlowBegin/Step/End`.
// Recording is gated on a single process-wide atomic flag:
// when tracing is disabled the constructor is one relaxed load and no
// allocation or clock read happens, so instrumentation can stay in hot
// paths unconditionally.
//
// Setting `ITG_TRACE=<path>` in the environment enables the tracer at
// startup and writes the JSON file at process exit. Tests and tools can
// instead drive the Enable/Disable/WriteTo API directly.
//
// Independently of buffered recording, the same TraceSpan RAII points can
// maintain a *live* per-thread span stack (`Tracer::SetStacksEnabled`)
// that the sampling wall-profiler (`common/wall_profiler.h`) walks at
// ~97 Hz to produce folded stacks without any per-event buffering.
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer); buffers store the pointers, not copies.

namespace internal_trace {

struct TraceEvent {
  const char* name;
  const char* cat;
  uint64_t ts_nanos;   // since tracer epoch
  uint64_t dur_nanos;  // 0 for instant events
  int64_t arg;
  char phase;  // 'X' complete span, 'i' instant, 's'/'t'/'f' flow
  bool has_arg;
  uint64_t flow_id = 0;  // correlates 's'/'t'/'f' events across threads
};

extern std::atomic<bool> g_enabled;
// Set while the FlightRecorder is capturing: spans are recorded through
// the same instrumentation points, but routed to the bounded ring instead
// of (or in addition to) the per-thread buffers.
extern std::atomic<bool> g_flight;
// Set while the wall-clock sampling profiler is attached: TraceSpan then
// also maintains a live per-thread span *stack* (fixed-depth array of
// name pointers) that Tracer::SampleLiveStacks() can walk from the
// sampler thread without stopping the workers.
extern std::atomic<bool> g_stacks;

// Push/pop the calling thread's live span stack. Single-writer (the
// owning thread); frames beyond the fixed depth are counted but not
// stored, so pushes and pops always balance.
void PushLiveSpan(const char* name);
void PopLiveSpan();

uint64_t NowNanos();
// `force_buffer` records into the per-thread buffers even when buffered
// tracing is off — used for the end of a span whose begin was observed
// while tracing was on, so disable-mid-span never corrupts nesting.
void Emit(const TraceEvent& event, bool force_buffer = false);

}  // namespace internal_trace

class Tracer {
 public:
  // Sentinel for "no argument attached to this event".
  static constexpr int64_t kNoArg = INT64_MIN;

  // A buffered event, resolved for inspection by tests and the writer.
  struct CollectedEvent {
    std::string name;
    std::string cat;
    uint64_t ts_nanos = 0;
    uint64_t dur_nanos = 0;
    int64_t arg = 0;
    bool has_arg = false;
    int tid = 0;
    char phase = 'X';
    uint64_t flow_id = 0;
  };

  static bool enabled() {
    return internal_trace::g_enabled.load(std::memory_order_relaxed);
  }

  // True when spans should be recorded at all: buffered tracing is on OR
  // the flight recorder is capturing. The RAII gates check this, so the
  // flight recorder works without unbounded buffering.
  static bool recording() {
    return internal_trace::g_enabled.load(std::memory_order_relaxed) ||
           internal_trace::g_flight.load(std::memory_order_relaxed);
  }

  // True while the sampling wall-profiler is attached: spans then also
  // push their name onto a live per-thread stack (two relaxed stores) so
  // the sampler can observe where every thread is *right now*. Off by
  // default; when off the TraceSpan constructor stays one relaxed load
  // per gate and touches no memory.
  static bool stacks_enabled() {
    return internal_trace::g_stacks.load(std::memory_order_relaxed);
  }
  static void SetStacksEnabled(bool on);

  // One folded stack per thread whose live stack is non-empty, formatted
  // "thread;outer;...;inner" (Brendan Gregg collapsed-stack frames). The
  // walk is cooperative and lock-light: a racing push/pop can tear a
  // sample (one frame off), never crash — frames are static string
  // literals and the depth is published with release/acquire ordering.
  static std::vector<std::string> SampleLiveStacks();

  // Depth of the calling thread's live span stack (test hook for the
  // zero-overhead-when-disabled assertion).
  static int LiveStackDepth();

  // Starts/stops recording. Disable keeps already-buffered events so they
  // can still be inspected or written.
  static void Enable();
  static void Disable();

  // Drops all buffered events (thread registrations are kept) and zeroes
  // the dropped-span counter.
  static void Reset();

  // Total number of buffered events across all threads.
  static size_t event_count();

  // Spans discarded because a per-thread buffer hit its capacity. Also
  // exported as the top-level "droppedSpans" field of the trace JSON and
  // mirrored into the `trace.spans_dropped` counter of GlobalRegistry().
  static uint64_t dropped_count();

  // Caps each per-thread event buffer (default kDefaultMaxEventsPerThread;
  // 0 restores the default). Events past the cap are counted as dropped
  // instead of growing the buffer without bound. Test hook + safety valve
  // for long --watch runs with tracing left on.
  static constexpr size_t kDefaultMaxEventsPerThread = 1u << 20;
  static void set_max_events_per_thread(size_t cap);
  static size_t max_events_per_thread();

  // Snapshot of all buffered events, ordered by (tid, ts).
  static std::vector<CollectedEvent> Collect();

  // Serializes buffered events as Chrome trace-event JSON.
  static std::string ToJson();
  static Status WriteTo(const std::string& path);

  // Names the calling thread in the exported trace (metadata event).
  static void SetThreadName(const std::string& name);

  // The path from ITG_TRACE, or empty if the env var is unset.
  static const std::string& env_path();
};

// RAII scoped span. Records one complete ("X") event covering the
// constructor-to-destructor interval on the current thread.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "engine",
                     int64_t arg = Tracer::kNoArg) {
    const bool record = Tracer::recording();
    const bool push = Tracer::stacks_enabled();
    if (record || push) Begin(name, cat, arg, record, push);
  }
  ~TraceSpan() {
    if (name_ != nullptr || pushed_) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name, const char* cat, int64_t arg, bool record,
             bool push);
  void End();

  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int64_t arg_ = 0;
  uint64_t t0_ = 0;
  bool buffered_ = false;  // buffered tracing was on when the span began
  // The span pushed onto the live stack, so it must pop — tracked
  // separately from name_ so toggling the profiler mid-span can neither
  // leak a frame nor pop one it never pushed.
  bool pushed_ = false;
};

// Point-in-time marker (an "i" instant event).
inline void TraceInstant(const char* name, const char* cat = "engine",
                         int64_t arg = Tracer::kNoArg) {
  if (!Tracer::recording()) return;
  internal_trace::Emit({name, cat, internal_trace::NowNanos(), 0, arg, 'i',
                        arg != Tracer::kNoArg});
}

// Flow events ('s' start, 't' step, 'f' finish) draw arrows between the
// slices that enclose them in the Chrome trace viewer / Perfetto, linking
// work for one logical item across threads. All events sharing `flow_id`
// form one flow; the serving layer uses the Δ-batch trace id so the
// ingest -> queue -> apply -> view run -> stream flush lifecycle renders
// as a per-batch waterfall. Like spans, `name`/`cat` must be string
// literals. Each flow event binds to the innermost enclosing span on its
// thread, so emit them inside the stage's TraceSpan.
inline void TraceFlowBegin(const char* name, const char* cat,
                           uint64_t flow_id) {
  if (!Tracer::recording()) return;
  internal_trace::Emit({name, cat, internal_trace::NowNanos(), 0,
                        Tracer::kNoArg, 's', false, flow_id});
}

inline void TraceFlowStep(const char* name, const char* cat,
                          uint64_t flow_id) {
  if (!Tracer::recording()) return;
  internal_trace::Emit({name, cat, internal_trace::NowNanos(), 0,
                        Tracer::kNoArg, 't', false, flow_id});
}

inline void TraceFlowEnd(const char* name, const char* cat,
                         uint64_t flow_id) {
  if (!Tracer::recording()) return;
  internal_trace::Emit({name, cat, internal_trace::NowNanos(), 0,
                        Tracer::kNoArg, 'f', false, flow_id});
}

// Records a complete event with an explicit start and duration. Used where
// a phase's time is accumulated rather than contiguous (e.g. the sequential
// walk path fuses Accumulate into the emission sink, so its span is the sum
// of sink invocations, anchored at the job start).
inline void TraceCompleteEvent(const char* name, const char* cat,
                               uint64_t ts_nanos, uint64_t dur_nanos,
                               int64_t arg = Tracer::kNoArg) {
  if (!Tracer::recording()) return;
  internal_trace::Emit({name, cat, ts_nanos, dur_nanos, arg, 'X',
                        arg != Tracer::kNoArg});
}

// Nanoseconds since the tracer epoch; pairs with TraceCompleteEvent.
inline uint64_t TraceNowNanos() { return internal_trace::NowNanos(); }

}  // namespace itg

#endif  // ITG_COMMON_TRACE_H_
