#include "common/clean_stop.h"

#include <csignal>

#include <atomic>

namespace itg {

namespace {

std::atomic<bool> g_stop_requested{false};

// Signal handler: only async-signal-safe operations. The second
// delivery re-arms the default disposition so an operator can always
// escalate past a wedged drain.
void HandleStopSignal(int signo) {
  g_stop_requested.store(true, std::memory_order_relaxed);
  std::signal(signo, SIG_DFL);
}

}  // namespace

void InstallCleanStop() {
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
}

bool CleanStopRequested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

void RequestCleanStop(bool value) {
  g_stop_requested.store(value, std::memory_order_relaxed);
}

}  // namespace itg
