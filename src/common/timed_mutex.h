#ifndef ITG_COMMON_TIMED_MUTEX_H_
#define ITG_COMMON_TIMED_MUTEX_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/metrics_registry.h"

namespace itg {

/// A drop-in std::mutex replacement that makes lock contention visible:
/// every *contended* acquisition (the uncontended try_lock fast path wins
/// → nothing is recorded) times the wall-clock wait and records it, in
/// microseconds, into a `contention.<site>.wait_us` log-linear histogram.
/// The histogram count is therefore "contended acquisitions" and the sum
/// is total lock-wait time at that site — the cross-query interference
/// signal the ROADMAP's MVCC multi-query work needs on day one.
///
/// BasicLockable, so it composes with std::lock_guard / std::unique_lock;
/// mutexes paired with condition variables must use
/// std::condition_variable_any (the wait-side relock then also counts as
/// a contended acquisition when it has to queue, which is exactly the
/// wakeup-herd signal one wants to see).
///
/// Instrumented sites:
///   contention.pool.queue         per-worker deque mutexes (deal/steal)
///   contention.pool.barrier       thread-pool epoch/barrier mutex
///   contention.buffer_pool        shared page-cache mutex
///   contention.serve.ingest_queue serving-layer bounded ingest queue
class TimedMutex {
 public:
  /// `site` names the series; the histogram lives in `registry`
  /// (`GlobalRegistry()` when null) and must outlive the mutex.
  explicit TimedMutex(const std::string& site,
                      MetricsRegistry* registry = nullptr)
      : wait_us_((registry != nullptr ? *registry : GlobalRegistry())
                     .histogram("contention." + site + ".wait_us")) {}

  TimedMutex(const TimedMutex&) = delete;
  TimedMutex& operator=(const TimedMutex&) = delete;

  void lock() {
    if (mu_.try_lock()) return;
    const auto t0 = std::chrono::steady_clock::now();
    mu_.lock();
    const auto waited = std::chrono::steady_clock::now() - t0;
    wait_us_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(waited)
            .count()));
  }

  bool try_lock() { return mu_.try_lock(); }

  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  Histogram* wait_us_;
};

}  // namespace itg

#endif  // ITG_COMMON_TIMED_MUTEX_H_
