#include "storage/edge_delta_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace itg {

Status EdgeDeltaStore::ApplyBatch(Timestamp t,
                                  const std::vector<EdgeDelta>& batch) {
  TraceSpan span("delta_apply_batch", "storage",
                 static_cast<int64_t>(batch.size()));
  if (t != latest_ + 1) {
    return Status::InvalidArgument("mutation batches must be consecutive");
  }
  Segment out_seg;
  ITG_RETURN_IF_ERROR(BuildSegment(batch, &out_seg));
  std::vector<EdgeDelta> reversed;
  reversed.reserve(batch.size());
  for (const EdgeDelta& d : batch) {
    reversed.push_back({{d.edge.dst, d.edge.src}, d.mult});
  }
  Segment in_seg;
  ITG_RETURN_IF_ERROR(BuildSegment(reversed, &in_seg));
  mem_gauge_.Add(
      static_cast<int64_t>(SegmentBytes(out_seg) + SegmentBytes(in_seg)));
  out_segments_.emplace(t, std::move(out_seg));
  in_segments_.emplace(t, std::move(in_seg));
  batch_sizes_[t] = batch.size();
  latest_ = t;
  return Status::OK();
}

Status EdgeDeltaStore::BuildSegment(const std::vector<EdgeDelta>& deltas,
                                    Segment* seg) {
  std::vector<EdgeDelta> sorted = deltas;
  std::sort(sorted.begin(), sorted.end(),
            [](const EdgeDelta& a, const EdgeDelta& b) {
              if (a.edge.src != b.edge.src) return a.edge.src < b.edge.src;
              if (a.edge.dst != b.edge.dst) return a.edge.dst < b.edge.dst;
              return a.mult < b.mult;
            });
  DiskArrayBuilder<VertexId> dst_builder(store_);
  DiskArrayBuilder<int8_t> mult_builder(store_);
  seg->ranges.push_back(0);
  int64_t count = 0;
  for (const EdgeDelta& d : sorted) {
    if (seg->srcs.empty() || seg->srcs.back() != d.edge.src) {
      if (!seg->srcs.empty()) seg->ranges.push_back(count);
      seg->srcs.push_back(d.edge.src);
    }
    ITG_RETURN_IF_ERROR(dst_builder.Append(d.edge.dst));
    ITG_RETURN_IF_ERROR(mult_builder.Append(d.mult));
    ++count;
  }
  if (!seg->srcs.empty()) seg->ranges.push_back(count);
  ITG_ASSIGN_OR_RETURN(seg->dsts, dst_builder.Finish());
  ITG_ASSIGN_OR_RETURN(seg->mults, mult_builder.Finish());
  return Status::OK();
}

Status EdgeDeltaStore::ForEachDelta(
    BufferPool* pool, Timestamp t, Direction d,
    const std::function<void(Edge, Multiplicity)>& fn) const {
  const auto& segments = (d == Direction::kOut) ? out_segments_ : in_segments_;
  auto it = segments.find(t);
  if (it == segments.end()) return Status::OK();
  const Segment& seg = it->second;
  for (size_t i = 0; i < seg.srcs.size(); ++i) {
    int64_t begin = seg.ranges[i];
    int64_t end = seg.ranges[i + 1];
    std::vector<VertexId> dsts(static_cast<size_t>(end - begin));
    std::vector<int8_t> mults(static_cast<size_t>(end - begin));
    ITG_RETURN_IF_ERROR(seg.dsts.Read(pool, static_cast<size_t>(begin),
                                      dsts.size(), dsts.data()));
    ITG_RETURN_IF_ERROR(seg.mults.Read(pool, static_cast<size_t>(begin),
                                       mults.size(), mults.data()));
    for (size_t j = 0; j < dsts.size(); ++j) {
      fn({seg.srcs[i], dsts[j]}, mults[j]);
    }
  }
  return Status::OK();
}

Status EdgeDeltaStore::GetDeltaAdjacency(
    BufferPool* pool, Timestamp t, VertexId u, Direction d,
    std::vector<std::pair<VertexId, Multiplicity>>* out) const {
  out->clear();
  const auto& segments = (d == Direction::kOut) ? out_segments_ : in_segments_;
  auto it = segments.find(t);
  if (it == segments.end()) return Status::OK();
  const Segment& seg = it->second;
  auto sit = std::lower_bound(seg.srcs.begin(), seg.srcs.end(), u);
  if (sit == seg.srcs.end() || *sit != u) return Status::OK();
  size_t i = static_cast<size_t>(sit - seg.srcs.begin());
  int64_t begin = seg.ranges[i];
  int64_t end = seg.ranges[i + 1];
  std::vector<VertexId> dsts(static_cast<size_t>(end - begin));
  std::vector<int8_t> mults(static_cast<size_t>(end - begin));
  ITG_RETURN_IF_ERROR(seg.dsts.Read(pool, static_cast<size_t>(begin),
                                    dsts.size(), dsts.data()));
  ITG_RETURN_IF_ERROR(seg.mults.Read(pool, static_cast<size_t>(begin),
                                     mults.size(), mults.data()));
  out->reserve(dsts.size());
  for (size_t j = 0; j < dsts.size(); ++j) {
    out->emplace_back(dsts[j], mults[j]);
  }
  return Status::OK();
}

Status EdgeDeltaStore::DeltaSources(Timestamp t, Direction d,
                                    std::vector<VertexId>* out) const {
  out->clear();
  const auto& segments = (d == Direction::kOut) ? out_segments_ : in_segments_;
  auto it = segments.find(t);
  if (it == segments.end()) return Status::OK();
  *out = it->second.srcs;
  return Status::OK();
}

size_t EdgeDeltaStore::BatchSize(Timestamp t) const {
  auto it = batch_sizes_.find(t);
  return it == batch_sizes_.end() ? 0 : it->second;
}

}  // namespace itg
