#ifndef ITG_STORAGE_CSR_H_
#define ITG_STORAGE_CSR_H_

#include <span>
#include <vector>

#include "common/types.h"

namespace itg {

/// An in-memory CSR (compressed sparse row) adjacency structure.
/// Used by the native reference algorithms, the baselines, and as the
/// staging form when building the on-disk snapshot. Neighbor lists are
/// sorted and deduplicated (the paper models graphs as simple graphs).
class Csr {
 public:
  Csr() : offsets_(1, 0) {}

  /// Builds a CSR over `num_vertices` vertices from an edge list.
  /// Duplicate edges and self-loops are kept or dropped per flags; the
  /// paper's model is a simple graph, so defaults drop duplicates and
  /// keep self-loops out.
  static Csr FromEdges(VertexId num_vertices, std::vector<Edge> edges,
                       bool drop_self_loops = true);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.size()) - 1;
  }
  size_t num_edges() const { return neighbors_.size(); }

  std::span<const VertexId> Neighbors(VertexId u) const {
    return {neighbors_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  int64_t Degree(VertexId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// True if edge (u, v) exists (binary search over the sorted list).
  bool HasEdge(VertexId u, VertexId v) const;

  /// Returns the transpose (in-adjacency) of this graph.
  Csr Transposed() const;

  const std::vector<int64_t>& offsets() const { return offsets_; }
  const std::vector<VertexId>& neighbors() const { return neighbors_; }

 private:
  std::vector<int64_t> offsets_;      // size = num_vertices + 1
  std::vector<VertexId> neighbors_;   // size = num_edges, sorted per vertex
};

/// Symmetrizes a directed edge list: for every (u,v) adds (v,u). Used to
/// model undirected graphs as pairs of directed edges (paper §4).
std::vector<Edge> SymmetrizeEdges(const std::vector<Edge>& edges);

}  // namespace itg

#endif  // ITG_STORAGE_CSR_H_
