#ifndef ITG_STORAGE_PAGE_STORE_H_
#define ITG_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_budget.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timed_mutex.h"

namespace itg {

/// Fixed page size of the on-disk stores. 64 KiB mirrors the coarse IO
/// units of the disk-based engines the paper builds on (TurboGraph++).
inline constexpr size_t kPageSize = 64 * 1024;

using PageId = uint32_t;

/// A file-backed store of fixed-size pages. All graph data (CSR adjacency,
/// edge delta segments, vertex attribute delta files) lives in pages so
/// that every byte the engine touches is observable as IO.
///
/// Thread-safe: AppendPage/ReadPage serialize the shared FILE* cursor
/// under an internal mutex, so pool workers enumerating walk shards may
/// fault pages concurrently.
class PageStore {
 public:
  /// Opens (creating if necessary) the backing file. `metrics` receives
  /// write accounting; reads are accounted by the BufferPool on miss.
  static StatusOr<std::unique_ptr<PageStore>> Open(const std::string& path,
                                                   Metrics* metrics);

  ~PageStore();

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  /// Appends a new page holding `n <= kPageSize` bytes (zero-padded).
  StatusOr<PageId> AppendPage(const void* data, size_t n);

  /// Reads a full page into `out` (at least kPageSize bytes). Counts raw
  /// read bytes; normally called through a BufferPool, not directly.
  Status ReadPage(PageId id, void* out) const;

  size_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }
  Metrics* metrics() const { return metrics_; }

 private:
  PageStore(std::string path, std::FILE* file, Metrics* metrics)
      : path_(std::move(path)), file_(file), metrics_(metrics) {
    if (metrics_ != nullptr) {
      read_latency_ = metrics_->registry().histogram("page_store.read_nanos");
    }
  }

  std::string path_;
  std::FILE* file_;
  Metrics* metrics_;
  Histogram* read_latency_ = nullptr;
  // Serializes the fseek+fread/fwrite pairs on file_ (mutable so the
  // logically-const ReadPage can lock it).
  mutable std::mutex io_mu_;
  size_t page_count_ = 0;
};

/// An LRU page cache over a PageStore with a fixed capacity in pages.
/// This is the knob that turns "graph larger than memory" into real
/// repeated IO: every miss reads kPageSize bytes from the store.
///
/// Pages are returned as shared_ptr so an evicted-but-pinned page stays
/// valid until the caller drops it. GetPage/Clear are thread-safe (one
/// mutex over the map + LRU list), so a pool of walk workers can share
/// one cache; the page bytes themselves are immutable once loaded.
class BufferPool {
 public:
  using Page = std::vector<uint8_t>;

  BufferPool(PageStore* store, size_t capacity_pages)
      : store_(store), capacity_(capacity_pages) {
    // Mirror hit/miss tallies into the owning machine's metrics registry
    // (summed across all pools of that machine) so run reports can export
    // a hit rate without reaching into individual pools.
    if (store_ != nullptr && store_->metrics() != nullptr) {
      MetricsRegistry& reg = store_->metrics()->registry();
      hits_counter_ = reg.counter("buffer_pool.hits");
      misses_counter_ = reg.counter("buffer_pool.misses");
      // Add-deltas so all pools of a machine (the distributed simulation
      // creates one per simulated machine) aggregate into one gauge pair.
      mem_gauge_.Bind(&reg, "buffer_pool");
    }
  }

  ~BufferPool() { Clear(); }

  /// Fetches a page, from cache or disk.
  StatusOr<std::shared_ptr<const Page>> GetPage(PageId id);

  /// Drops all cached pages (used between experiment runs for cold-cache
  /// measurements).
  void Clear();

  size_t capacity_pages() const { return capacity_; }
  uint64_t hits() const {
    std::lock_guard<TimedMutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<TimedMutex> lock(mu_);
    return misses_;
  }

 private:
  struct Entry {
    std::shared_ptr<const Page> page;
    std::list<PageId>::iterator lru_it;
  };

  PageStore* store_;
  size_t capacity_;
  // Guards cache_, lru_, hits_, misses_. Timed: misses hold it across
  // the disk read, so pool workers queueing behind a cold window show up
  // as `contention.buffer_pool.wait_us`.
  mutable TimedMutex mu_{"buffer_pool"};
  std::unordered_map<PageId, Entry> cache_;
  std::list<PageId> lru_;  // front = most recent
  uint64_t hits_ = 0;    // per-pool tallies (tests assert exact counts);
  uint64_t misses_ = 0;  // the registry counters aggregate across pools
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  ByteGauge mem_gauge_;  // mem.buffer_pool.* resident page bytes
};

}  // namespace itg

#endif  // ITG_STORAGE_PAGE_STORE_H_
