#include "storage/page_store.h"

#include <cstring>

#include "common/logging.h"
#include "common/resource_scope.h"

namespace itg {

StatusOr<std::unique_ptr<PageStore>> PageStore::Open(const std::string& path,
                                                     Metrics* metrics) {
  std::FILE* file = std::fopen(path.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IOError("cannot open page store file: " + path);
  }
  return std::unique_ptr<PageStore>(new PageStore(path, file, metrics));
}

PageStore::~PageStore() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<PageId> PageStore::AppendPage(const void* data, size_t n) {
  if (n > kPageSize) {
    return Status::InvalidArgument("page payload exceeds page size");
  }
  std::vector<uint8_t> buf(kPageSize, 0);
  std::memcpy(buf.data(), data, n);
  std::lock_guard<std::mutex> lock(io_mu_);
  if (std::fseek(file_, static_cast<long>(page_count_ * kPageSize),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fwrite(buf.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("write failed on " + path_);
  }
  if (metrics_ != nullptr) metrics_->AddWriteBytes(kPageSize);
  return static_cast<PageId>(page_count_++);
}

Status PageStore::ReadPage(PageId id, void* out) const {
  Stopwatch timer;
  std::lock_guard<std::mutex> lock(io_mu_);
  if (id >= page_count_) {
    return Status::InvalidArgument("page id out of range");
  }
  if (std::fseek(file_, static_cast<long>(static_cast<size_t>(id) * kPageSize),
                 SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("read failed on " + path_);
  }
  if (metrics_ != nullptr) {
    metrics_->AddReadBytes(kPageSize);
    metrics_->AddPageReads(1);
    // Includes time queued on io_mu_: that is the latency a walk task
    // actually observes on a cold window, which is what the async-IO
    // ROADMAP item needs to see.
    read_latency_->Record(timer.ElapsedNanos());
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const BufferPool::Page>> BufferPool::GetPage(
    PageId id) {
  // One lock over lookup + fill: misses hold it across the disk read,
  // which also prevents two workers from double-reading the same page.
  // The underlying FILE* is a single cursor, so reads are serialized at
  // the store regardless.
  std::lock_guard<TimedMutex> lock(mu_);
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    ++hits_;
    if (hits_counter_ != nullptr) hits_counter_->Increment();
    lru_.erase(it->second.lru_it);
    lru_.push_front(id);
    it->second.lru_it = lru_.begin();
    return it->second.page;
  }
  ++misses_;
  if (misses_counter_ != nullptr) misses_counter_->Increment();
  // Attribute the miss (one kPageSize disk read) to whichever resource
  // context scheduled this work — under multi-view serving, the view
  // whose working set blew the cache is the one billed for the IO.
  ChargeCurrentPagesRead(1);
  auto page = std::make_shared<Page>(kPageSize);
  ITG_RETURN_IF_ERROR(store_->ReadPage(id, page->data()));
  while (cache_.size() >= capacity_ && !lru_.empty()) {
    PageId victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
    mem_gauge_.Add(-static_cast<int64_t>(kPageSize));
  }
  lru_.push_front(id);
  cache_.emplace(id, Entry{page, lru_.begin()});
  mem_gauge_.Add(static_cast<int64_t>(kPageSize));
  return std::shared_ptr<const Page>(page);
}

void BufferPool::Clear() {
  std::lock_guard<TimedMutex> lock(mu_);
  mem_gauge_.Add(-static_cast<int64_t>(cache_.size() * kPageSize));
  cache_.clear();
  lru_.clear();
}

}  // namespace itg
