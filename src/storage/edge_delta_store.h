#ifndef ITG_STORAGE_EDGE_DELTA_STORE_H_
#define ITG_STORAGE_EDGE_DELTA_STORE_H_

#include <functional>
#include <map>
#include <vector>

#include "common/memory_budget.h"
#include "common/types.h"
#include "storage/disk_array.h"
#include "storage/page_store.h"

namespace itg {

/// Direction of adjacency access.
enum class Direction { kOut, kIn };

/// Persists graph mutation batches ΔG_t. As in the paper (§5.5), the
/// insertion and deletion operations of each timestamp are maintained in
/// separate CSR-like segment files so the execution engine can scan the
/// initial graph and the mutations identically, and is aware of the
/// multiplicity of edge tuples.
///
/// Each segment keeps its source-vertex index in memory (sources are few
/// relative to edges) while destination lists are disk-resident, read
/// through a BufferPool so delta IO is accounted.
class EdgeDeltaStore {
 public:
  explicit EdgeDeltaStore(PageStore* store) : store_(store) {
    if (store_ != nullptr && store_->metrics() != nullptr) {
      mem_gauge_.Bind(&store_->metrics()->registry(), "edge_delta_store");
    }
  }

  /// Appends the mutation batch for timestamp `t` (must be the next
  /// timestamp). Edges are stored in both directions so backward
  /// traversals (MS-BFS neighbor pruning) can read deltas too.
  Status ApplyBatch(Timestamp t, const std::vector<EdgeDelta>& batch);

  /// Iterates the deltas of exactly timestamp `t` in direction `d`.
  /// The visitor receives each (edge, multiplicity); for kIn the edge is
  /// reversed so `edge.src` is always the traversal origin.
  Status ForEachDelta(BufferPool* pool, Timestamp t, Direction d,
                      const std::function<void(Edge, Multiplicity)>& fn) const;

  /// Per-vertex delta adjacency: the (dst, mult) pairs of timestamp t
  /// whose source (traversal origin) is `u`, sorted by dst.
  Status GetDeltaAdjacency(
      BufferPool* pool, Timestamp t, VertexId u, Direction d,
      std::vector<std::pair<VertexId, Multiplicity>>* out) const;

  /// The distinct traversal origins of timestamp t's deltas.
  Status DeltaSources(Timestamp t, Direction d,
                      std::vector<VertexId>* out) const;

  /// Number of mutation operations at timestamp t.
  size_t BatchSize(Timestamp t) const;

  Timestamp latest() const { return latest_; }

 private:
  /// One direction of one timestamp's segment pair.
  struct Segment {
    // Parallel arrays: srcs_[i] has destinations dsts[ranges_[i] ..
    // ranges_[i+1]) with multiplicities mults[...] (inserts and deletes
    // interleaved in dst order; mult tells which).
    std::vector<VertexId> srcs;
    std::vector<int64_t> ranges;  // size = srcs.size() + 1
    DiskArray<VertexId> dsts;
    DiskArray<int8_t> mults;
  };

  Status BuildSegment(const std::vector<EdgeDelta>& deltas, Segment* seg);

  /// In-memory footprint of a segment (the source index; destination and
  /// multiplicity arrays are disk-resident and charged as page IO).
  static size_t SegmentBytes(const Segment& seg) {
    return seg.srcs.capacity() * sizeof(VertexId) +
           seg.ranges.capacity() * sizeof(int64_t);
  }

  PageStore* store_;
  Timestamp latest_ = 0;  // timestamp 0 = initial graph; batches start at 1
  std::map<Timestamp, Segment> out_segments_;
  std::map<Timestamp, Segment> in_segments_;
  std::map<Timestamp, size_t> batch_sizes_;
  ByteGauge mem_gauge_;  // mem.edge_delta_store.* source-index bytes
};

}  // namespace itg

#endif  // ITG_STORAGE_EDGE_DELTA_STORE_H_
