#include "storage/vertex_store.h"

#include <algorithm>
#include <bit>
#include <map>

#include "common/logging.h"
#include "common/trace.h"

namespace itg {

int VertexStore::RegisterAttribute(std::string name, int width) {
  ITG_CHECK_GT(width, 0);
  attrs_.push_back({std::move(name), width});
  return static_cast<int>(attrs_.size()) - 1;
}

Status VertexStore::WriteDelta(Timestamp t, Superstep s, int attr,
                               const std::vector<AfterImage>& records) {
  if (records.empty()) return Status::OK();
  const int width = attrs_[attr].width;
  DiskArrayBuilder<int64_t> builder(store_);
  for (const AfterImage& rec : records) {
    ITG_CHECK_EQ(static_cast<int>(rec.values.size()), width);
    ITG_RETURN_IF_ERROR(builder.Append(rec.vid));
    for (double v : rec.values) {
      ITG_RETURN_IF_ERROR(builder.Append(std::bit_cast<int64_t>(v)));
    }
  }
  ITG_ASSIGN_OR_RETURN(auto array, builder.Finish());
  chains_[{attr, s}].push_back({t, std::move(array), records.size()});
  max_superstep_ = std::max(max_superstep_, s);
  return Status::OK();
}

Status VertexStore::OverlaySuperstep(BufferPool* pool, Timestamp t,
                                     Superstep s, int attr, double* column,
                                     std::vector<VertexId>* changed) const {
  auto it = chains_.find({attr, s});
  if (it == chains_.end()) return Status::OK();
  const int width = attrs_[attr].width;
  const size_t record_width = 1 + static_cast<size_t>(width);
  std::vector<int64_t> buf;
  for (const DeltaFile& file : it->second) {
    if (file.t > t) break;  // chain is in snapshot order
    buf.resize(file.num_records * record_width);
    ITG_RETURN_IF_ERROR(file.data.Read(pool, 0, buf.size(), buf.data()));
    for (size_t r = 0; r < file.num_records; ++r) {
      const int64_t* rec = buf.data() + r * record_width;
      VertexId vid = rec[0];
      double* dst = column + static_cast<size_t>(vid) * width;
      bool differs = false;
      for (int w = 0; w < width; ++w) {
        double value = std::bit_cast<double>(rec[1 + w]);
        if (dst[w] != value) {
          dst[w] = value;
          differs = true;
        }
      }
      if (differs && changed != nullptr) changed->push_back(vid);
    }
  }
  return Status::OK();
}

Status VertexStore::MaintainAfterSnapshot(Timestamp t, BufferPool* pool) {
  TraceSpan span("vertex_maintain", "storage", static_cast<int64_t>(t));
  Metrics* metrics = store_ != nullptr ? store_->metrics() : nullptr;
  for (auto& [key, chain] : chains_) {
    if (chain.size() <= 1) continue;
    bool merge = false;
    switch (strategy_) {
      case MergeStrategy::kNoMerge:
        break;
      case MergeStrategy::kPeriodic:
        merge = (t % merge_period_ == 0);
        break;
      case MergeStrategy::kCostBased: {
        // W_merge: records in the merged file — bounded by the union of
        // the chain's record sets (we use the cheap upper bound
        // min(sum, |V|); reading every file just to count exactly would
        // itself cost the reads we are trying to avoid).
        uint64_t sum_records = 0;
        // R_delta: each file written at snapshot τ has been re-read at
        // every snapshot after it: (t − τ) times.
        uint64_t read_cost = 0;
        for (const DeltaFile& f : chain) {
          sum_records += f.num_records;
          if (f.t > 0) {
            read_cost +=
                static_cast<uint64_t>(t - f.t) * f.num_records;
          }
        }
        uint64_t w_merge = std::min<uint64_t>(
            sum_records, static_cast<uint64_t>(num_vertices_));
        merge = (w_merge < read_cost);
        break;
      }
    }
    // Export the merge decisions so the Fig-17 strategy comparison can
    // report how often each policy actually fires.
    if (metrics != nullptr) {
      metrics->registry()
          .counter(merge ? "vertex_store.chain_merges"
                         : "vertex_store.chain_merge_skips")
          ->Increment();
    }
    if (merge) {
      TraceSpan merge_span("merge_chain", "storage",
                           static_cast<int64_t>(chain.size()));
      ITG_RETURN_IF_ERROR(
          MergeChain(&chain, attrs_[key.first].width, pool));
      if (metrics != nullptr) {
        metrics->registry()
            .histogram("vertex_store.merged_records")
            ->Record(chain.empty() ? 0 : chain.front().num_records);
      }
    }
  }
  return Status::OK();
}

Status VertexStore::MergeChain(std::vector<DeltaFile>* chain, int width,
                               BufferPool* pool) {
  const size_t record_width = 1 + static_cast<size_t>(width);
  // Last-writer-wins union of the chain, in snapshot order.
  std::map<VertexId, std::vector<double>> merged;
  std::vector<int64_t> buf;
  Timestamp last_t = 0;
  for (const DeltaFile& file : *chain) {
    buf.resize(file.num_records * record_width);
    ITG_RETURN_IF_ERROR(file.data.Read(pool, 0, buf.size(), buf.data()));
    for (size_t r = 0; r < file.num_records; ++r) {
      const int64_t* rec = buf.data() + r * record_width;
      std::vector<double> values(width);
      for (int w = 0; w < width; ++w) {
        values[w] = std::bit_cast<double>(rec[1 + w]);
      }
      merged[rec[0]] = std::move(values);
    }
    last_t = std::max(last_t, file.t);
  }
  DiskArrayBuilder<int64_t> builder(store_);
  for (const auto& [vid, values] : merged) {
    ITG_RETURN_IF_ERROR(builder.Append(vid));
    for (double v : values) {
      ITG_RETURN_IF_ERROR(builder.Append(std::bit_cast<int64_t>(v)));
    }
  }
  ITG_ASSIGN_OR_RETURN(auto array, builder.Finish());
  chain->clear();
  chain->push_back({last_t, std::move(array), merged.size()});
  return Status::OK();
}

uint64_t VertexStore::ChainRecords(Superstep s, int attr) const {
  auto it = chains_.find({attr, s});
  if (it == chains_.end()) return 0;
  uint64_t total = 0;
  for (const DeltaFile& f : it->second) total += f.num_records;
  return total;
}

}  // namespace itg
