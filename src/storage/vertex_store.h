#ifndef ITG_STORAGE_VERTEX_STORE_H_
#define ITG_STORAGE_VERTEX_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/disk_array.h"
#include "storage/page_store.h"

namespace itg {

/// How vertex-attribute delta chains are compacted (§5.5, Figure 17).
enum class MergeStrategy {
  kNoMerge,    ///< deltas accumulate forever (Fig 17 "NoMerge")
  kPeriodic,   ///< merge every `merge_period` snapshots ("PeriodicMerge")
  kCostBased,  ///< merge when W_merge < R_delta (the paper's "Cost")
};

/// The vertex half of the dynamic graph store: maintains, for every
/// attribute and superstep, a chain of *delta files* instead of updating
/// values in place.
///
/// File F(τ, s) holds after-images of the vertices whose attribute value
/// at (snapshot τ, superstep s) differs from (τ, s−1) or from (τ−1, s).
/// Materializing A_{t,s} from an in-memory A_{t,s−1} array is then a
/// sequential overlay of F(0,s), F(1,s), …, F(t,s) (§5.5): the last file
/// containing a vertex wins.
///
/// The cost-based maintenance strategy merges a chain when the write cost
/// of merging, W_merge = |∪_τ X^{(τ,s)}|, is smaller than the accumulated
/// read cost R_delta = Σ_{0<τ<t} (t−τ)·|X^{(τ,s)}|.
class VertexStore {
 public:
  VertexStore(PageStore* store, VertexId num_vertices,
              MergeStrategy strategy = MergeStrategy::kCostBased,
              int merge_period = 50)
      : store_(store),
        num_vertices_(num_vertices),
        strategy_(strategy),
        merge_period_(merge_period) {}

  /// Registers an attribute with `width` doubles per vertex (1 for
  /// scalars, N for Array<_,N>). Returns the attribute handle.
  int RegisterAttribute(std::string name, int width);

  int attribute_count() const { return static_cast<int>(attrs_.size()); }
  int attribute_width(int attr) const { return attrs_[attr].width; }
  const std::string& attribute_name(int attr) const {
    return attrs_[attr].name;
  }

  /// One after-image record: a vertex and its `width` values.
  struct AfterImage {
    VertexId vid;
    std::vector<double> values;
  };

  /// Writes delta file F(t, s) for `attr`. Records must be sorted by vid.
  Status WriteDelta(Timestamp t, Superstep s, int attr,
                    const std::vector<AfterImage>& records);

  /// Overlays all delta files F(τ≤t, s) for `attr` onto `column`
  /// (num_vertices × width doubles), in snapshot order. When `changed` is
  /// non-null, vertices whose value actually changed are appended
  /// (unsorted, may contain duplicates).
  Status OverlaySuperstep(BufferPool* pool, Timestamp t, Superstep s,
                          int attr, double* column,
                          std::vector<VertexId>* changed = nullptr) const;

  /// Applies the configured maintenance strategy after snapshot `t`
  /// finished. May rewrite chains (counts as disk writes).
  Status MaintainAfterSnapshot(Timestamp t, BufferPool* pool);

  /// Total delta records currently chained for (attr, s); Fig 17's driver
  /// uses this to report chain growth.
  uint64_t ChainRecords(Superstep s, int attr) const;

  /// Largest superstep for which any delta file exists.
  Superstep max_superstep() const { return max_superstep_; }

  VertexId num_vertices() const { return num_vertices_; }

 private:
  struct AttrInfo {
    std::string name;
    int width;
  };

  struct DeltaFile {
    Timestamp t;
    DiskArray<int64_t> data;  // records: vid, then width doubles (bitcast)
    size_t num_records;
  };

  using ChainKey = std::pair<int, Superstep>;  // (attr, superstep)

  Status MergeChain(std::vector<DeltaFile>* chain, int width,
                    BufferPool* pool);

  PageStore* store_;
  VertexId num_vertices_;
  MergeStrategy strategy_;
  int merge_period_;
  Superstep max_superstep_ = -1;
  std::vector<AttrInfo> attrs_;
  std::map<ChainKey, std::vector<DeltaFile>> chains_;
};

}  // namespace itg

#endif  // ITG_STORAGE_VERTEX_STORE_H_
