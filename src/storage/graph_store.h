#ifndef ITG_STORAGE_GRAPH_STORE_H_
#define ITG_STORAGE_GRAPH_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/csr.h"
#include "storage/disk_array.h"
#include "storage/edge_delta_store.h"
#include "storage/page_store.h"
#include "storage/vertex_store.h"

namespace itg {

/// The dynamic graph store (§5.5): a disk-resident CSR base snapshot G_0,
/// per-timestamp edge-delta segments, lazily applied deletions, and the
/// delta-maintained vertex store.
///
/// Adjacency reads merge the base lists with an in-memory *overlay* of
/// the cumulative mutations — the counterpart of the paper's strategy of
/// keeping deletions in memory and lazily marking edges as deleted when
/// their pages are loaded, rather than rewriting data on disk.
///
/// Snapshots: timestamp 0 is G_0; each ApplyMutations() call creates the
/// next snapshot. Queries may target the latest or the immediately
/// preceding snapshot (all the incremental engine ever needs); overlay
/// views for older snapshots are dropped.
class DynamicGraphStore {
 public:
  struct Options {
    /// Capacity of the store's default buffer pool, in 64 KiB pages.
    size_t buffer_pool_pages = 2048;
    MergeStrategy merge_strategy = MergeStrategy::kCostBased;
    int merge_period = 50;
  };

  /// Creates a store at `path` (a file prefix) over `base_edges`.
  /// The edge list is deduplicated and self-loops are dropped (simple
  /// directed graph; symmetrize beforehand for undirected analytics).
  static StatusOr<std::unique_ptr<DynamicGraphStore>> Create(
      const std::string& path, VertexId num_vertices,
      std::vector<Edge> base_edges, const Options& options,
      Metrics* metrics);

  /// Applies the mutation batch as the next snapshot and returns its
  /// timestamp. Inserting an existing edge or deleting a missing one is
  /// ignored at read time (the merged view stays a simple graph).
  StatusOr<Timestamp> ApplyMutations(const std::vector<EdgeDelta>& batch);

  /// Merged adjacency of `u` at snapshot `t` in direction `d`, sorted.
  Status GetAdjacency(BufferPool* pool, VertexId u, Timestamp t, Direction d,
                      std::vector<VertexId>* out) const;

  /// Degree of `u` at snapshot `t` (merged view).
  int64_t Degree(VertexId u, Timestamp t, Direction d) const;

  /// True if edge (u→v for kOut) exists at snapshot `t`.
  StatusOr<bool> HasEdge(BufferPool* pool, VertexId u, VertexId v,
                         Timestamp t, Direction d) const;

  /// Iterates the mutation batch of exactly snapshot `t`.
  Status ScanDeltas(BufferPool* pool, Timestamp t, Direction d,
                    const std::function<void(Edge, Multiplicity)>& fn) const;

  /// Materializes the full edge list of snapshot `t` (base ∪ ΔG₁..ΔG_t,
  /// last operation per edge wins), sorted by (src, dst). Unlike the
  /// overlay views — which only survive for the latest and previous
  /// snapshots — this replays the persisted per-timestamp delta segments,
  /// so it works for *any* recorded t. Used by the drift auditor to build
  /// shadow stores for from-scratch replays at checkpointed timestamps.
  Status MaterializeEdges(BufferPool* pool, Timestamp t,
                          std::vector<Edge>* out) const;

  /// Per-vertex delta adjacency of snapshot t's batch (sorted by dst).
  Status GetDeltaAdjacency(
      BufferPool* pool, VertexId u, Timestamp t, Direction d,
      std::vector<std::pair<VertexId, Multiplicity>>* out) const {
    return delta_store_->GetDeltaAdjacency(pool, t, u, d, out);
  }

  /// Distinct traversal origins of snapshot t's delta batch.
  Status DeltaSources(Timestamp t, Direction d,
                      std::vector<VertexId>* out) const {
    return delta_store_->DeltaSources(t, d, out);
  }

  size_t BatchSize(Timestamp t) const { return delta_store_->BatchSize(t); }

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges(Timestamp t) const;
  Timestamp latest() const { return latest_; }

  BufferPool* pool() { return pool_.get(); }
  PageStore* page_store() { return page_store_.get(); }
  VertexStore* vertex_store() { return vertex_store_.get(); }
  Metrics* metrics() { return metrics_; }

 private:
  struct OverlayList {
    // Sorted by dst; mult is the last operation applied to that edge.
    std::vector<std::pair<VertexId, Multiplicity>> entries;
  };
  struct View {
    std::unordered_map<VertexId, OverlayList> out;
    std::unordered_map<VertexId, OverlayList> in;
    std::unordered_map<VertexId, int64_t> out_degree_delta;
    std::unordered_map<VertexId, int64_t> in_degree_delta;
    size_t num_edges = 0;
  };

  DynamicGraphStore() = default;

  const View* ViewAt(Timestamp t) const;
  Status ReadBaseAdjacency(BufferPool* pool, VertexId u, Direction d,
                           std::vector<VertexId>* out) const;

  VertexId num_vertices_ = 0;
  Timestamp latest_ = 0;
  size_t base_num_edges_ = 0;
  Metrics* metrics_ = nullptr;

  std::unique_ptr<PageStore> page_store_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<EdgeDeltaStore> delta_store_;
  std::unique_ptr<VertexStore> vertex_store_;

  // Base CSR: offsets in memory, neighbor arrays on disk.
  std::vector<int64_t> out_offsets_;
  std::vector<int64_t> in_offsets_;
  DiskArray<VertexId> out_neighbors_;
  DiskArray<VertexId> in_neighbors_;

  // Overlay views for the latest and previous snapshots (older dropped).
  std::map<Timestamp, View> views_;
};

}  // namespace itg

#endif  // ITG_STORAGE_GRAPH_STORE_H_
