#include "storage/csr.h"

#include <algorithm>

#include "common/logging.h"

namespace itg {

Csr Csr::FromEdges(VertexId num_vertices, std::vector<Edge> edges,
                   bool drop_self_loops) {
  if (drop_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const Edge& e) { return e.src == e.dst; }),
                edges.end());
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Csr csr;
  csr.offsets_.assign(static_cast<size_t>(num_vertices) + 1, 0);
  csr.neighbors_.resize(edges.size());
  for (const Edge& e : edges) {
    ITG_CHECK_LT(e.src, num_vertices);
    ITG_CHECK_LT(e.dst, num_vertices);
    ++csr.offsets_[static_cast<size_t>(e.src) + 1];
  }
  for (size_t i = 1; i < csr.offsets_.size(); ++i) {
    csr.offsets_[i] += csr.offsets_[i - 1];
  }
  std::vector<int64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    csr.neighbors_[static_cast<size_t>(cursor[e.src]++)] = e.dst;
  }
  return csr;
}

bool Csr::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Csr Csr::Transposed() const {
  std::vector<Edge> reversed;
  reversed.reserve(neighbors_.size());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : Neighbors(u)) reversed.push_back({v, u});
  }
  return FromEdges(num_vertices(), std::move(reversed),
                   /*drop_self_loops=*/false);
}

std::vector<Edge> SymmetrizeEdges(const std::vector<Edge>& edges) {
  std::vector<Edge> out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.push_back({e.dst, e.src});
  }
  return out;
}

}  // namespace itg
