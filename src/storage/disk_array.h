#ifndef ITG_STORAGE_DISK_ARRAY_H_
#define ITG_STORAGE_DISK_ARRAY_H_

#include <cstring>
#include <type_traits>
#include <vector>

#include "storage/page_store.h"

namespace itg {

/// A flat on-disk array of trivially copyable elements, laid out across
/// consecutive pages of a PageStore. Random reads go through a BufferPool
/// (so repeated access to hot ranges is cached and cold access is real IO).
///
/// This is the storage primitive for CSR adjacency arrays, edge-delta
/// segments, and vertex attribute delta files: everything the paper's
/// engine streams from disk.
template <typename T>
class DiskArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  DiskArray() = default;
  DiskArray(std::vector<PageId> pages, size_t size)
      : pages_(std::move(pages)), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  static constexpr size_t ElementsPerPage() { return kPageSize / sizeof(T); }

  /// Reads elements [start, start+count) into `out` through `pool`.
  Status Read(BufferPool* pool, size_t start, size_t count, T* out) const {
    if (start + count > size_) {
      return Status::InvalidArgument("DiskArray read out of range");
    }
    constexpr size_t kPerPage = kPageSize / sizeof(T);
    size_t done = 0;
    while (done < count) {
      size_t idx = start + done;
      size_t page_idx = idx / kPerPage;
      size_t in_page = idx % kPerPage;
      size_t n = std::min(count - done, kPerPage - in_page);
      ITG_ASSIGN_OR_RETURN(auto page, pool->GetPage(pages_[page_idx]));
      std::memcpy(out + done, page->data() + in_page * sizeof(T),
                  n * sizeof(T));
      done += n;
    }
    return Status::OK();
  }

  /// Convenience: reads the whole range into a vector.
  StatusOr<std::vector<T>> ReadAll(BufferPool* pool) const {
    std::vector<T> out(size_);
    ITG_RETURN_IF_ERROR(Read(pool, 0, size_, out.data()));
    return out;
  }

 private:
  std::vector<PageId> pages_;
  size_t size_ = 0;
};

/// Builds a DiskArray by appending elements; flushes full pages eagerly so
/// peak memory stays one page.
template <typename T>
class DiskArrayBuilder {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit DiskArrayBuilder(PageStore* store) : store_(store) {
    buffer_.reserve(kPageSize / sizeof(T));
  }

  Status Append(const T& value) {
    buffer_.push_back(value);
    if (buffer_.size() == kPageSize / sizeof(T)) {
      return FlushPage();
    }
    return Status::OK();
  }

  Status AppendRange(const T* data, size_t n) {
    for (size_t i = 0; i < n; ++i) ITG_RETURN_IF_ERROR(Append(data[i]));
    return Status::OK();
  }

  StatusOr<DiskArray<T>> Finish() {
    if (!buffer_.empty()) ITG_RETURN_IF_ERROR(FlushPage());
    return DiskArray<T>(std::move(pages_), size_);
  }

  size_t size() const { return size_ + buffer_.size(); }

 private:
  Status FlushPage() {
    ITG_ASSIGN_OR_RETURN(
        PageId id,
        store_->AppendPage(buffer_.data(), buffer_.size() * sizeof(T)));
    pages_.push_back(id);
    size_ += buffer_.size();
    buffer_.clear();
    return Status::OK();
  }

  PageStore* store_;
  std::vector<T> buffer_;
  std::vector<PageId> pages_;
  size_t size_ = 0;
};

}  // namespace itg

#endif  // ITG_STORAGE_DISK_ARRAY_H_
