#include "storage/graph_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"

namespace itg {

StatusOr<std::unique_ptr<DynamicGraphStore>> DynamicGraphStore::Create(
    const std::string& path, VertexId num_vertices,
    std::vector<Edge> base_edges, const Options& options, Metrics* metrics) {
  auto store = std::unique_ptr<DynamicGraphStore>(new DynamicGraphStore());
  store->num_vertices_ = num_vertices;
  store->metrics_ = metrics;
  ITG_ASSIGN_OR_RETURN(store->page_store_,
                       PageStore::Open(path + ".pages", metrics));
  store->pool_ = std::make_unique<BufferPool>(store->page_store_.get(),
                                              options.buffer_pool_pages);
  store->delta_store_ =
      std::make_unique<EdgeDeltaStore>(store->page_store_.get());
  store->vertex_store_ = std::make_unique<VertexStore>(
      store->page_store_.get(), num_vertices, options.merge_strategy,
      options.merge_period);

  Csr out_csr = Csr::FromEdges(num_vertices, base_edges);
  Csr in_csr = out_csr.Transposed();
  store->base_num_edges_ = out_csr.num_edges();
  store->out_offsets_ = out_csr.offsets();
  store->in_offsets_ = in_csr.offsets();

  DiskArrayBuilder<VertexId> out_builder(store->page_store_.get());
  ITG_RETURN_IF_ERROR(out_builder.AppendRange(out_csr.neighbors().data(),
                                              out_csr.neighbors().size()));
  ITG_ASSIGN_OR_RETURN(store->out_neighbors_, out_builder.Finish());

  DiskArrayBuilder<VertexId> in_builder(store->page_store_.get());
  ITG_RETURN_IF_ERROR(in_builder.AppendRange(in_csr.neighbors().data(),
                                             in_csr.neighbors().size()));
  ITG_ASSIGN_OR_RETURN(store->in_neighbors_, in_builder.Finish());

  // Snapshot 0 has an empty overlay.
  store->views_[0] = View{};
  store->views_[0].num_edges = store->base_num_edges_;
  return store;
}

StatusOr<Timestamp> DynamicGraphStore::ApplyMutations(
    const std::vector<EdgeDelta>& batch) {
  TraceSpan span("apply_mutations", "storage",
                 static_cast<int64_t>(batch.size()));
  if (metrics_ != nullptr) {
    metrics_->registry()
        .histogram("store.delta_batch_size")
        ->Record(batch.size());
  }
  Timestamp t = latest_ + 1;
  ITG_RETURN_IF_ERROR(delta_store_->ApplyBatch(t, batch));

  // New view = copy of latest view + batch (last operation wins).
  // Degree bookkeeping assumes the workload invariant that insertions
  // target absent edges and deletions target present ones, so each
  // operation shifts the merged degree by exactly its multiplicity.
  View view = views_.at(latest_);
  auto apply = [](std::unordered_map<VertexId, OverlayList>& adj,
                  std::unordered_map<VertexId, int64_t>& degree_delta,
                  VertexId src, VertexId dst, Multiplicity m) {
    OverlayList& list = adj[src];
    auto it = std::lower_bound(
        list.entries.begin(), list.entries.end(), dst,
        [](const auto& e, VertexId v) { return e.first < v; });
    if (it != list.entries.end() && it->first == dst) {
      it->second = m;
    } else {
      list.entries.insert(it, {dst, m});
    }
    degree_delta[src] += m;
  };
  for (const EdgeDelta& d : batch) {
    apply(view.out, view.out_degree_delta, d.edge.src, d.edge.dst, d.mult);
    apply(view.in, view.in_degree_delta, d.edge.dst, d.edge.src, d.mult);
    view.num_edges += (d.mult > 0) ? 1 : -1;
  }

  views_[t] = std::move(view);
  latest_ = t;
  // Keep only the latest and previous views.
  while (views_.size() > 2) views_.erase(views_.begin());
  return t;
}

const DynamicGraphStore::View* DynamicGraphStore::ViewAt(Timestamp t) const {
  auto it = views_.find(t);
  ITG_CHECK(it != views_.end())
      << "snapshot " << t << " view unavailable (only latest and previous "
      << "snapshots are retained); latest=" << latest_;
  return &it->second;
}

Status DynamicGraphStore::ReadBaseAdjacency(BufferPool* pool, VertexId u,
                                            Direction d,
                                            std::vector<VertexId>* out) const {
  const auto& offsets = (d == Direction::kOut) ? out_offsets_ : in_offsets_;
  const auto& neighbors =
      (d == Direction::kOut) ? out_neighbors_ : in_neighbors_;
  int64_t begin = offsets[u];
  int64_t end = offsets[u + 1];
  out->resize(static_cast<size_t>(end - begin));
  if (begin == end) return Status::OK();
  return neighbors.Read(pool, static_cast<size_t>(begin), out->size(),
                        out->data());
}

Status DynamicGraphStore::GetAdjacency(BufferPool* pool, VertexId u,
                                       Timestamp t, Direction d,
                                       std::vector<VertexId>* out) const {
  ITG_RETURN_IF_ERROR(ReadBaseAdjacency(pool, u, d, out));
  const View* view = ViewAt(t);
  const auto& adj = (d == Direction::kOut) ? view->out : view->in;
  auto it = adj.find(u);
  if (it == adj.end()) return Status::OK();
  // Merge the sorted base list with the sorted overlay: deletions drop
  // base edges, insertions add new ones (this is the lazy deletion
  // marking applied at page-load time).
  std::vector<VertexId> merged;
  merged.reserve(out->size() + it->second.entries.size());
  size_t bi = 0;
  const auto& entries = it->second.entries;
  size_t oi = 0;
  while (bi < out->size() || oi < entries.size()) {
    if (oi == entries.size() ||
        (bi < out->size() && (*out)[bi] < entries[oi].first)) {
      merged.push_back((*out)[bi++]);
    } else if (bi == out->size() || entries[oi].first < (*out)[bi]) {
      if (entries[oi].second > 0) merged.push_back(entries[oi].first);
      ++oi;
    } else {  // same dst in base and overlay: overlay's last op decides
      if (entries[oi].second > 0) merged.push_back((*out)[bi]);
      ++bi;
      ++oi;
    }
  }
  *out = std::move(merged);
  return Status::OK();
}

int64_t DynamicGraphStore::Degree(VertexId u, Timestamp t, Direction d) const {
  const auto& offsets = (d == Direction::kOut) ? out_offsets_ : in_offsets_;
  int64_t degree = offsets[u + 1] - offsets[u];
  const View* view = ViewAt(t);
  const auto& deltas =
      (d == Direction::kOut) ? view->out_degree_delta : view->in_degree_delta;
  auto it = deltas.find(u);
  if (it != deltas.end()) degree += it->second;
  return degree;
}

StatusOr<bool> DynamicGraphStore::HasEdge(BufferPool* pool, VertexId u,
                                          VertexId v, Timestamp t,
                                          Direction d) const {
  const View* view = ViewAt(t);
  const auto& adj = (d == Direction::kOut) ? view->out : view->in;
  auto it = adj.find(u);
  if (it != adj.end()) {
    const auto& entries = it->second.entries;
    auto eit = std::lower_bound(
        entries.begin(), entries.end(), v,
        [](const auto& e, VertexId x) { return e.first < x; });
    if (eit != entries.end() && eit->first == v) return eit->second > 0;
  }
  std::vector<VertexId> base;
  ITG_RETURN_IF_ERROR(ReadBaseAdjacency(pool, u, d, &base));
  return std::binary_search(base.begin(), base.end(), v);
}

Status DynamicGraphStore::ScanDeltas(
    BufferPool* pool, Timestamp t, Direction d,
    const std::function<void(Edge, Multiplicity)>& fn) const {
  return delta_store_->ForEachDelta(pool, t, d, fn);
}

size_t DynamicGraphStore::num_edges(Timestamp t) const {
  return ViewAt(t)->num_edges;
}

Status DynamicGraphStore::MaterializeEdges(BufferPool* pool, Timestamp t,
                                           std::vector<Edge>* out) const {
  out->clear();
  // Cumulative overlay from the persisted delta segments: the last
  // operation applied to each edge across batches 1..t decides.
  std::unordered_map<Edge, Multiplicity, EdgeHash> last_op;
  for (Timestamp i = 1; i <= t; ++i) {
    ITG_RETURN_IF_ERROR(ScanDeltas(
        pool, i, Direction::kOut,
        [&](Edge e, Multiplicity m) { last_op[e] = m; }));
  }
  std::vector<VertexId> base;
  for (VertexId u = 0; u < num_vertices_; ++u) {
    ITG_RETURN_IF_ERROR(ReadBaseAdjacency(pool, u, Direction::kOut, &base));
    for (VertexId v : base) {
      auto it = last_op.find(Edge{u, v});
      if (it == last_op.end()) {
        out->push_back(Edge{u, v});
      } else {
        if (it->second > 0) out->push_back(Edge{u, v});
        // Consumed: whatever remains in last_op afterwards is an
        // insertion of an edge absent from the base snapshot.
        last_op.erase(it);
      }
    }
  }
  for (const auto& [edge, m] : last_op) {
    if (m > 0) out->push_back(edge);
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

}  // namespace itg
