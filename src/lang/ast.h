#ifndef ITG_LANG_AST_H_
#define ITG_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "lang/type.h"

namespace itg::lang {

/// Source location for diagnostics.
struct SourceLoc {
  int line = 0;
  int column = 0;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

inline bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kLt || op == BinaryOp::kLe || op == BinaryOp::kGt ||
         op == BinaryOp::kGe || op == BinaryOp::kEq || op == BinaryOp::kNe;
}
inline bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Categories a VarRef can resolve to during semantic analysis.
enum class VarKind {
  kUnresolved,
  kLet,       ///< a Let-bound local
  kVertexVar, ///< the UDF parameter or a For loop variable (a vertex)
  kGlobal,    ///< a GlobalVariable attribute
  kBuiltin,   ///< V (vertex count) or E (edge count)
};

/// A unified expression node (tagged union kept simple for a tree-walking
/// evaluator; the compiler rewrites, the engine interprets).
struct Expr {
  enum class Kind { kLiteral, kVarRef, kAttrRef, kBinary, kUnary, kCall,
                    kIndex };

  Kind kind;
  SourceLoc loc;

  // kLiteral
  double literal_value = 0.0;
  bool literal_is_bool = false;

  // kVarRef: `name` (resolution filled by sema)
  std::string name;
  VarKind var_kind = VarKind::kUnresolved;
  int resolved_index = -1;  ///< global attr index / let slot / loop depth

  // kAttrRef: `name`.`attr` (vertex attribute access)
  std::string attr;
  int resolved_attr = -1;   ///< vertex attribute index
  int vertex_depth = -1;    ///< loop depth of the vertex variable (0 = param)

  // kBinary / kUnary / kCall / kIndex
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;
  std::string callee;
  std::vector<ExprPtr> children;

  // Filled by sema: result type (width 1 scalar or array width).
  Type type;

  static ExprPtr Literal(double v, bool is_bool, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kLiteral;
    e->literal_value = v;
    e->literal_is_bool = is_bool;
    e->loc = loc;
    return e;
  }
  static ExprPtr Var(std::string name, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kVarRef;
    e->name = std::move(name);
    e->loc = loc;
    return e;
  }
  static ExprPtr Attr(std::string var, std::string attr, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kAttrRef;
    e->name = std::move(var);
    e->attr = std::move(attr);
    e->loc = loc;
    return e;
  }
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                        SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->binary_op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    e->loc = loc;
    return e;
  }
  static ExprPtr Unary(UnaryOp op, ExprPtr operand, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kUnary;
    e->unary_op = op;
    e->children.push_back(std::move(operand));
    e->loc = loc;
    return e;
  }
  static ExprPtr Call(std::string callee, std::vector<ExprPtr> args,
                      SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kCall;
    e->callee = std::move(callee);
    e->children = std::move(args);
    e->loc = loc;
    return e;
  }
  static ExprPtr Index(ExprPtr base, ExprPtr index, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kIndex;
    e->children.push_back(std::move(base));
    e->children.push_back(std::move(index));
    e->loc = loc;
    return e;
  }
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind { kLet, kAssign, kAccumulate, kFor, kIf };

  Kind kind;
  SourceLoc loc;

  // kLet: `Let name = value;`
  std::string let_name;
  int let_slot = -1;  ///< filled by sema

  // kAssign: `target = value;` — target is an Expr of kind kAttrRef,
  // kVarRef (global) or kIndex over those.
  // kAccumulate: `target.Accumulate(value);`
  ExprPtr target;
  ExprPtr value;

  // kFor: `For var in source.source_attr Where (cond) { body }`
  std::string for_var;
  std::string for_source_var;   ///< the vertex variable iterated from
  std::string for_source_attr;  ///< nbrs / out_nbrs / in_nbrs
  ExprPtr where;                ///< may be null
  std::vector<StmtPtr> body;

  // kIf: `If (cond) { body } Else { else_body }`
  ExprPtr cond;
  std::vector<StmtPtr> else_body;

  // Filled by sema for kFor: loop depth (1 = outermost loop).
  int for_depth = -1;
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

/// One declared attribute (vertex or global).
struct AttrDecl {
  std::string name;
  Type type;
  bool predefined = false;  ///< id / active / degree / nbrs families
  SourceLoc loc;
};

/// One user-defined function (Initialize / Traverse / Update).
struct Udf {
  std::string param;            ///< the vertex parameter name
  std::vector<StmtPtr> body;
  bool present = false;
};

/// A parsed L_NGA program (Figure 4's shape).
struct Program {
  std::vector<AttrDecl> vertex_attrs;
  std::vector<AttrDecl> globals;
  Udf initialize;
  Udf traverse;
  Udf update;
};

}  // namespace itg::lang

#endif  // ITG_LANG_AST_H_
