#ifndef ITG_LANG_SEMA_H_
#define ITG_LANG_SEMA_H_

#include "common/status.h"
#include "lang/ast.h"

namespace itg::lang {

/// Metadata produced by semantic analysis, consumed by the compiler.
struct ProgramInfo {
  /// Maximum For-loop nesting depth of Traverse = the walk length k.
  int traverse_depth = 0;
  /// Number of Let slots used by each UDF (evaluator scratch size).
  int init_let_slots = 0;
  int traverse_let_slots = 0;
  int update_let_slots = 0;
};

/// Resolves names, checks types, and enforces the L_NGA well-formedness
/// rules on a parsed program (mutating the AST in place with resolution
/// results). The enforced rules (§3, §4.4 and the compilation
/// restrictions stated in DESIGN.md):
///
///  * predefined attributes have fixed types (id:long, active:bool,
///    degrees:int); `nbrs`/`in_nbrs`/`out_nbrs` appear only as For
///    sources;
///  * Traverse may contain Let / For / If / Accumulate; each For iterates
///    the neighbors of the immediately enclosing vertex variable (walks
///    are chains); Accumulate targets are accumulator-typed vertex
///    attributes or global accumulators;
///  * attribute reads other than `id` are restricted to the UDF parameter
///    (the walk's start vertex) — the paper's compiled plans likewise keep
///    only vs_1 as a Walk operand (§4.4);
///  * accumulator attributes are write-only in Traverse and read-only in
///    Update; Initialize/Update are per-vertex (no For) and assign only
///    the parameter's own attributes;
///  * expressions type-check (comparisons on scalars, logical ops on
///    bools, element-wise array arithmetic with matching widths).
StatusOr<ProgramInfo> Analyze(Program* program);

}  // namespace itg::lang

#endif  // ITG_LANG_SEMA_H_
