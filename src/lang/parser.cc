#include "lang/parser.h"

#include <optional>

#include "lang/lexer.h"

namespace itg::lang {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<Program>> ParseProgram() {
    auto program = std::make_unique<Program>();
    ITG_RETURN_IF_ERROR(ExpectIdent("Vertex"));
    ITG_RETURN_IF_ERROR(ParseAttrList(&program->vertex_attrs));
    if (PeekIdent("GlobalVariable")) {
      Next();
      ITG_RETURN_IF_ERROR(ParseAttrList(&program->globals));
    }
    while (!AtEnd()) {
      const Token& tok = Peek();
      if (tok.kind != TokenKind::kIdent) {
        return Error("expected UDF name (Initialize/Traverse/Update)");
      }
      Udf* udf = nullptr;
      if (tok.text == "Initialize") udf = &program->initialize;
      else if (tok.text == "Traverse") udf = &program->traverse;
      else if (tok.text == "Update") udf = &program->update;
      else return Error("unknown UDF '" + tok.text + "'");
      if (udf->present) return Error("duplicate UDF '" + tok.text + "'");
      Next();
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      ITG_ASSIGN_OR_RETURN(udf->param, ExpectAnyIdent());
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      // Optional ':' after the header (Figure 5 style).
      if (Peek().kind == TokenKind::kColon) Next();
      ITG_RETURN_IF_ERROR(ParseBlock(&udf->body));
      udf->present = true;
    }
    if (!program->initialize.present || !program->traverse.present ||
        !program->update.present) {
      return Error("program must define Initialize, Traverse and Update");
    }
    return program;
  }

 private:
  // --- token plumbing -------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  bool PeekIdent(const std::string& text, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && t.text == text;
  }
  bool ConsumeIdent(const std::string& text) {
    if (PeekIdent(text)) {
      Next();
      return true;
    }
    return false;
  }
  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      Next();
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " at line " + std::to_string(t.loc.line) +
                              ":" + std::to_string(t.loc.column) +
                              (t.text.empty() ? "" : " near '" + t.text + "'"));
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) return Error("unexpected token");
    Next();
    return Status::OK();
  }
  Status ExpectIdent(const std::string& text) {
    if (!PeekIdent(text)) return Error("expected '" + text + "'");
    Next();
    return Status::OK();
  }
  StatusOr<std::string> ExpectAnyIdent() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    return Next().text;
  }

  // --- declarations ----------------------------------------------------
  static bool IsPredefinedAttr(const std::string& name) {
    return name == "id" || name == "active" || name == "degree" ||
           name == "in_degree" || name == "out_degree" || name == "nbrs" ||
           name == "in_nbrs" || name == "out_nbrs";
  }

  static std::optional<ScalarType> ScalarFromName(const std::string& name) {
    if (name == "bool") return ScalarType::kBool;
    if (name == "int") return ScalarType::kInt;
    if (name == "long") return ScalarType::kLong;
    if (name == "float") return ScalarType::kFloat;
    if (name == "double") return ScalarType::kDouble;
    return std::nullopt;
  }
  static std::optional<AccmOp> AccmOpFromName(const std::string& name) {
    if (name == "SUM" || name == "Sum") return AccmOp::kSum;
    if (name == "MIN" || name == "Min") return AccmOp::kMin;
    if (name == "MAX" || name == "Max") return AccmOp::kMax;
    if (name == "PRODUCT" || name == "Product") return AccmOp::kProduct;
    return std::nullopt;
  }

  StatusOr<Type> ParseType() {
    ITG_ASSIGN_OR_RETURN(std::string head, ExpectAnyIdent());
    if (head == "Accm") {
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kLt));
      ITG_ASSIGN_OR_RETURN(Type inner, ParseType());
      if (inner.is_accumulator) return Error("nested Accm types");
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      ITG_ASSIGN_OR_RETURN(std::string op_name, ExpectAnyIdent());
      auto op = AccmOpFromName(op_name);
      if (!op) return Error("unknown accumulator op '" + op_name + "'");
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kGt));
      inner.is_accumulator = true;
      inner.accm_op = *op;
      return inner;
    }
    if (head == "Array") {
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kLt));
      ITG_ASSIGN_OR_RETURN(std::string elem, ExpectAnyIdent());
      auto scalar = ScalarFromName(elem);
      if (!scalar) return Error("unknown array element type '" + elem + "'");
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      if (Peek().kind != TokenKind::kNumber) return Error("expected size");
      int width = static_cast<int>(Next().number);
      if (width < 1) return Error("array size must be >= 1");
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kGt));
      Type type;
      type.scalar = *scalar;
      type.width = width;
      return type;
    }
    auto scalar = ScalarFromName(head);
    if (!scalar) return Error("unknown type '" + head + "'");
    Type type;
    type.scalar = *scalar;
    return type;
  }

  Status ParseAttrList(std::vector<AttrDecl>* out) {
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    while (true) {
      AttrDecl decl;
      decl.loc = Peek().loc;
      ITG_ASSIGN_OR_RETURN(decl.name, ExpectAnyIdent());
      if (Consume(TokenKind::kColon)) {
        ITG_ASSIGN_OR_RETURN(decl.type, ParseType());
      } else {
        if (!IsPredefinedAttr(decl.name)) {
          return Error("attribute '" + decl.name +
                       "' needs a type (only predefined attributes may "
                       "omit one)");
        }
        decl.predefined = true;
      }
      out->push_back(std::move(decl));
      if (!Consume(TokenKind::kComma)) break;
    }
    return Expect(TokenKind::kRParen);
  }

  // --- statements ------------------------------------------------------
  Status ParseBlock(std::vector<StmtPtr>* out) {
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kLBrace));
    while (Peek().kind != TokenKind::kRBrace) {
      if (AtEnd()) return Error("unterminated block");
      ITG_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStmt());
      out->push_back(std::move(stmt));
    }
    Next();  // consume '}'
    return Status::OK();
  }

  StatusOr<StmtPtr> ParseStmt() {
    if (PeekIdent("Let")) return ParseLet();
    if (PeekIdent("For")) return ParseFor();
    if (PeekIdent("If")) return ParseIf();
    return ParseAssignOrAccumulate();
  }

  StatusOr<StmtPtr> ParseLet() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kLet;
    stmt->loc = Peek().loc;
    Next();  // Let
    ITG_ASSIGN_OR_RETURN(stmt->let_name, ExpectAnyIdent());
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
    ITG_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  StatusOr<StmtPtr> ParseFor() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFor;
    stmt->loc = Peek().loc;
    Next();  // For
    bool parens = Consume(TokenKind::kLParen);
    ITG_ASSIGN_OR_RETURN(stmt->for_var, ExpectAnyIdent());
    if (parens) ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (!ConsumeIdent("in") && !ConsumeIdent("In")) {
      return Error("expected 'in'");
    }
    parens = Consume(TokenKind::kLParen);
    ITG_ASSIGN_OR_RETURN(stmt->for_source_var, ExpectAnyIdent());
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    ITG_ASSIGN_OR_RETURN(stmt->for_source_attr, ExpectAnyIdent());
    if (parens) ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    if (ConsumeIdent("Where")) {
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      ITG_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    ITG_RETURN_IF_ERROR(ParseBlock(&stmt->body));
    return stmt;
  }

  StatusOr<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->loc = Peek().loc;
    Next();  // If
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    ITG_ASSIGN_OR_RETURN(stmt->cond, ParseExpr());
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    ITG_RETURN_IF_ERROR(ParseBlock(&stmt->body));
    if (ConsumeIdent("Else")) {
      ITG_RETURN_IF_ERROR(ParseBlock(&stmt->else_body));
    }
    return stmt;
  }

  StatusOr<StmtPtr> ParseAssignOrAccumulate() {
    SourceLoc loc = Peek().loc;
    // Parse an lvalue path: ident (.ident)* optionally indexed; the final
    // `.Accumulate(...)` turns it into an Accumulate statement.
    ITG_ASSIGN_OR_RETURN(std::string first, ExpectAnyIdent());
    ExprPtr target;
    std::string pending_attr;
    bool have_attr = false;
    while (Consume(TokenKind::kDot)) {
      ITG_ASSIGN_OR_RETURN(std::string part, ExpectAnyIdent());
      if (part == "Accumulate") {
        // target is either `global` or `vertex.attr`.
        if (have_attr) {
          target = Expr::Attr(first, pending_attr, loc);
        } else {
          target = Expr::Var(first, loc);
        }
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kAccumulate;
        stmt->loc = loc;
        stmt->target = std::move(target);
        ITG_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        ITG_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
        ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        ITG_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
        return stmt;
      }
      if (have_attr) return Error("unexpected nested attribute access");
      pending_attr = part;
      have_attr = true;
    }
    if (have_attr) {
      target = Expr::Attr(first, pending_attr, loc);
    } else {
      target = Expr::Var(first, loc);
    }
    if (Consume(TokenKind::kLBracket)) {
      ITG_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      target = Expr::Index(std::move(target), std::move(index), loc);
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kAssign;
    stmt->loc = loc;
    stmt->target = std::move(target);
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
    ITG_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
    ITG_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  // --- expressions (precedence climbing) -------------------------------
  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    ITG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().kind == TokenKind::kOrOr) {
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }
  StatusOr<ExprPtr> ParseAnd() {
    ITG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (Peek().kind == TokenKind::kAndAnd) {
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }
  StatusOr<ExprPtr> ParseComparison() {
    ITG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kLt: op = BinaryOp::kLt; break;
        case TokenKind::kLe: op = BinaryOp::kLe; break;
        case TokenKind::kGt: op = BinaryOp::kGt; break;
        case TokenKind::kGe: op = BinaryOp::kGe; break;
        case TokenKind::kEqEq: op = BinaryOp::kEq; break;
        case TokenKind::kNe: op = BinaryOp::kNe; break;
        default: return lhs;
      }
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs), loc);
    }
  }
  StatusOr<ExprPtr> ParseAdditive() {
    ITG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Peek().kind == TokenKind::kPlus ||
           Peek().kind == TokenKind::kMinus) {
      BinaryOp op = (Peek().kind == TokenKind::kPlus) ? BinaryOp::kAdd
                                                      : BinaryOp::kSub;
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }
  StatusOr<ExprPtr> ParseMultiplicative() {
    ITG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().kind == TokenKind::kStar ||
           Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kPercent) {
      BinaryOp op = BinaryOp::kMul;
      if (Peek().kind == TokenKind::kSlash) op = BinaryOp::kDiv;
      if (Peek().kind == TokenKind::kPercent) op = BinaryOp::kMod;
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }
  StatusOr<ExprPtr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand), loc);
    }
    if (Peek().kind == TokenKind::kBang) {
      SourceLoc loc = Next().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNot, std::move(operand), loc);
    }
    return ParsePostfix();
  }
  StatusOr<ExprPtr> ParsePostfix() {
    ITG_ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    while (Consume(TokenKind::kLBracket)) {
      SourceLoc loc = Peek().loc;
      ITG_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      expr = Expr::Index(std::move(expr), std::move(index), loc);
    }
    return expr;
  }
  StatusOr<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kNumber) {
      Next();
      return Expr::Literal(tok.number, /*is_bool=*/false, tok.loc);
    }
    if (tok.kind == TokenKind::kLParen) {
      Next();
      ITG_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
      ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return expr;
    }
    if (tok.kind == TokenKind::kIdent) {
      if (tok.text == "true" || tok.text == "false") {
        Next();
        return Expr::Literal(tok.text == "true" ? 1.0 : 0.0,
                             /*is_bool=*/true, tok.loc);
      }
      Next();
      std::string name = tok.text;
      // Call?
      if (Peek().kind == TokenKind::kLParen) {
        Next();
        std::vector<ExprPtr> args;
        if (Peek().kind != TokenKind::kRParen) {
          while (true) {
            ITG_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!Consume(TokenKind::kComma)) break;
          }
        }
        ITG_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return Expr::Call(name, std::move(args), tok.loc);
      }
      // Attribute access?
      if (Peek().kind == TokenKind::kDot) {
        Next();
        ITG_ASSIGN_OR_RETURN(std::string attr, ExpectAnyIdent());
        return Expr::Attr(name, attr, tok.loc);
      }
      return Expr::Var(name, tok.loc);
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::unique_ptr<Program>> Parse(const std::string& source) {
  ITG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

}  // namespace itg::lang
