#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>

namespace itg::lang {

namespace {

bool IsIdentStart(char c) { return std::isalpha(c) != 0 || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(c) != 0 || c == '_'; }

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto peek = [&](size_t ahead = 0) -> char {
    return (i + ahead < n) ? source[i + ahead] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    ++i;
  };
  auto push = [&](TokenKind kind, std::string text, SourceLoc loc) {
    tokens.push_back({kind, std::move(text), 0.0, loc});
  };

  while (i < n) {
    char c = peek();
    SourceLoc loc{line, column};
    if (std::isspace(c) != 0) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < n && !(peek() == '*' && peek(1) == '/')) advance();
      if (i + 1 >= n) {
        return Status::ParseError("unterminated block comment at line " +
                                  std::to_string(loc.line));
      }
      advance();
      advance();
      continue;
    }
    if (IsIdentStart(c)) {
      std::string text;
      while (i < n && IsIdentChar(peek())) {
        text.push_back(peek());
        advance();
      }
      push(TokenKind::kIdent, std::move(text), loc);
      continue;
    }
    if (std::isdigit(c) != 0 ||
        (c == '.' && std::isdigit(peek(1)) != 0)) {
      std::string text;
      while (i < n && (std::isdigit(peek()) != 0 || peek() == '.' ||
                       peek() == 'e' || peek() == 'E' ||
                       ((peek() == '+' || peek() == '-') &&
                        (text.ends_with("e") || text.ends_with("E"))))) {
        text.push_back(peek());
        advance();
      }
      Token tok{TokenKind::kNumber, text, std::strtod(text.c_str(), nullptr),
                loc};
      tokens.push_back(std::move(tok));
      continue;
    }
    auto two = [&](char a, char b) { return c == a && peek(1) == b; };
    if (two('=', '=')) { advance(); advance(); push(TokenKind::kEqEq, "==", loc); continue; }
    if (two('!', '=')) { advance(); advance(); push(TokenKind::kNe, "!=", loc); continue; }
    if (two('<', '=')) { advance(); advance(); push(TokenKind::kLe, "<=", loc); continue; }
    if (two('>', '=')) { advance(); advance(); push(TokenKind::kGe, ">=", loc); continue; }
    if (two('&', '&')) { advance(); advance(); push(TokenKind::kAndAnd, "&&", loc); continue; }
    if (two('|', '|')) { advance(); advance(); push(TokenKind::kOrOr, "||", loc); continue; }
    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ',': kind = TokenKind::kComma; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ':': kind = TokenKind::kColon; break;
      case '.': kind = TokenKind::kDot; break;
      case '<': kind = TokenKind::kLt; break;
      case '>': kind = TokenKind::kGt; break;
      case '=': kind = TokenKind::kAssign; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '%': kind = TokenKind::kPercent; break;
      case '!': kind = TokenKind::kBang; break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at line " +
                                  std::to_string(line) + ":" +
                                  std::to_string(column));
    }
    advance();
    push(kind, std::string(1, c), loc);
  }
  tokens.push_back({TokenKind::kEof, "", 0.0, {line, column}});
  return tokens;
}

}  // namespace itg::lang
