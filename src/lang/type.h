#ifndef ITG_LANG_TYPE_H_
#define ITG_LANG_TYPE_H_

#include <string>

namespace itg::lang {

/// The five primitive types of L_NGA (§3).
enum class ScalarType { kBool, kInt, kLong, kFloat, kDouble };

/// Accumulator operations. Sum and Product form Abelian groups
/// (invertible — deletions handled by accumulating the inverse); Min and
/// Max are Abelian monoids (deletions may require recomputation, §5.4).
enum class AccmOp { kSum, kMin, kMax, kProduct };

/// Whether `op` has an inverse (Abelian group vs. plain monoid).
inline bool IsAbelianGroup(AccmOp op) {
  return op == AccmOp::kSum || op == AccmOp::kProduct;
}

/// Identity element of `op`.
inline double AccmIdentity(AccmOp op) {
  switch (op) {
    case AccmOp::kSum: return 0.0;
    case AccmOp::kMin: return 1e300;
    case AccmOp::kMax: return -1e300;
    case AccmOp::kProduct: return 1.0;
  }
  return 0.0;
}

/// A declared L_NGA type: a scalar, an Array<scalar, N> (width > 1), or
/// an accumulator Accm<scalar|array, op>.
struct Type {
  ScalarType scalar = ScalarType::kDouble;
  int width = 1;                  // 1 for scalars, N for Array<_, N>
  bool is_accumulator = false;
  AccmOp accm_op = AccmOp::kSum;  // valid when is_accumulator

  bool IsArray() const { return width > 1; }
  bool IsBool() const { return scalar == ScalarType::kBool && width == 1; }

  std::string ToString() const;

  friend bool operator==(const Type&, const Type&) = default;
};

inline const char* ScalarTypeName(ScalarType t) {
  switch (t) {
    case ScalarType::kBool: return "bool";
    case ScalarType::kInt: return "int";
    case ScalarType::kLong: return "long";
    case ScalarType::kFloat: return "float";
    case ScalarType::kDouble: return "double";
  }
  return "?";
}

inline const char* AccmOpName(AccmOp op) {
  switch (op) {
    case AccmOp::kSum: return "SUM";
    case AccmOp::kMin: return "MIN";
    case AccmOp::kMax: return "MAX";
    case AccmOp::kProduct: return "PRODUCT";
  }
  return "?";
}

inline std::string Type::ToString() const {
  std::string base = ScalarTypeName(scalar);
  if (IsArray()) {
    base = "Array<" + base + ", " + std::to_string(width) + ">";
  }
  if (is_accumulator) {
    base = "Accm<" + base + ", " + AccmOpName(accm_op) + ">";
  }
  return base;
}

/// Applies `op` to an accumulated value in place.
inline void AccmApply(AccmOp op, double* acc, double value) {
  switch (op) {
    case AccmOp::kSum: *acc += value; break;
    case AccmOp::kMin: if (value < *acc) *acc = value; break;
    case AccmOp::kMax: if (value > *acc) *acc = value; break;
    case AccmOp::kProduct: *acc *= value; break;
  }
}

/// Inverse element for Abelian-group ops (Sum: −x, Product: 1/x).
inline double AccmInverse(AccmOp op, double value) {
  switch (op) {
    case AccmOp::kSum: return -value;
    case AccmOp::kProduct: return 1.0 / value;
    default: return value;  // monoids have no inverse; callers must check
  }
}

}  // namespace itg::lang

#endif  // ITG_LANG_TYPE_H_
