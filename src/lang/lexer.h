#ifndef ITG_LANG_LEXER_H_
#define ITG_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lang/ast.h"

namespace itg::lang {

enum class TokenKind {
  kIdent,
  kNumber,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kColon, kDot,
  kLt, kLe, kGt, kGe, kEqEq, kNe, kAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAndAnd, kOrOr, kBang,
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  double number = 0.0;
  SourceLoc loc;
};

/// Tokenizes an L_NGA source string. `//` line comments and `/* */` block
/// comments are skipped. Keywords are returned as kIdent tokens; the
/// parser distinguishes them (L_NGA keywords are not reserved as
/// identifiers except where ambiguous).
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace itg::lang

#endif  // ITG_LANG_LEXER_H_
