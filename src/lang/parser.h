#ifndef ITG_LANG_PARSER_H_
#define ITG_LANG_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace itg::lang {

/// Parses an L_NGA program.
///
/// The concrete syntax follows Figure 5 of the paper with one
/// regularization: UDF bodies and the bodies of `For` / `If` are brace
/// delimited (the paper's figures rely on indentation). Example:
///
///     Vertex (id, active, out_nbrs, out_degree,
///             rank: float, sum: Accm<float, SUM>)
///
///     Initialize (u) {
///       u.rank = 1;
///       u.active = true;
///     }
///     Traverse (u) {
///       Let val = u.rank / u.out_degree;
///       For v in u.out_nbrs {
///         v.sum.Accumulate(val);
///       }
///     }
///     Update (u) {
///       Let val = 0.15 / V + 0.85 * u.sum;
///       If (Abs(val - u.rank) > 0.001) {
///         u.rank = val;
///         u.active = true;
///       }
///     }
///
/// `V` and `E` are builtin globals bound to |V| and |E|.
StatusOr<std::unique_ptr<Program>> Parse(const std::string& source);

}  // namespace itg::lang

#endif  // ITG_LANG_PARSER_H_
