#include "lang/sema.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace itg::lang {

namespace {

Status ErrorAt(SourceLoc loc, const std::string& msg) {
  return Status::CompileError(msg + " (line " + std::to_string(loc.line) +
                              ")");
}

bool IsNbrsAttr(const std::string& name) {
  return name == "nbrs" || name == "in_nbrs" || name == "out_nbrs";
}

Type PredefinedType(const std::string& name) {
  Type t;
  if (name == "id") {
    t.scalar = ScalarType::kLong;
  } else if (name == "active") {
    t.scalar = ScalarType::kBool;
  } else {
    t.scalar = ScalarType::kInt;  // degree family
  }
  return t;
}

enum class UdfKind { kInitialize, kTraverse, kUpdate };

class Analyzer {
 public:
  explicit Analyzer(Program* program) : program_(program) {}

  StatusOr<ProgramInfo> Run() {
    ITG_RETURN_IF_ERROR(CheckDecls());
    ITG_RETURN_IF_ERROR(AnalyzeUdf(&program_->initialize, UdfKind::kInitialize,
                                   &info_.init_let_slots));
    ITG_RETURN_IF_ERROR(AnalyzeUdf(&program_->traverse, UdfKind::kTraverse,
                                   &info_.traverse_let_slots));
    ITG_RETURN_IF_ERROR(AnalyzeUdf(&program_->update, UdfKind::kUpdate,
                                   &info_.update_let_slots));
    return info_;
  }

 private:
  // ---- declarations ----------------------------------------------------
  Status CheckDecls() {
    for (size_t i = 0; i < program_->vertex_attrs.size(); ++i) {
      AttrDecl& decl = program_->vertex_attrs[i];
      if (vertex_attr_index_.contains(decl.name)) {
        return ErrorAt(decl.loc, "duplicate vertex attribute '" + decl.name +
                                     "'");
      }
      if (decl.predefined && !IsNbrsAttr(decl.name)) {
        decl.type = PredefinedType(decl.name);
      }
      vertex_attr_index_[decl.name] = static_cast<int>(i);
    }
    for (size_t i = 0; i < program_->globals.size(); ++i) {
      AttrDecl& decl = program_->globals[i];
      if (global_index_.contains(decl.name) ||
          vertex_attr_index_.contains(decl.name)) {
        return ErrorAt(decl.loc, "duplicate global '" + decl.name + "'");
      }
      if (decl.name == "V" || decl.name == "E") {
        return ErrorAt(decl.loc, "'" + decl.name + "' is a builtin");
      }
      global_index_[decl.name] = static_cast<int>(i);
    }
    return Status::OK();
  }

  std::optional<int> VertexAttr(const std::string& name) const {
    auto it = vertex_attr_index_.find(name);
    if (it == vertex_attr_index_.end()) return std::nullopt;
    return it->second;
  }

  // ---- scopes ------------------------------------------------------------
  struct Scope {
    // vertex variable name -> depth (0 = UDF parameter).
    std::map<std::string, int> vertex_vars;
    // Let name -> (slot, type).
    std::map<std::string, std::pair<int, Type>> lets;
    int next_let_slot = 0;
    int depth = 0;  // current loop depth
  };

  // ---- UDF analysis -------------------------------------------------------
  Status AnalyzeUdf(Udf* udf, UdfKind kind, int* let_slots) {
    Scope scope;
    scope.vertex_vars[udf->param] = 0;
    kind_ = kind;
    ITG_RETURN_IF_ERROR(AnalyzeBlock(udf->body, &scope));
    *let_slots = scope.next_let_slot;
    return Status::OK();
  }

  Status AnalyzeBlock(std::vector<StmtPtr>& stmts, Scope* scope) {
    for (StmtPtr& stmt : stmts) {
      ITG_RETURN_IF_ERROR(AnalyzeStmt(stmt.get(), scope));
    }
    return Status::OK();
  }

  Status AnalyzeStmt(Stmt* stmt, Scope* scope) {
    switch (stmt->kind) {
      case Stmt::Kind::kLet: {
        ITG_RETURN_IF_ERROR(AnalyzeExpr(stmt->value.get(), scope));
        if (scope->lets.contains(stmt->let_name) ||
            scope->vertex_vars.contains(stmt->let_name)) {
          return ErrorAt(stmt->loc,
                         "redefinition of '" + stmt->let_name + "'");
        }
        stmt->let_slot = scope->next_let_slot++;
        scope->lets[stmt->let_name] = {stmt->let_slot, stmt->value->type};
        return Status::OK();
      }
      case Stmt::Kind::kFor:
        return AnalyzeFor(stmt, scope);
      case Stmt::Kind::kIf: {
        ITG_RETURN_IF_ERROR(AnalyzeExpr(stmt->cond.get(), scope));
        if (!stmt->cond->type.IsBool()) {
          return ErrorAt(stmt->loc, "If condition must be bool");
        }
        // Each branch gets its own Let scope but shares slot numbering.
        Scope then_scope = *scope;
        ITG_RETURN_IF_ERROR(AnalyzeBlock(stmt->body, &then_scope));
        Scope else_scope = *scope;
        else_scope.next_let_slot = then_scope.next_let_slot;
        ITG_RETURN_IF_ERROR(AnalyzeBlock(stmt->else_body, &else_scope));
        scope->next_let_slot = else_scope.next_let_slot;
        return Status::OK();
      }
      case Stmt::Kind::kAssign:
        return AnalyzeAssign(stmt, scope);
      case Stmt::Kind::kAccumulate:
        return AnalyzeAccumulate(stmt, scope);
    }
    return Status::Internal("unknown statement kind");
  }

  Status AnalyzeFor(Stmt* stmt, Scope* scope) {
    if (kind_ != UdfKind::kTraverse) {
      return ErrorAt(stmt->loc, "For loops are only allowed in Traverse");
    }
    auto src = scope->vertex_vars.find(stmt->for_source_var);
    if (src == scope->vertex_vars.end()) {
      return ErrorAt(stmt->loc, "'" + stmt->for_source_var +
                                    "' is not a vertex variable in scope");
    }
    if (src->second != scope->depth) {
      return ErrorAt(stmt->loc,
                     "For must iterate the neighbors of the immediately "
                     "enclosing vertex variable (walks are chains)");
    }
    if (!IsNbrsAttr(stmt->for_source_attr)) {
      return ErrorAt(stmt->loc, "For source must be nbrs/in_nbrs/out_nbrs");
    }
    if (!VertexAttr(stmt->for_source_attr)) {
      return ErrorAt(stmt->loc, "'" + stmt->for_source_attr +
                                    "' is not declared in Vertex(...)");
    }
    if (scope->vertex_vars.contains(stmt->for_var) ||
        scope->lets.contains(stmt->for_var)) {
      return ErrorAt(stmt->loc, "redefinition of '" + stmt->for_var + "'");
    }
    Scope inner = *scope;
    inner.depth = scope->depth + 1;
    inner.vertex_vars[stmt->for_var] = inner.depth;
    stmt->for_depth = inner.depth;
    info_.traverse_depth = std::max(info_.traverse_depth, inner.depth);
    if (stmt->where != nullptr) {
      ITG_RETURN_IF_ERROR(AnalyzeExpr(stmt->where.get(), &inner));
      if (!stmt->where->type.IsBool()) {
        return ErrorAt(stmt->loc, "Where condition must be bool");
      }
    }
    ITG_RETURN_IF_ERROR(AnalyzeBlock(stmt->body, &inner));
    scope->next_let_slot = inner.next_let_slot;
    return Status::OK();
  }

  Status AnalyzeAssign(Stmt* stmt, Scope* scope) {
    if (kind_ == UdfKind::kTraverse) {
      return ErrorAt(stmt->loc,
                     "Assign is not allowed in Traverse (use Accumulate)");
    }
    ITG_RETURN_IF_ERROR(AnalyzeExpr(stmt->value.get(), scope));
    Expr* target = stmt->target.get();
    Expr* base = target;
    bool indexed = false;
    if (target->kind == Expr::Kind::kIndex) {
      base = target->children[0].get();
      indexed = true;
      ITG_RETURN_IF_ERROR(AnalyzeExpr(target->children[1].get(), scope));
    }
    if (base->kind == Expr::Kind::kAttrRef) {
      auto var = scope->vertex_vars.find(base->name);
      if (var == scope->vertex_vars.end() || var->second != 0) {
        return ErrorAt(stmt->loc,
                       "can only assign attributes of the UDF parameter");
      }
      auto attr = VertexAttr(base->attr);
      if (!attr) {
        return ErrorAt(stmt->loc, "unknown attribute '" + base->attr + "'");
      }
      const Type& attr_type = program_->vertex_attrs[*attr].type;
      if (attr_type.is_accumulator) {
        return ErrorAt(stmt->loc,
                       "cannot assign accumulator '" + base->attr + "'");
      }
      if (IsNbrsAttr(base->attr)) {
        return ErrorAt(stmt->loc, "cannot assign adjacency lists");
      }
      if (indexed && !attr_type.IsArray()) {
        return ErrorAt(stmt->loc, "cannot index non-array attribute '" +
                                      base->attr + "'");
      }
      base->resolved_attr = *attr;
      base->vertex_depth = 0;
      base->type = attr_type;
      int target_width = indexed ? 1 : attr_type.width;
      if (stmt->value->type.width != target_width &&
          stmt->value->type.width != 1) {
        return ErrorAt(stmt->loc, "width mismatch in assignment");
      }
      return Status::OK();
    }
    if (base->kind == Expr::Kind::kVarRef) {
      auto git = global_index_.find(base->name);
      if (git == global_index_.end()) {
        return ErrorAt(stmt->loc, "unknown assignment target '" +
                                      base->name + "'");
      }
      const Type& gtype = program_->globals[git->second].type;
      if (gtype.is_accumulator) {
        return ErrorAt(stmt->loc, "cannot assign global accumulator");
      }
      base->var_kind = VarKind::kGlobal;
      base->resolved_index = git->second;
      base->type = gtype;
      return Status::OK();
    }
    return ErrorAt(stmt->loc, "invalid assignment target");
  }

  Status AnalyzeAccumulate(Stmt* stmt, Scope* scope) {
    if (kind_ != UdfKind::kTraverse) {
      return ErrorAt(stmt->loc,
                     "Accumulate is only allowed in Traverse (use Assign "
                     "in Initialize/Update)");
    }
    ITG_RETURN_IF_ERROR(AnalyzeExpr(stmt->value.get(), scope));
    Expr* target = stmt->target.get();
    if (target->kind == Expr::Kind::kAttrRef) {
      auto var = scope->vertex_vars.find(target->name);
      if (var == scope->vertex_vars.end()) {
        return ErrorAt(stmt->loc, "'" + target->name +
                                      "' is not a vertex variable");
      }
      auto attr = VertexAttr(target->attr);
      if (!attr) {
        return ErrorAt(stmt->loc, "unknown attribute '" + target->attr + "'");
      }
      const Type& attr_type = program_->vertex_attrs[*attr].type;
      if (!attr_type.is_accumulator) {
        return ErrorAt(stmt->loc, "Accumulate target '" + target->attr +
                                      "' is not an accumulator");
      }
      if (stmt->value->type.width != attr_type.width &&
          stmt->value->type.width != 1) {
        return ErrorAt(stmt->loc, "width mismatch in Accumulate");
      }
      target->resolved_attr = *attr;
      target->vertex_depth = var->second;
      target->type = attr_type;
      return Status::OK();
    }
    if (target->kind == Expr::Kind::kVarRef) {
      auto git = global_index_.find(target->name);
      if (git == global_index_.end()) {
        return ErrorAt(stmt->loc, "unknown accumulator '" + target->name +
                                      "'");
      }
      const Type& gtype = program_->globals[git->second].type;
      if (!gtype.is_accumulator) {
        return ErrorAt(stmt->loc, "global '" + target->name +
                                      "' is not an accumulator");
      }
      if (stmt->value->type.width != gtype.width &&
          stmt->value->type.width != 1) {
        return ErrorAt(stmt->loc, "width mismatch in Accumulate");
      }
      target->var_kind = VarKind::kGlobal;
      target->resolved_index = git->second;
      target->type = gtype;
      return Status::OK();
    }
    return ErrorAt(stmt->loc, "invalid Accumulate target");
  }

  // ---- expressions ---------------------------------------------------------
  Status AnalyzeExpr(Expr* expr, Scope* scope) {
    switch (expr->kind) {
      case Expr::Kind::kLiteral: {
        expr->type.scalar = expr->literal_is_bool ? ScalarType::kBool
                                                  : ScalarType::kDouble;
        return Status::OK();
      }
      case Expr::Kind::kVarRef: {
        auto vit = scope->vertex_vars.find(expr->name);
        if (vit != scope->vertex_vars.end()) {
          expr->var_kind = VarKind::kVertexVar;
          expr->resolved_index = vit->second;
          expr->type.scalar = ScalarType::kLong;  // a vertex denotes its id
          return Status::OK();
        }
        auto lit = scope->lets.find(expr->name);
        if (lit != scope->lets.end()) {
          expr->var_kind = VarKind::kLet;
          expr->resolved_index = lit->second.first;
          expr->type = lit->second.second;
          return Status::OK();
        }
        auto git = global_index_.find(expr->name);
        if (git != global_index_.end()) {
          const Type& gtype = program_->globals[git->second].type;
          if (gtype.is_accumulator && kind_ != UdfKind::kUpdate) {
            return ErrorAt(expr->loc,
                           "global accumulators are only readable in Update");
          }
          expr->var_kind = VarKind::kGlobal;
          expr->resolved_index = git->second;
          expr->type = gtype;
          expr->type.is_accumulator = false;  // reads see the plain value
          return Status::OK();
        }
        if (expr->name == "V" || expr->name == "E") {
          expr->var_kind = VarKind::kBuiltin;
          expr->resolved_index = (expr->name == "V") ? 0 : 1;
          expr->type.scalar = ScalarType::kLong;
          return Status::OK();
        }
        return ErrorAt(expr->loc, "unknown identifier '" + expr->name + "'");
      }
      case Expr::Kind::kAttrRef: {
        auto vit = scope->vertex_vars.find(expr->name);
        if (vit == scope->vertex_vars.end()) {
          return ErrorAt(expr->loc, "'" + expr->name +
                                        "' is not a vertex variable");
        }
        auto attr = VertexAttr(expr->attr);
        if (!attr) {
          return ErrorAt(expr->loc,
                         "unknown attribute '" + expr->attr + "'");
        }
        if (IsNbrsAttr(expr->attr)) {
          return ErrorAt(expr->loc,
                         "adjacency lists can only appear as For sources");
        }
        const Type& attr_type = program_->vertex_attrs[*attr].type;
        if (expr->attr != "id" && vit->second != 0) {
          return ErrorAt(
              expr->loc,
              "attribute reads (other than id) are restricted to the UDF "
              "parameter; the compiled Walk keeps only vs_1 as an operand");
        }
        if (attr_type.is_accumulator && kind_ != UdfKind::kUpdate) {
          return ErrorAt(expr->loc,
                         "accumulators are write-only outside Update");
        }
        expr->resolved_attr = *attr;
        expr->vertex_depth = vit->second;
        expr->type = attr_type;
        expr->type.is_accumulator = false;
        return Status::OK();
      }
      case Expr::Kind::kBinary: {
        ITG_RETURN_IF_ERROR(AnalyzeExpr(expr->children[0].get(), scope));
        ITG_RETURN_IF_ERROR(AnalyzeExpr(expr->children[1].get(), scope));
        const Type& lhs = expr->children[0]->type;
        const Type& rhs = expr->children[1]->type;
        if (IsLogical(expr->binary_op)) {
          if (!lhs.IsBool() || !rhs.IsBool()) {
            return ErrorAt(expr->loc, "logical ops need bool operands");
          }
          expr->type.scalar = ScalarType::kBool;
          return Status::OK();
        }
        if (IsComparison(expr->binary_op)) {
          if (lhs.IsArray() || rhs.IsArray()) {
            return ErrorAt(expr->loc, "cannot compare arrays");
          }
          expr->type.scalar = ScalarType::kBool;
          return Status::OK();
        }
        // Arithmetic: element-wise with scalar broadcast.
        if (lhs.IsArray() && rhs.IsArray() && lhs.width != rhs.width) {
          return ErrorAt(expr->loc, "array width mismatch");
        }
        expr->type.scalar = ScalarType::kDouble;
        expr->type.width = std::max(lhs.width, rhs.width);
        return Status::OK();
      }
      case Expr::Kind::kUnary: {
        ITG_RETURN_IF_ERROR(AnalyzeExpr(expr->children[0].get(), scope));
        const Type& operand = expr->children[0]->type;
        if (expr->unary_op == UnaryOp::kNot) {
          if (!operand.IsBool()) {
            return ErrorAt(expr->loc, "! needs a bool operand");
          }
          expr->type.scalar = ScalarType::kBool;
        } else {
          expr->type = operand;
          expr->type.scalar = ScalarType::kDouble;
        }
        return Status::OK();
      }
      case Expr::Kind::kCall: {
        for (auto& arg : expr->children) {
          ITG_RETURN_IF_ERROR(AnalyzeExpr(arg.get(), scope));
        }
        size_t arity;
        if (expr->callee == "Abs" || expr->callee == "Floor" ||
            expr->callee == "MaxElem") {
          arity = 1;
        } else if (expr->callee == "Min" || expr->callee == "Max") {
          arity = 2;
        } else {
          return ErrorAt(expr->loc, "unknown function '" + expr->callee +
                                        "'");
        }
        if (expr->children.size() != arity) {
          return ErrorAt(expr->loc, "wrong arity for '" + expr->callee + "'");
        }
        expr->type.scalar = ScalarType::kDouble;
        // MaxElem reduces an array to a scalar; the rest are element-wise.
        expr->type.width =
            (expr->callee == "MaxElem") ? 1 : expr->children[0]->type.width;
        return Status::OK();
      }
      case Expr::Kind::kIndex: {
        ITG_RETURN_IF_ERROR(AnalyzeExpr(expr->children[0].get(), scope));
        ITG_RETURN_IF_ERROR(AnalyzeExpr(expr->children[1].get(), scope));
        if (!expr->children[0]->type.IsArray()) {
          return ErrorAt(expr->loc, "indexing a non-array");
        }
        if (expr->children[1]->type.IsArray()) {
          return ErrorAt(expr->loc, "array index must be scalar");
        }
        expr->type.scalar = expr->children[0]->type.scalar;
        expr->type.width = 1;
        return Status::OK();
      }
    }
    return Status::Internal("unknown expression kind");
  }

  Program* program_;
  ProgramInfo info_;
  UdfKind kind_ = UdfKind::kInitialize;
  std::map<std::string, int> vertex_attr_index_;
  std::map<std::string, int> global_index_;
};

}  // namespace

StatusOr<ProgramInfo> Analyze(Program* program) {
  Analyzer analyzer(program);
  return analyzer.Run();
}

}  // namespace itg::lang
