#ifndef ITG_ALGOS_REFERENCE_H_
#define ITG_ALGOS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/csr.h"

namespace itg {

/// Native single-threaded reference implementations of the paper's six
/// analysis algorithms (§6.1), with semantics matching the L_NGA programs
/// in `algos/programs.h` exactly (same BSP activation rules, same
/// constants). They are the correctness oracles for the engine tests:
/// engine(DSL program, G) must equal reference(G), and the incremental
/// engine must equal the reference run on the mutated graph.

/// PageRank with the paper's update rule rank' = 0.15/|V| + 0.85·sum and
/// 0.001 activation threshold, run for `iterations` supersteps.
std::vector<double> RefPageRank(const Csr& graph, int iterations);

/// Label propagation (Zhu & Ghahramani style): each vertex carries a
/// distribution over `num_labels` labels seeded one-hot by (id mod L);
/// update is 0.15·seed + 0.85·(weighted neighbor average), activation on
/// L-infinity change > 0.001. Runs `iterations` supersteps.
std::vector<std::vector<double>> RefLabelProp(const Csr& graph,
                                              int num_labels, int iterations);

/// Quantized PageRank (the paper's integer-scaled protocol): values in
/// units of kQuantUnit, contribution = Floor(rank/deg), update rule
/// rank' = Floor(0.15·kQuantUnit/V + 0.85·sum), activation on any change.
std::vector<double> RefQuantizedPageRank(const Csr& graph, int iterations);

/// Quantized label propagation (same scaling, element-wise).
std::vector<std::vector<double>> RefQuantizedLabelProp(const Csr& graph,
                                                       int num_labels,
                                                       int iterations);

/// Weakly connected components via min-id propagation until convergence.
/// The input should be symmetrized (the engine models undirected graphs
/// as edge pairs).
std::vector<VertexId> RefWcc(const Csr& graph);

/// BFS depth from `root` via min-dist propagation until convergence.
/// Unreachable vertices keep kBfsInfinity.
inline constexpr double kBfsInfinity = 1e18;
std::vector<double> RefBfs(const Csr& graph, VertexId root);

/// Triangle count with the ordering constraint u1 < u2 < u3 (each
/// triangle counted once) over a symmetrized simple graph.
uint64_t RefTriangleCount(const Csr& graph);

/// Per-vertex triangle counts (triangles containing each vertex).
std::vector<uint64_t> RefPerVertexTriangles(const Csr& graph);

/// Local clustering coefficient: 2·tri(v) / (deg(v)·(deg(v)−1)).
std::vector<double> RefLcc(const Csr& graph);

/// The vertex with the largest out-degree (the paper's BFS root choice).
VertexId MaxDegreeVertex(const Csr& graph);

}  // namespace itg

#endif  // ITG_ALGOS_REFERENCE_H_
