#include "algos/reference.h"

#include <algorithm>
#include <cmath>

namespace itg {

std::vector<double> RefPageRank(const Csr& graph, int iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<double> rank(static_cast<size_t>(n), 1.0);
  std::vector<char> active(static_cast<size_t>(n), 1);
  std::vector<double> sum(static_cast<size_t>(n));
  std::vector<char> touched(static_cast<size_t>(n));
  for (int iter = 0; iter < iterations; ++iter) {
    bool any_active = std::any_of(active.begin(), active.end(),
                                  [](char a) { return a != 0; });
    if (!any_active) break;
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(touched.begin(), touched.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      auto nbrs = graph.Neighbors(u);
      if (nbrs.empty()) continue;
      double val = rank[u] / static_cast<double>(nbrs.size());
      for (VertexId v : nbrs) {
        sum[v] += val;
        touched[v] = 1;
      }
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      double val = 0.15 / static_cast<double>(n) + 0.85 * sum[v];
      if (std::abs(val - rank[v]) > 0.001) {
        rank[v] = val;
        active[v] = 1;
      }
    }
  }
  return rank;
}

std::vector<std::vector<double>> RefLabelProp(const Csr& graph,
                                              int num_labels,
                                              int iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<std::vector<double>> labels(static_cast<size_t>(n));
  for (VertexId u = 0; u < n; ++u) {
    labels[u].assign(static_cast<size_t>(num_labels), 0.0);
    labels[u][static_cast<size_t>(u % num_labels)] = 1.0;
  }
  std::vector<char> active(static_cast<size_t>(n), 1);
  std::vector<std::vector<double>> sum(static_cast<size_t>(n));
  std::vector<char> touched(static_cast<size_t>(n));
  for (int iter = 0; iter < iterations; ++iter) {
    bool any_active = std::any_of(active.begin(), active.end(),
                                  [](char a) { return a != 0; });
    if (!any_active) break;
    for (VertexId v = 0; v < n; ++v) {
      sum[v].assign(static_cast<size_t>(num_labels), 0.0);
    }
    std::fill(touched.begin(), touched.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      auto nbrs = graph.Neighbors(u);
      if (nbrs.empty()) continue;
      double inv = 1.0 / static_cast<double>(nbrs.size());
      for (VertexId v : nbrs) {
        for (int l = 0; l < num_labels; ++l) {
          sum[v][l] += labels[u][l] * inv;
        }
        touched[v] = 1;
      }
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      double max_change = 0.0;
      for (int l = 0; l < num_labels; ++l) {
        double seed = (v % num_labels == l) ? 1.0 : 0.0;
        double val = 0.15 * seed + 0.85 * sum[v][l];
        max_change = std::max(max_change, std::abs(val - labels[v][l]));
        labels[v][l] = val;
      }
      if (max_change > 0.001) active[v] = 1;
    }
  }
  return labels;
}

std::vector<double> RefQuantizedPageRank(const Csr& graph, int iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<double> rank(static_cast<size_t>(n), 1.0);
  std::vector<char> active(static_cast<size_t>(n), 1);
  std::vector<double> sum(static_cast<size_t>(n));
  std::vector<char> touched(static_cast<size_t>(n));
  for (int iter = 0; iter < iterations; ++iter) {
    bool any_active = std::any_of(active.begin(), active.end(),
                                  [](char a) { return a != 0; });
    if (!any_active) break;
    std::fill(sum.begin(), sum.end(), 0.0);
    std::fill(touched.begin(), touched.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      auto nbrs = graph.Neighbors(u);
      if (nbrs.empty()) continue;
      double val = rank[u] / static_cast<double>(nbrs.size());
      for (VertexId v : nbrs) {
        sum[v] += val;
        touched[v] = 1;
      }
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      double val = std::floor((0.15 / static_cast<double>(n) +
                               0.85 * sum[v]) * 1000.0) / 1000.0;
      if (std::abs(val - rank[v]) > 0.001) {
        rank[v] = val;
        active[v] = 1;
      }
    }
  }
  return rank;
}

std::vector<std::vector<double>> RefQuantizedLabelProp(const Csr& graph,
                                                       int num_labels,
                                                       int iterations) {
  const VertexId n = graph.num_vertices();
  std::vector<std::vector<double>> labels(static_cast<size_t>(n));
  for (VertexId u = 0; u < n; ++u) {
    labels[u].assign(static_cast<size_t>(num_labels), 0.0);
    labels[u][static_cast<size_t>(u % num_labels)] = 1.0;
  }
  std::vector<char> active(static_cast<size_t>(n), 1);
  std::vector<std::vector<double>> sum(static_cast<size_t>(n));
  std::vector<char> touched(static_cast<size_t>(n));
  for (int iter = 0; iter < iterations; ++iter) {
    bool any_active = std::any_of(active.begin(), active.end(),
                                  [](char a) { return a != 0; });
    if (!any_active) break;
    for (VertexId v = 0; v < n; ++v) {
      sum[v].assign(static_cast<size_t>(num_labels), 0.0);
    }
    std::fill(touched.begin(), touched.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      auto nbrs = graph.Neighbors(u);
      if (nbrs.empty()) continue;
      double deg = static_cast<double>(nbrs.size());
      for (VertexId v : nbrs) {
        for (int l = 0; l < num_labels; ++l) {
          sum[v][l] += labels[u][l] / deg;
        }
        touched[v] = 1;
      }
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      double max_change = 0.0;
      std::vector<double> fresh(static_cast<size_t>(num_labels));
      for (int l = 0; l < num_labels; ++l) {
        double seed = (v % num_labels == l) ? 1.0 : 0.0;
        fresh[l] = std::floor((0.15 * seed + 0.85 * sum[v][l]) * 1000.0) /
                   1000.0;
        max_change = std::max(max_change, std::abs(fresh[l] - labels[v][l]));
      }
      if (max_change > 0.001) {
        labels[v] = fresh;
        active[v] = 1;
      }
    }
  }
  return labels;
}

std::vector<VertexId> RefWcc(const Csr& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<VertexId> comp(static_cast<size_t>(n));
  for (VertexId u = 0; u < n; ++u) comp[u] = u;
  std::vector<char> active(static_cast<size_t>(n), 1);
  std::vector<VertexId> best(static_cast<size_t>(n));
  std::vector<char> touched(static_cast<size_t>(n));
  bool any = true;
  while (any) {
    any = false;
    std::fill(touched.begin(), touched.end(), 0);
    std::fill(best.begin(), best.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      for (VertexId v : graph.Neighbors(u)) {
        if (!touched[v] || comp[u] < best[v]) best[v] = comp[u];
        touched[v] = 1;
      }
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      if (best[v] < comp[v]) {
        comp[v] = best[v];
        active[v] = 1;
        any = true;
      }
    }
  }
  return comp;
}

std::vector<double> RefBfs(const Csr& graph, VertexId root) {
  const VertexId n = graph.num_vertices();
  std::vector<double> dist(static_cast<size_t>(n), kBfsInfinity);
  dist[root] = 0.0;
  std::vector<char> active(static_cast<size_t>(n), 0);
  active[root] = 1;
  std::vector<double> best(static_cast<size_t>(n));
  std::vector<char> touched(static_cast<size_t>(n));
  bool any = true;
  while (any) {
    any = false;
    std::fill(touched.begin(), touched.end(), 0);
    for (VertexId u = 0; u < n; ++u) {
      if (!active[u]) continue;
      double val = dist[u] + 1.0;
      for (VertexId v : graph.Neighbors(u)) {
        if (!touched[v] || val < best[v]) best[v] = val;
        touched[v] = 1;
      }
    }
    std::fill(active.begin(), active.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (!touched[v]) continue;
      if (best[v] < dist[v]) {
        dist[v] = best[v];
        active[v] = 1;
        any = true;
      }
    }
  }
  return dist;
}

uint64_t RefTriangleCount(const Csr& graph) {
  uint64_t count = 0;
  for (VertexId u1 = 0; u1 < graph.num_vertices(); ++u1) {
    for (VertexId u2 : graph.Neighbors(u1)) {
      if (u2 <= u1) continue;
      for (VertexId u3 : graph.Neighbors(u2)) {
        if (u3 <= u2) continue;
        if (graph.HasEdge(u3, u1)) ++count;
      }
    }
  }
  return count;
}

std::vector<uint64_t> RefPerVertexTriangles(const Csr& graph) {
  std::vector<uint64_t> tri(static_cast<size_t>(graph.num_vertices()), 0);
  for (VertexId u1 = 0; u1 < graph.num_vertices(); ++u1) {
    for (VertexId u2 : graph.Neighbors(u1)) {
      for (VertexId u3 : graph.Neighbors(u2)) {
        if (u3 <= u2) continue;
        if (graph.HasEdge(u3, u1)) ++tri[u1];
      }
    }
  }
  return tri;
}

std::vector<double> RefLcc(const Csr& graph) {
  std::vector<uint64_t> tri = RefPerVertexTriangles(graph);
  std::vector<double> lcc(tri.size(), 0.0);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    int64_t deg = graph.Degree(u);
    if (deg > 1) {
      lcc[u] = 2.0 * static_cast<double>(tri[u]) /
               (static_cast<double>(deg) * static_cast<double>(deg - 1));
    }
  }
  return lcc;
}

VertexId MaxDegreeVertex(const Csr& graph) {
  VertexId best = 0;
  for (VertexId u = 1; u < graph.num_vertices(); ++u) {
    if (graph.Degree(u) > graph.Degree(best)) best = u;
  }
  return best;
}

}  // namespace itg
