#ifndef ITG_ALGOS_PROGRAMS_H_
#define ITG_ALGOS_PROGRAMS_H_

#include <string>

#include "common/types.h"

namespace itg {

/// The paper's six analysis algorithms (§6.1) as L_NGA sources.
///
/// Group 1 (matrix-vector style, one-hop): PageRank, Label Propagation.
/// Group 2 (graph connectivity, one-hop, Min monoid): WCC, BFS.
/// Group 3 (multi-hop NGA): Triangle Counting, Local Clustering
/// Coefficient.
///
/// WCC / TC / LCC expect a symmetrized edge list (undirected analytics
/// are modeled as directed edge pairs, §4).

/// Figure 5 (left): PageRank with the 0.001 activation threshold.
std::string PageRankProgram();

/// Label propagation (Zhu & Ghahramani): per-vertex distributions over
/// `num_labels` labels, element-wise Sum array accumulator.
std::string LabelPropProgram(int num_labels);

/// Quantization grid of the Group-1 bench variants. The paper runs PR/LP
/// with integer attributes scaled by 1000 — "equivalent to rounding the
/// floating numbers down to three decimal places" (§6.1) — because DD
/// lacks float support. The rounding is also what gives incremental PR
/// its change deadband: value movements below one grid step do not
/// propagate. All systems (engine and baselines) apply the same rule:
/// rank' = Floor((0.15/V + 0.85·sum) · 1000) / 1000.
inline constexpr double kQuantScale = 1000.0;

/// PageRank over integers scaled by kQuantUnit (the paper's PR protocol).
std::string QuantizedPageRankProgram();

/// Label propagation over integers scaled by kQuantUnit.
std::string QuantizedLabelPropProgram(int num_labels);

/// Weakly connected components via Min-id propagation.
std::string WccProgram();

/// BFS depth from `root` via Min-dist propagation.
std::string BfsProgram(VertexId root);

/// Figure 5 (right): Triangle Counting with the u1 < u2 < u3 ordering and
/// the closing constraint u4 == u1.
std::string TriangleCountProgram();

/// Local clustering coefficient: per-vertex triangle counts (Sum vertex
/// accumulator at walk depth 3) plus the 2·tri/(deg·(deg−1)) update.
std::string LccProgram();

/// Resolves a builtin program name — pr | qpr | lp | wcc | bfs[:root] |
/// tc | lcc — to its L_NGA source and default superstep count (-1 =
/// until convergence). Returns false for unknown names, leaving the
/// outputs untouched. Shared by the lnga_run driver and the serving
/// daemon so both resolve "pr" to the identical plan (a prerequisite for
/// bit-identical digests between a standing view and a batch re-run).
bool NamedProgram(const std::string& name, std::string* source,
                  int* default_supersteps);

}  // namespace itg

#endif  // ITG_ALGOS_PROGRAMS_H_
