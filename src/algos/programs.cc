#include "algos/programs.h"

namespace itg {

std::string PageRankProgram() {
  return R"(
    Vertex (id, active, out_nbrs, out_degree,
            rank: float, sum: Accm<float, SUM>)

    Initialize (u) {
      u.rank = 1;
      u.active = true;
    }

    Traverse (u) {
      Let val = u.rank / u.out_degree;
      For v in u.out_nbrs {
        v.sum.Accumulate(val);
      }
    }

    Update (u) {
      Let val = 0.15 / V + 0.85 * u.sum;
      If (Abs(val - u.rank) > 0.001) {
        u.rank = val;
        u.active = true;
      }
    }
  )";
}

std::string LabelPropProgram(int num_labels) {
  const std::string l = std::to_string(num_labels);
  return R"(
    Vertex (id, active, out_nbrs, out_degree,
            labels: Array<float, )" + l + R"(>,
            seed: Array<float, )" + l + R"(>,
            sum: Accm<Array<float, )" + l + R"(>, SUM>)

    Initialize (u) {
      u.seed = 0;
      u.seed[u.id % )" + l + R"(] = 1;
      u.labels = u.seed;
      u.active = true;
    }

    Traverse (u) {
      Let val = u.labels / u.out_degree;
      For v in u.out_nbrs {
        v.sum.Accumulate(val);
      }
    }

    Update (u) {
      Let val = 0.15 * u.seed + 0.85 * u.sum;
      If (MaxElem(Abs(val - u.labels)) > 0.001) {
        u.active = true;
      }
      u.labels = val;
    }
  )";
}

std::string QuantizedPageRankProgram() {
  return R"(
    Vertex (id, active, out_nbrs, out_degree,
            rank: double, sum: Accm<double, SUM>)

    Initialize (u) {
      u.rank = 1;
      u.active = true;
    }

    Traverse (u) {
      Let val = u.rank / u.out_degree;
      For v in u.out_nbrs {
        v.sum.Accumulate(val);
      }
    }

    Update (u) {
      Let val = Floor((0.15 / V + 0.85 * u.sum) * 1000) / 1000;
      If (Abs(val - u.rank) > 0.001) {
        u.rank = val;
        u.active = true;
      }
    }
  )";
}

std::string QuantizedLabelPropProgram(int num_labels) {
  const std::string l = std::to_string(num_labels);
  return R"(
    Vertex (id, active, out_nbrs, out_degree,
            labels: Array<double, )" + l + R"(>,
            seed: Array<double, )" + l + R"(>,
            sum: Accm<Array<double, )" + l + R"(>, SUM>)

    Initialize (u) {
      u.seed = 0;
      u.seed[u.id % )" + l + R"(] = 1;
      u.labels = u.seed;
      u.active = true;
    }

    Traverse (u) {
      Let val = u.labels / u.out_degree;
      For v in u.out_nbrs {
        v.sum.Accumulate(val);
      }
    }

    Update (u) {
      Let val = Floor((0.15 * u.seed + 0.85 * u.sum) * 1000) / 1000;
      If (MaxElem(Abs(val - u.labels)) > 0.001) {
        u.labels = val;
        u.active = true;
      }
    }
  )";
}

std::string WccProgram() {
  return R"(
    Vertex (id, active, out_nbrs,
            comp: long, min_comp: Accm<long, MIN>)

    Initialize (u) {
      u.comp = u.id;
      u.active = true;
    }

    Traverse (u) {
      For v in u.out_nbrs {
        v.min_comp.Accumulate(u.comp);
      }
    }

    Update (u) {
      If (u.min_comp < u.comp) {
        u.comp = u.min_comp;
        u.active = true;
      }
    }
  )";
}

std::string BfsProgram(VertexId root) {
  return R"(
    Vertex (id, active, out_nbrs,
            dist: double, min_dist: Accm<double, MIN>)

    Initialize (u) {
      If (u.id == )" + std::to_string(root) + R"() {
        u.dist = 0;
        u.active = true;
      } Else {
        u.dist = 1e18;
      }
    }

    Traverse (u) {
      Let val = u.dist + 1;
      For v in u.out_nbrs {
        v.min_dist.Accumulate(val);
      }
    }

    Update (u) {
      If (u.min_dist < u.dist) {
        u.dist = u.min_dist;
        u.active = true;
      }
    }
  )";
}

std::string TriangleCountProgram() {
  return R"(
    Vertex (id, active, nbrs)
    GlobalVariable (cnts: Accm<long, SUM>)

    Initialize (u1) {
      u1.active = true;
    }

    Traverse (u1) {
      For u2 in u1.nbrs Where (u1 < u2) {
        For u3 in u2.nbrs Where (u2 < u3) {
          For u4 in u3.nbrs Where (u4 == u1) {
            cnts.Accumulate(1);
          }
        }
      }
    }

    Update (u1) {
    }
  )";
}

std::string LccProgram() {
  return R"(
    Vertex (id, active, nbrs, degree,
            tri: Accm<long, SUM>, lcc: double)

    Initialize (u1) {
      u1.active = true;
      u1.lcc = 0;
    }

    Traverse (u1) {
      For u2 in u1.nbrs {
        For u3 in u2.nbrs Where (u2 < u3) {
          For u4 in u3.nbrs Where (u4 == u1) {
            u1.tri.Accumulate(1);
          }
        }
      }
    }

    Update (u1) {
      If (u1.degree > 1) {
        u1.lcc = 2 * u1.tri / (u1.degree * (u1.degree - 1));
      } Else {
        u1.lcc = 0;
      }
    }
  )";
}

bool NamedProgram(const std::string& name, std::string* source,
                  int* default_supersteps) {
  if (name == "pr") {
    *source = PageRankProgram();
    *default_supersteps = 10;
    return true;
  }
  if (name == "qpr") {
    *source = QuantizedPageRankProgram();
    *default_supersteps = 10;
    return true;
  }
  if (name == "lp") {
    *source = LabelPropProgram(8);
    *default_supersteps = 10;
    return true;
  }
  if (name == "wcc") {
    *source = WccProgram();
    *default_supersteps = -1;
    return true;
  }
  if (name == "bfs") {
    *source = BfsProgram(0);
    *default_supersteps = -1;
    return true;
  }
  if (name.rfind("bfs:", 0) == 0) {
    *source = BfsProgram(std::stoll(name.substr(4)));
    *default_supersteps = -1;
    return true;
  }
  if (name == "tc") {
    *source = TriangleCountProgram();
    *default_supersteps = -1;
    return true;
  }
  if (name == "lcc") {
    *source = LccProgram();
    *default_supersteps = -1;
    return true;
  }
  return false;
}

}  // namespace itg
