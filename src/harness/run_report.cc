#include "harness/run_report.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/metrics.h"
#include "common/metrics_registry.h"

namespace itg {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendField(std::string* out, const char* key, uint64_t v,
                 bool trailing_comma = true) {
  AppendJsonString(out, key);
  out->push_back(':');
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
  if (trailing_comma) out->push_back(',');
}

}  // namespace

void RunReport::AddRun(const std::string& name, const RunStats& stats,
                       const std::vector<MachineStats>& machines,
                       uint64_t network_bytes,
                       const gsa::ExecutionProfile* profile) {
  Run run{name, stats, machines, network_bytes, false, {}};
  if (profile != nullptr) {
    run.has_profile = true;
    run.profile = *profile;
  }
  runs_.push_back(std::move(run));
}

void RunReport::AddResult(const std::string& name, double value) {
  results_.emplace_back(name, value);
}

std::string RunReport::ToJson() const {
  std::string out;
  out.reserve(4096);
  out.append("{\"schema_version\":9,\"binary\":");
  AppendJsonString(&out, binary_);
  out.append(",\"runs\":[");
  bool first = true;
  for (const Run& run : runs_) {
    if (!first) out.push_back(',');
    first = false;
    const RunStats& s = run.stats;
    out.append("{\"name\":");
    AppendJsonString(&out, run.name);
    out.push_back(',');
    AppendField(&out, "timestamp", static_cast<uint64_t>(s.timestamp));
    out.append("\"incremental\":");
    out.append(s.incremental ? "true," : "false,");
    AppendField(&out, "supersteps", static_cast<uint64_t>(s.supersteps));
    out.append("\"seconds\":");
    AppendDouble(&out, s.seconds);
    out.push_back(',');
    AppendField(&out, "read_bytes", s.read_bytes);
    AppendField(&out, "write_bytes", s.write_bytes);
    AppendField(&out, "network_bytes", run.network_bytes);
    AppendField(&out, "windows_loaded", s.windows_loaded);
    AppendField(&out, "edges_scanned", s.edges_scanned);
    AppendField(&out, "emissions_applied", s.emissions_applied);
    AppendField(&out, "recomputed_vertices", s.recomputed_vertices);
    out.append("\"delta_walks\":{");
    AppendField(&out, "enumerated", s.delta_walk_emissions);
    AppendField(&out, "pruned", s.delta_walks_pruned,
                /*trailing_comma=*/false);
    out.append("},");
    AppendField(&out, "threads", static_cast<uint64_t>(s.threads));
    AppendField(&out, "parallel_tasks", s.parallel_tasks);
    AppendField(&out, "steals", s.steals);
    AppendField(&out, "busy_nanos", s.busy_nanos);
    AppendField(&out, "critical_nanos", s.critical_nanos);
    AppendField(&out, "state_digest", s.state_digest);
    out.append("\"machines\":[");
    for (size_t m = 0; m < run.machines.size(); ++m) {
      if (m > 0) out.push_back(',');
      out.append("{\"seconds\":");
      AppendDouble(&out, run.machines[m].seconds);
      out.push_back(',');
      AppendField(&out, "network_bytes", run.machines[m].network_bytes);
      AppendField(&out, "barrier_wait_nanos",
                  run.machines[m].barrier_wait_nanos,
                  /*trailing_comma=*/false);
      out.push_back('}');
    }
    out.push_back(']');
    if (run.has_profile) {
      out.append(",\"operators\":[");
      bool first_op = true;
      for (const auto& [id, entry] : run.profile.ops()) {
        if (!first_op) out.push_back(',');
        first_op = false;
        out.append("{\"id\":");
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%d", id);
        out.append(buf);
        out.append(",\"op\":");
        AppendJsonString(&out, entry.op);
        out.append(",\"detail\":");
        AppendJsonString(&out, entry.detail);
        out.push_back(',');
        const gsa::OperatorCounters& c = entry.counters;
        AppendField(&out, "in_pos", c.in_pos);
        AppendField(&out, "in_neg", c.in_neg);
        AppendField(&out, "out_pos", c.out_pos);
        AppendField(&out, "out_neg", c.out_neg);
        AppendField(&out, "pruned", c.pruned);
        AppendField(&out, "windows", c.windows);
        AppendField(&out, "edges", c.edges);
        AppendField(&out, "evals", c.evals);
        AppendField(&out, "wall_nanos", c.wall_nanos,
                    /*trailing_comma=*/false);
        out.push_back('}');
      }
      out.append("],\"supersteps_profile\":[");
      bool first_ss = true;
      for (const gsa::SuperstepProfile& ss : run.profile.supersteps()) {
        if (!first_ss) out.push_back(',');
        first_ss = false;
        out.push_back('{');
        AppendField(&out, "superstep", static_cast<uint64_t>(ss.superstep));
        out.append("\"incremental\":");
        out.append(ss.incremental ? "true," : "false,");
        AppendField(&out, "active_vertices", ss.active_vertices);
        AppendField(&out, "frontier", ss.frontier);
        AppendField(&out, "emissions", ss.emissions);
        AppendField(&out, "windows", ss.windows);
        AppendField(&out, "edges", ss.edges);
        AppendField(&out, "wall_nanos", ss.wall_nanos);
        AppendField(&out, "cpu_nanos", ss.cpu_nanos);
        AppendField(&out, "state_digest", ss.state_digest);
        out.append("\"shuffle_bytes\":[");
        for (size_t m = 0; m < ss.shuffle_bytes.size(); ++m) {
          if (m > 0) out.push_back(',');
          char nbuf[24];
          std::snprintf(nbuf, sizeof(nbuf), "%" PRIu64, ss.shuffle_bytes[m]);
          out.append(nbuf);
        }
        out.append("]}");
      }
      out.push_back(']');
    }
    out.push_back('}');
  }
  out.append("],\"results\":{");
  first = true;
  for (const auto& [name, value] : results_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendDouble(&out, value);
  }
  out.append("},\"metrics\":");
  MetricsRegistry& registry = GlobalMetrics().registry();
  out.append(registry.ToJson());
  const uint64_t hits = registry.counter("buffer_pool.hits")->value();
  const uint64_t misses = registry.counter("buffer_pool.misses")->value();
  out.append(",\"buffer_pool\":{");
  AppendField(&out, "hits", hits);
  AppendField(&out, "misses", misses);
  out.append("\"hit_rate\":");
  AppendDouble(&out, hits + misses > 0
                         ? static_cast<double>(hits) /
                               static_cast<double>(hits + misses)
                         : 0.0);
  out.push_back('}');

  // Schema v3: per-structure memory section, collapsed from the
  // mem.<name>.bytes / mem.<name>.peak_bytes gauge pairs.
  out.append(",\"memory\":{");
  const MetricsRegistry::Snapshot snap = registry.Snap();
  bool first_mem = true;
  for (const auto& [name, value] : snap.gauges) {
    const std::string prefix = "mem.";
    const std::string bytes_suffix = ".bytes";
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() <= prefix.size() + bytes_suffix.size() ||
        name.compare(name.size() - bytes_suffix.size(), bytes_suffix.size(),
                     bytes_suffix) != 0) {
      continue;
    }
    const std::string struct_name = name.substr(
        prefix.size(), name.size() - prefix.size() - bytes_suffix.size());
    if (struct_name.size() > 5 &&
        struct_name.compare(struct_name.size() - 5, 5, ".peak") == 0) {
      continue;  // the peak gauge of a pair, folded below
    }
    const auto peak_it =
        snap.gauges.find("mem." + struct_name + ".peak_bytes");
    if (!first_mem) out.push_back(',');
    first_mem = false;
    AppendJsonString(&out, struct_name);
    out.append(":{");
    AppendField(&out, "bytes", static_cast<uint64_t>(value));
    AppendField(&out, "peak_bytes",
                static_cast<uint64_t>(peak_it != snap.gauges.end()
                                          ? peak_it->second
                                          : value),
                /*trailing_comma=*/false);
    out.push_back('}');
  }
  out.push_back('}');

  // Schema v8: per-context resource attribution, collapsed from the
  // resource.<ctx>.{cpu_nanos,pages_read,bytes_alloc} counter triples
  // (common/resource_scope.h). Always present; empty when no
  // ResourceContext was ever created.
  out.append(",\"resources\":{");
  {
    const std::string prefix = "resource.";
    const std::string cpu_suffix = ".cpu_nanos";
    auto counter_or_zero = [&snap](const std::string& name) -> uint64_t {
      const auto it = snap.counters.find(name);
      return it != snap.counters.end() ? it->second : 0;
    };
    bool first_ctx = true;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind(prefix, 0) != 0) continue;
      if (name.size() <= prefix.size() + cpu_suffix.size() ||
          name.compare(name.size() - cpu_suffix.size(), cpu_suffix.size(),
                       cpu_suffix) != 0) {
        continue;
      }
      const std::string ctx = name.substr(
          prefix.size(), name.size() - prefix.size() - cpu_suffix.size());
      if (!first_ctx) out.push_back(',');
      first_ctx = false;
      AppendJsonString(&out, ctx);
      out.append(":{");
      AppendField(&out, "cpu_nanos", value);
      AppendField(&out, "pages_read",
                  counter_or_zero(prefix + ctx + ".pages_read"));
      AppendField(&out, "bytes_alloc",
                  counter_or_zero(prefix + ctx + ".bytes_alloc"),
                  /*trailing_comma=*/false);
      out.push_back('}');
    }
  }
  out.push_back('}');

  // Schema v4: the drift auditor's outcome (omitted unless attached).
  if (has_audit_) {
    out.append(",\"audit\":{\"enabled\":");
    out.append(audit_.enabled ? "true," : "false,");
    AppendField(&out, "every", static_cast<uint64_t>(audit_.every));
    out.append("\"tolerance\":");
    AppendDouble(&out, audit_.tolerance);
    out.push_back(',');
    AppendField(&out, "audits", audit_.audits);
    AppendField(&out, "digest_mismatches", audit_.digest_mismatches);
    out.append("\"last_verified\":");
    out.append(std::to_string(audit_.last_verified));
    out.append(",\"digests\":[");
    for (size_t i = 0; i < audit_.digests.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append("{\"timestamp\":");
      out.append(std::to_string(audit_.digests[i].first));
      out.push_back(',');
      AppendField(&out, "digest", audit_.digests[i].second,
                  /*trailing_comma=*/false);
      out.push_back('}');
    }
    const AuditDivergence& d = audit_.divergence;
    out.append("],\"divergence\":{\"found\":");
    out.append(d.found ? "true," : "false,");
    out.append("\"detected_at\":");
    out.append(std::to_string(d.detected_at));
    out.append(",\"first_bad_batch\":");
    out.append(std::to_string(d.first_bad_batch));
    out.append(",\"bisection_probes\":");
    out.append(std::to_string(d.bisection_probes));
    out.append(",\"attrs\":[");
    for (size_t i = 0; i < d.attrs.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendJsonString(&out, d.attrs[i]);
    }
    out.append("],");
    AppendField(&out, "divergent_vertices", d.divergent_vertices);
    out.append("\"vertices\":[");
    for (size_t i = 0; i < d.vertices.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(std::to_string(d.vertices[i]));
    }
    out.append("],");
    AppendField(&out, "expected_digest", d.expected_digest);
    AppendField(&out, "actual_digest", d.actual_digest,
                /*trailing_comma=*/false);
    out.append("}}");
  }

  // Schema v5/v6: the serving daemon's tallies (omitted unless attached).
  if (has_serving_) {
    out.append(",\"serving\":{");
    AppendField(&out, "standing_queries", serving_.standing_queries);
    AppendField(&out, "ingest_batches", serving_.ingest_batches);
    AppendField(&out, "ingest_ops", serving_.ingest_ops);
    AppendField(&out, "backpressure_stalls", serving_.backpressure_stalls);
    AppendField(&out, "delta_messages", serving_.delta_messages);
    AppendField(&out, "slow_batches", serving_.slow_batches);
    out.append("\"stage_latency_us\":[");
    for (size_t i = 0; i < serving_.stages.size(); ++i) {
      if (i > 0) out.push_back(',');
      const ServingStageRow& st = serving_.stages[i];
      out.append("{\"stage\":");
      AppendJsonString(&out, st.stage);
      out.push_back(',');
      AppendField(&out, "count", st.count);
      AppendField(&out, "sum", st.sum_us);
      AppendField(&out, "p50", st.p50_us);
      AppendField(&out, "p95", st.p95_us);
      out.append("\"p99\":");
      out.append(std::to_string(st.p99_us));
      out.push_back('}');
    }
    out.append("],\"queries\":[");
    for (size_t i = 0; i < serving_.queries.size(); ++i) {
      if (i > 0) out.push_back(',');
      const ServingQueryRow& q = serving_.queries[i];
      out.append("{\"name\":");
      AppendJsonString(&out, q.name);
      out.append(",\"timestamp\":");
      out.append(std::to_string(q.timestamp));
      out.push_back(',');
      AppendField(&out, "digest", q.digest);
      AppendField(&out, "runs", q.runs);
      AppendField(&out, "budget_bytes", q.budget_bytes);
      AppendField(&out, "budget_used_bytes", q.budget_used_bytes);
      AppendField(&out, "lag_batches", q.lag_batches);
      AppendField(&out, "lag_us", q.lag_us);
      out.append("\"delta_latency_us\":{");
      AppendField(&out, "count", q.latency_count);
      AppendField(&out, "sum", q.latency_sum_us);
      AppendField(&out, "p50", q.p50_us);
      AppendField(&out, "p95", q.p95_us);
      AppendField(&out, "p99", q.p99_us);
      AppendField(&out, "p999", q.p999_us);
      out.append("\"buckets\":[");
      for (size_t b = 0; b < q.latency_buckets.size(); ++b) {
        if (b > 0) out.push_back(',');
        char bbuf[56];
        std::snprintf(bbuf, sizeof(bbuf), "[%" PRIu64 ",%" PRIu64 "]",
                      q.latency_buckets[b].first,
                      q.latency_buckets[b].second);
        out.append(bbuf);
      }
      out.append("]}}");
    }
    out.append("]}");
  }

  // Schema v7: the load driver's capacity curve (omitted unless attached).
  if (has_load_) {
    auto append_point_fields = [&out](const LoadPoint& p) {
      out.append("\"offered_rate\":");
      AppendDouble(&out, p.offered_rate);
      out.append(",\"achieved_rate\":");
      AppendDouble(&out, p.achieved_rate);
      out.push_back(',');
      AppendField(&out, "batches", p.batches);
      AppendField(&out, "samples", p.samples);
      AppendField(&out, "p50", p.p50_us);
      AppendField(&out, "p90", p.p90_us);
      AppendField(&out, "p99", p.p99_us);
      AppendField(&out, "p999", p.p999_us);
      AppendField(&out, "max", p.max_us);
      AppendField(&out, "backpressure_stalls", p.backpressure_stalls);
      AppendField(&out, "queue_depth_max", p.queue_depth_max);
      AppendField(&out, "view_lag_us_max", p.view_lag_us_max);
      AppendField(&out, "rejected_batches", p.rejected_batches);
      out.append("\"slo_ok\":");
      out.append(p.slo_ok ? "true" : "false");
    };
    out.append(",\"load\":{");
    AppendField(&out, "connections", load_.connections);
    AppendField(&out, "subscribers", load_.subscribers);
    out.append("\"arrival\":");
    AppendJsonString(&out, load_.arrival);
    out.push_back(',');
    AppendField(&out, "ops_per_batch", load_.ops_per_batch);
    out.append("\"slo_ms\":");
    AppendDouble(&out, load_.slo_ms);
    out.append(",\"sweep\":");
    out.append(load_.sweep ? "true" : "false");
    out.append(",\"points\":[");
    for (size_t i = 0; i < load_.points.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.push_back('{');
      append_point_fields(load_.points[i]);
      out.push_back('}');
    }
    out.append("],\"knee\":{\"found\":");
    out.append(load_.knee_found ? "true" : "false");
    if (load_.knee_found) {
      out.push_back(',');
      append_point_fields(load_.knee);
    }
    out.append("},\"slo_verdict\":");
    AppendJsonString(&out, load_.slo_verdict);
    if (!load_.server_timeseries_json.empty()) {
      out.append(",\"server_timeseries\":");
      out.append(load_.server_timeseries_json);
    }
    out.push_back('}');
  }

  // Schema v9: the alert engine's end-of-run summary (omitted unless
  // attached).
  if (has_alerts_) {
    out.append(",\"alerts\":{\"enabled\":");
    out.append(alerts_.enabled ? "true," : "false,");
    AppendField(&out, "period_ms", alerts_.period_ms);
    AppendField(&out, "evaluations", alerts_.evaluations);
    AppendField(&out, "bundles_written", alerts_.bundles_written);
    AppendField(&out, "bundles_suppressed", alerts_.bundles_suppressed);
    out.append("\"rules\":[");
    bool first_rule = true;
    for (const AlertRuleRow& r : alerts_.rules) {
      if (!first_rule) out.push_back(',');
      first_rule = false;
      out.append("{\"name\":");
      AppendJsonString(&out, r.name);
      out.append(",\"severity\":");
      AppendJsonString(&out, r.severity);
      out.append(",\"state\":");
      AppendJsonString(&out, r.state);
      out.push_back(',');
      AppendField(&out, "fires", r.fires);
      AppendField(&out, "flaps", r.flaps);
      out.append("\"last_value\":");
      AppendDouble(&out, r.last_value);
      out.append(",\"expr\":");
      AppendJsonString(&out, r.expr);
      out.push_back('}');
    }
    out.append("]}");
  }

  out.push_back('}');
  return out;
}

Status RunReport::WriteTo(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IOError("cannot open " + path);
  f << ToJson() << "\n";
  f.flush();
  if (!f) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace itg
