#ifndef ITG_HARNESS_HARNESS_H_
#define ITG_HARNESS_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/compiled_program.h"
#include "engine/engine.h"
#include "gen/workload.h"
#include "storage/graph_store.h"

namespace itg {

/// Options of an end-to-end experiment (paper protocol, §6.1): sample 90%
/// of the edges as G_0, run the one-shot query, then apply mutation
/// batches (75:25 insert:delete by default) and run incremental queries.
struct HarnessOptions {
  /// Undirected analytics: mutations operate on canonical (min, max)
  /// edges and are applied in both directions.
  bool symmetric = false;
  double initial_fraction = 0.9;
  uint64_t seed = 42;
  EngineOptions engine;
  DynamicGraphStore::Options store;
  /// File prefix for the store (temp dir).
  std::string path;
};

/// Owns the full pipeline — compiled program, dynamic graph store,
/// workload generator, engine — and drives the paper's experiment
/// protocol. Shared by the benches, examples, and end-to-end tests.
class Harness {
 public:
  static StatusOr<std::unique_ptr<Harness>> Create(
      const std::string& program_source, VertexId num_vertices,
      std::vector<Edge> all_edges, const HarnessOptions& options);

  /// One-shot execution at G_0 (records history for later increments).
  Status RunOneShot() { return engine_->RunOneShot(0); }

  /// Applies the next mutation batch and runs the incremental query.
  Status Step(size_t batch_size, double insert_ratio);

  /// Re-executes the query from scratch on the *current* snapshot with a
  /// throwaway store + engine, returning the wall seconds and IO bytes —
  /// the "one-shot re-execution" cost the incremental path avoids.
  StatusOr<RunStats> FreshOneShot();

  Engine& engine() { return *engine_; }
  const CompiledProgram& program() const { return *program_; }
  DynamicGraphStore& store() { return *store_; }
  Timestamp timestamp() const { return timestamp_; }

  /// Canonical edges of the current snapshot (for oracle checks).
  const std::vector<Edge>& current_edges() const { return current_; }
  /// Edges as stored (symmetrized when options.symmetric).
  std::vector<Edge> StoredEdges() const;

 private:
  Harness() = default;

  HarnessOptions options_;
  std::string source_;
  VertexId num_vertices_ = 0;
  std::unique_ptr<CompiledProgram> program_;
  std::unique_ptr<DynamicGraphStore> store_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<MutationWorkload> workload_;
  std::vector<Edge> current_;
  Timestamp timestamp_ = 0;
  int fresh_counter_ = 0;
};

}  // namespace itg

#endif  // ITG_HARNESS_HARNESS_H_
