#include "harness/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/flight_recorder.h"
#include "common/live_status.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "compiler/compiled_program.h"

namespace itg {

DriftAuditor::DriftAuditor(DynamicGraphStore* store, Engine* engine,
                           std::string program_source,
                           std::string scratch_path, const Options& options)
    : store_(store),
      engine_(engine),
      source_(std::move(program_source)),
      scratch_path_(std::move(scratch_path)),
      options_(options) {
  section_.enabled = true;
  section_.every = options_.every;
  section_.tolerance = options_.tolerance;
}

void DriftAuditor::OnRun(Timestamp t) {
  section_.digests.emplace_back(t, engine_->last_stats().state_digest);
}

Status DriftAuditor::MaybeAudit(Timestamp t) {
  if (options_.every <= 0 || t <= 0 || t % options_.every != 0) {
    return Status::OK();
  }
  return AuditNow(t);
}

StatusOr<std::unique_ptr<Engine>> DriftAuditor::MakeShadow(
    Timestamp t, bool record_history,
    std::unique_ptr<DynamicGraphStore>* store_out) {
  if (shadow_program_ == nullptr) {
    ITG_ASSIGN_OR_RETURN(shadow_program_, CompileProgram(source_));
  }
  std::vector<Edge> edges;
  ITG_RETURN_IF_ERROR(store_->MaterializeEdges(store_->pool(), t, &edges));
  ITG_ASSIGN_OR_RETURN(
      *store_out,
      DynamicGraphStore::Create(
          scratch_path_ + ".shadow" + std::to_string(shadow_counter_++),
          store_->num_vertices(), std::move(edges), options_.store,
          &GlobalMetrics()));
  EngineOptions opts = engine_->options();
  opts.record_history = record_history;
  // The shadow must run the *intended* computation: no lineage overhead
  // and, crucially, none of the live engine's debug/corruption hooks.
  opts.lineage = false;
  opts.debug_corrupt_timestamp = -1;
  opts.debug_corrupt_vertex = -1;
  opts.debug_corrupt_delta = 0.0;
  opts.debug_stall_first_superstep_ms = 0;
  return std::make_unique<Engine>(store_out->get(), shadow_program_.get(),
                                  opts);
}

void DriftAuditor::DiffColumns(const Engine& shadow, AuditDivergence* out,
                               bool* within_tolerance) const {
  *within_tolerance = true;
  std::vector<std::pair<std::string, uint64_t>> per_attr;
  engine_->ComputeStateDigest(&per_attr);  // names, in AuditedAttrs order
  const std::vector<int> attrs = engine_->AuditedAttrs();
  const ColumnSet& live = engine_->columns();
  const ColumnSet& ref = shadow.columns();
  std::vector<char> vertex_flagged(
      static_cast<size_t>(live.num_vertices()), 0);
  for (size_t ai = 0; ai < attrs.size(); ++ai) {
    const int attr = attrs[ai];
    const int width = live.width(attr);
    bool attr_diverged = false;
    for (VertexId v = 0; v < live.num_vertices(); ++v) {
      const double* a = live.Cell(attr, v);
      const double* b = ref.Cell(attr, v);
      for (int i = 0; i < width; ++i) {
        if (a[i] == b[i]) continue;
        if (std::abs(a[i] - b[i]) <= options_.tolerance) continue;
        *within_tolerance = false;
        attr_diverged = true;
        if (!vertex_flagged[static_cast<size_t>(v)]) {
          vertex_flagged[static_cast<size_t>(v)] = 1;
          ++out->divergent_vertices;
          if (out->vertices.size() < options_.max_divergent_vertices) {
            out->vertices.push_back(v);
          }
        }
        break;
      }
    }
    if (attr_diverged && ai < per_attr.size()) {
      out->attrs.push_back(per_attr[ai].first);
    }
  }
}

Status DriftAuditor::Bisect(Timestamp t, AuditDivergence* out) {
  // One clean forward replay of the whole incremental chain. Both sides
  // are incremental runs with identical accumulation order, so the
  // per-timestamp digests are bit-exact against an uncorrupted live run
  // for every program — floats included.
  std::unique_ptr<DynamicGraphStore> clean_store;
  ITG_ASSIGN_OR_RETURN(
      auto clean, MakeShadow(0, /*record_history=*/true, &clean_store));
  std::vector<uint64_t> clean_digest(static_cast<size_t>(t) + 1, 0);
  ITG_RETURN_IF_ERROR(clean->RunOneShot(0));
  clean_digest[0] = clean->last_stats().state_digest;
  for (Timestamp i = 1; i <= t; ++i) {
    std::vector<EdgeDelta> batch;
    ITG_RETURN_IF_ERROR(store_->ScanDeltas(
        store_->pool(), i, Direction::kOut,
        [&](Edge e, Multiplicity m) { batch.push_back({e, m}); }));
    ITG_ASSIGN_OR_RETURN(Timestamp applied,
                         clean_store->ApplyMutations(batch));
    ITG_CHECK(applied == i) << "replay drifted off the delta chain";
    ITG_RETURN_IF_ERROR(clean->RunIncremental(i));
    clean_digest[static_cast<size_t>(i)] = clean->last_stats().state_digest;
  }

  // The live digest history, as recorded by OnRun after every run.
  std::vector<uint64_t> live(static_cast<size_t>(t) + 1, 0);
  std::vector<char> have(static_cast<size_t>(t) + 1, 0);
  for (const auto& [ts, digest] : section_.digests) {
    if (ts >= 0 && ts <= t) {
      live[static_cast<size_t>(ts)] = digest;
      have[static_cast<size_t>(ts)] = 1;
    }
  }
  auto differs = [&](Timestamp i) {
    const auto idx = static_cast<size_t>(i);
    return have[idx] != 0 && clean_digest[idx] != live[idx];
  };

  // Binary-search the first differing timestamp in (last_verified, t].
  // Divergence persists once introduced under the corruption model, so
  // the predicate is monotone; verify the boundary anyway and fall back
  // to a linear scan if the history turned out non-monotone.
  int probes = 0;
  Timestamp lo = std::max<Timestamp>(section_.last_verified + 1, 1);
  Timestamp hi = t;
  while (lo < hi) {
    const Timestamp mid = lo + (hi - lo) / 2;
    ++probes;
    if (differs(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ++probes;
  if (!differs(lo) || (lo > 1 && differs(lo - 1))) {
    lo = -1;
    for (Timestamp i = 1; i <= t; ++i) {
      ++probes;
      if (differs(i)) {
        lo = i;
        break;
      }
    }
  }
  // lo == -1 means every recorded live digest matches the clean replay:
  // the incremental chain is self-consistent and the disagreement with
  // the one-shot shadow is systematic, not introduced by one batch.
  out->first_bad_batch = lo;
  out->bisection_probes = probes;

  // Exact divergent set at t from the clean replay's final state —
  // bit-exact, so it supersedes the tolerance-based sample when it
  // localizes anything.
  AuditDivergence exact;
  const ColumnSet& live_cols = engine_->columns();
  const ColumnSet& clean_cols = clean->columns();
  std::vector<std::pair<std::string, uint64_t>> per_attr;
  engine_->ComputeStateDigest(&per_attr);
  const std::vector<int> attrs = engine_->AuditedAttrs();
  std::vector<char> vertex_flagged(
      static_cast<size_t>(live_cols.num_vertices()), 0);
  for (size_t ai = 0; ai < attrs.size(); ++ai) {
    const int attr = attrs[ai];
    bool attr_diverged = false;
    for (VertexId v = 0; v < live_cols.num_vertices(); ++v) {
      if (!ColumnSet::CellDiffers(live_cols, clean_cols, attr, v)) continue;
      attr_diverged = true;
      if (!vertex_flagged[static_cast<size_t>(v)]) {
        vertex_flagged[static_cast<size_t>(v)] = 1;
        ++exact.divergent_vertices;
        if (exact.vertices.size() < options_.max_divergent_vertices) {
          exact.vertices.push_back(v);
        }
      }
    }
    if (attr_diverged && ai < per_attr.size()) {
      exact.attrs.push_back(per_attr[ai].first);
    }
  }
  if (exact.divergent_vertices > 0) {
    out->attrs = std::move(exact.attrs);
    out->vertices = std::move(exact.vertices);
    out->divergent_vertices = exact.divergent_vertices;
  }
  return Status::OK();
}

Status DriftAuditor::AuditNow(Timestamp t) {
  ++section_.audits;
  std::unique_ptr<DynamicGraphStore> shadow_store;
  ITG_ASSIGN_OR_RETURN(
      auto shadow, MakeShadow(t, /*record_history=*/false, &shadow_store));
  ITG_RETURN_IF_ERROR(shadow->RunOneShot(0));
  const uint64_t expected = shadow->last_stats().state_digest;
  const uint64_t actual = engine_->ComputeStateDigest();
  if (expected == actual) {
    section_.last_verified = t;
    RecordVerdict(true);
    return Status::OK();
  }

  // Digest mismatch: the tolerance column diff is the authority —
  // floating-point programs legitimately differ in the last bits.
  AuditDivergence d;
  bool within_tolerance = false;
  DiffColumns(*shadow, &d, &within_tolerance);
  if (within_tolerance) {
    ++section_.digest_mismatches;
    section_.last_verified = t;
    RecordVerdict(true);
    return Status::OK();
  }

  d.found = true;
  d.detected_at = t;
  d.expected_digest = expected;
  d.actual_digest = actual;
  if (options_.bisect) {
    ITG_RETURN_IF_ERROR(Bisect(t, &d));
  }
  section_.divergence = d;
  ITG_LOG(Warn) << "drift audit: divergence at t=" << t
                << " first_bad_batch=" << d.first_bad_batch
                << " divergent_vertices=" << d.divergent_vertices;
  FlightRecorder::Global().DumpToLog("drift-audit divergence",
                                     /*force=*/true);
  RecordVerdict(false);
  return Status::OK();
}

void DriftAuditor::RecordVerdict(bool ok) {
  GlobalLiveStatus().RecordAudit(ok);
  MetricsRegistry& registry = GlobalMetrics().registry();
  registry.counter("audit.audits_total")->Increment();
  if (!ok) registry.counter("audit.failures")->Increment();
}

}  // namespace itg
