#ifndef ITG_HARNESS_RUN_REPORT_H_
#define ITG_HARNESS_RUN_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace itg {

/// Structured outcome of one drift divergence (schema v4 `audit` section,
/// filled by harness::DriftAuditor when a shadow replay disagrees with
/// the incremental state beyond tolerance).
struct AuditDivergence {
  bool found = false;
  /// Audited timestamp at which the divergence was detected.
  Timestamp detected_at = -1;
  /// First offending Δ-batch, pinpointed by bisecting the live digest
  /// history against a clean incremental replay.
  Timestamp first_bad_batch = -1;
  /// Replay probes the bisection spent (log₂ of the suspect range).
  int bisection_probes = 0;
  /// Divergent attribute names and a bounded sample of the divergent
  /// vertices (`divergent_vertices` is the full count).
  std::vector<std::string> attrs;
  std::vector<VertexId> vertices;
  uint64_t divergent_vertices = 0;
  uint64_t expected_digest = 0;  ///< clean (shadow replay) digest
  uint64_t actual_digest = 0;    ///< live incremental digest
};

/// The schema v4 `audit` section: per-timestamp state digests plus the
/// drift auditor's verdicts.
struct AuditSection {
  bool enabled = false;
  int every = 0;         ///< audit cadence (delta batches per audit)
  double tolerance = 0;  ///< per-cell |Δ| allowed before divergence
  uint64_t audits = 0;
  /// Digest differed but every cell was within tolerance — expected for
  /// floating-point programs (incremental PR matches one-shot to ~1e-9,
  /// not bit-exactly), counted but not a failure.
  uint64_t digest_mismatches = 0;
  Timestamp last_verified = -1;
  /// End-of-run digest per executed timestamp, in execution order.
  std::vector<std::pair<Timestamp, uint64_t>> digests;
  AuditDivergence divergence;
};

/// One standing query's row in the `serving` section (v5; lag fields v6;
/// percentile fields v7).
struct ServingQueryRow {
  std::string name;
  Timestamp timestamp = 0;  ///< last maintained batch boundary
  uint64_t digest = 0;      ///< state digest at `timestamp`
  uint64_t runs = 0;        ///< one-shot + incremental runs executed
  uint64_t budget_bytes = 0;       ///< admission slice (0 = uncapped)
  uint64_t budget_used_bytes = 0;  ///< bytes charged against the slice
  /// Per-batch ΔQ latency (ingest entry → post-flush), microseconds;
  /// buckets are (lower bound, count) pairs from the log-linear
  /// histogram.
  uint64_t latency_count = 0;
  uint64_t latency_sum_us = 0;
  std::vector<std::pair<uint64_t, uint64_t>> latency_buckets;
  /// v7: percentile digests of the same histogram (computed by the one
  /// shared helper, MetricsRegistry::HistogramSnapshot::
  /// PercentileUpperBound) so clients need not re-derive them from the
  /// raw buckets.
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  /// v6: final staleness vs the graph of record (0 after a clean drain).
  uint64_t lag_batches = 0;
  uint64_t lag_us = 0;
};

/// One pipeline stage's latency summary (v6 `stage_latency_us` rows).
/// `stage` is validate|queue_wait|apply or view_run.<q>|stream_flush.<q>.
struct ServingStageRow {
  std::string stage;
  uint64_t count = 0;
  uint64_t sum_us = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
};

/// The `serving` section: the standing-query daemon's final tallies
/// (filled by examples/itg_serve.cc at drain time). v6 adds the
/// per-stage latency rows and the slow-batch counter.
struct ServingSection {
  uint64_t standing_queries = 0;
  uint64_t ingest_batches = 0;
  uint64_t ingest_ops = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t delta_messages = 0;
  uint64_t slow_batches = 0;  ///< v6
  std::vector<ServingStageRow> stages;  ///< v6
  std::vector<ServingQueryRow> queries;
};

/// One offered-rate step of a load sweep (v7 `load.points` rows).
/// Latencies are client-observed intended-start → ΔQ-notify
/// microseconds, coordinated-omission safe (measured from the open-loop
/// schedule's intended send time, so stalled batches are charged their
/// full queueing delay).
struct LoadPoint {
  double offered_rate = 0;   ///< target Δ-batches/s across all ingesters
  double achieved_rate = 0;  ///< acked Δ-batches/s actually sustained
  uint64_t batches = 0;      ///< Δ-batches acked in the measurement window
  uint64_t samples = 0;      ///< ΔQ notify latencies recorded
  uint64_t p50_us = 0;
  uint64_t p90_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t max_us = 0;
  uint64_t backpressure_stalls = 0;  ///< server stalls during the window
  uint64_t queue_depth_max = 0;      ///< max observed server queue depth
  uint64_t view_lag_us_max = 0;      ///< max observed view staleness
  uint64_t rejected_batches = 0;     ///< generator collisions, retried
  bool slo_ok = false;               ///< p99 within the --slo-ms target
};

/// The v7 `load` section: itg_loadgen's capacity-curve results against a
/// live serving daemon, plus the detected knee (the highest offered rate
/// that still meets the SLO while keeping up with the schedule).
struct LoadSection {
  uint64_t connections = 0;   ///< ingest connections
  uint64_t subscribers = 0;   ///< ΔQ stream subscriber connections
  std::string arrival;        ///< "poisson" | "uniform"
  uint64_t ops_per_batch = 0;
  double slo_ms = 0;          ///< p99 SLO target
  bool sweep = false;
  std::vector<LoadPoint> points;
  bool knee_found = false;
  LoadPoint knee;             ///< valid when knee_found
  std::string slo_verdict;    ///< "pass" | "fail"
  /// Raw /timeseriesz dump scraped from the daemon after the run; valid
  /// JSON spliced verbatim as `load.server_timeseries` (empty = omitted).
  std::string server_timeseries_json;
};

/// One alert rule's final state in the v9 `alerts` section.
struct AlertRuleRow {
  std::string name;
  std::string severity;  ///< info | warn | critical
  std::string state;     ///< inactive | pending | firing | resolved
  std::string expr;
  uint64_t fires = 0;
  uint64_t flaps = 0;
  double last_value = 0;
};

/// The v9 `alerts` section: the alert engine's end-of-run summary
/// (filled by examples/itg_serve.cc after Stop(), so states are final).
/// report_diff.py fails gated runs whose section still contains a
/// critical firing rule.
struct AlertsSection {
  bool enabled = false;
  uint64_t period_ms = 0;
  uint64_t evaluations = 0;
  uint64_t bundles_written = 0;
  uint64_t bundles_suppressed = 0;
  std::vector<AlertRuleRow> rules;
};

/// Machine-readable run report (the `--metrics-json=<path>` output of the
/// bench and harness binaries).
///
/// Schema (version 9, validated by tools/trace_summary.py and diffed by
/// tools/report_diff.py; readers accept REPORT_SCHEMA_MIN..MAX):
/// ```json
/// {
///   "schema_version": 4,
///   "binary": "fig12_overall",
///   "runs": [
///     {"name": "...", "timestamp": 0, "incremental": false,
///      "supersteps": 3, "seconds": 0.12,
///      "read_bytes": 0, "write_bytes": 0, "network_bytes": 0,
///      "windows_loaded": 0, "edges_scanned": 0, "emissions_applied": 0,
///      "recomputed_vertices": 0,
///      "delta_walks": {"enumerated": 0, "pruned": 0},
///      "threads": 1, "parallel_tasks": 0, "steals": 0,
///      "busy_nanos": 0, "critical_nanos": 0,
///      "state_digest": 0,       // v4, end-of-run state digest
///      "machines": [{"seconds": 0.1, "network_bytes": 123}, ...],
///      "operators": [           // v2, present when a profile was attached
///        {"id": 0, "op": "Apply", "detail": "Update",
///         "in_pos": 0, "in_neg": 0, "out_pos": 0, "out_neg": 0,
///         "pruned": 0, "windows": 0, "edges": 0, "evals": 0,
///         "wall_nanos": 0}, ...],
///      "supersteps_profile": [  // v2, the per-superstep timeline
///        {"superstep": 0, "incremental": false, "active_vertices": 0,
///         "frontier": 0, "emissions": 0, "windows": 0, "edges": 0,
///         "wall_nanos": 0, "cpu_nanos": 0, "state_digest": 0,  // v4
///         "shuffle_bytes": [..]}, ...]},
///     ...
///   ],
///   "results": {"<bench row name>": <double>, ...},
///   "metrics": {"counters": {...}, "gauges": {...},
///               "histograms": {"name": {"count":, "sum":,
///                              "buckets": [[lower, count], ...]}}},
///   "buffer_pool": {"hits": 0, "misses": 0, "hit_rate": 0.0},
///   "memory": {"<struct>": {"bytes": 0, "peak_bytes": 0}, ...},  // v3
///   "resources": {            // v8, always present (may be empty):
///     "<ctx>": {"cpu_nanos": 0, "pages_read": 0, "bytes_alloc": 0},
///     ...},                   // per-ResourceContext attribution totals,
///                             // collapsed from resource.<ctx>.* counters
///   "audit": {                 // v4, present when SetAudit was called
///     "enabled": true, "every": 3, "tolerance": 1e-6,
///     "audits": 2, "digest_mismatches": 0, "last_verified": 3,
///     "digests": [{"timestamp": 0, "digest": 123}, ...],
///     "divergence": {"found": true, "detected_at": 6,
///                    "first_bad_batch": 4, "bisection_probes": 2,
///                    "attrs": ["comp"], "divergent_vertices": 5,
///                    "vertices": [7, ...],
///                    "expected_digest": 1, "actual_digest": 2}},
///   "serving": {                // v5, present when SetServing was called
///     "standing_queries": 2, "ingest_batches": 6, "ingest_ops": 24,
///     "backpressure_stalls": 0, "delta_messages": 12,
///     "slow_batches": 0,        // v6
///     "stage_latency_us": [     // v6, per-pipeline-stage percentiles
///       {"stage": "validate", "count": 6, "sum": 90,
///        "p50": 16, "p95": 32, "p99": 32}, ...],
///     "queries": [
///       {"name": "q1", "timestamp": 6, "digest": 123, "runs": 7,
///        "budget_bytes": 0, "budget_used_bytes": 4096,
///        "lag_batches": 0, "lag_us": 0,   // v6
///        "delta_latency_us": {"count": 6, "sum": 900,
///                             "p50": 72, "p95": 104,   // v7
///                             "p99": 104, "p999": 104,
///                             "buckets": [[64, 4], [128, 2]]}}, ...]},
///   "load": {                   // v7, present when SetLoad was called
///     "connections": 2, "subscribers": 1, "arrival": "poisson",
///     "ops_per_batch": 8, "slo_ms": 50.0, "sweep": true,
///     "points": [               // one row per offered-rate step
///       {"offered_rate": 100.0, "achieved_rate": 99.2, "batches": 496,
///        "samples": 496, "p50": 180, "p90": 420, "p99": 900,
///        "p999": 1400, "max": 2100, "backpressure_stalls": 0,
///        "queue_depth_max": 3, "view_lag_us_max": 1200,
///        "rejected_batches": 1, "slo_ok": true}, ...],
///     "knee": {"found": true, "offered_rate": 400.0,
///              "achieved_rate": 396.0, "p99": 4100},
///     "slo_verdict": "pass",
///     "server_timeseries": {...}},  // raw /timeseriesz dump, optional
///   "alerts": {                 // v9, present when SetAlerts was called
///     "enabled": true, "period_ms": 1000, "evaluations": 42,
///     "bundles_written": 1, "bundles_suppressed": 0,
///     "rules": [
///       {"name": "serve_notify_p99_burn", "severity": "critical",
///        "state": "resolved", "fires": 1, "flaps": 0,
///        "last_value": 0.0,
///        "expr": "burn(serve.delta_latency_us.*, slo=1000, ...)"},
///       ...]}
/// }
/// ```
///
/// `metrics` and `buffer_pool` are snapshotted from `GlobalMetrics()` at
/// serialization time, so everything the storage/engine layers registered
/// during the process (page-read latency histograms, Δ-batch sizes, merge
/// decisions) is exported without per-bench plumbing.
class RunReport {
 public:
  explicit RunReport(std::string binary = "") : binary_(std::move(binary)) {}

  void set_binary(std::string binary) { binary_ = std::move(binary); }

  /// Appends one engine run. `network_bytes` is the cluster total;
  /// `machines` carries the per-machine breakdown (empty when the run was
  /// not partitioned). `profile`, when non-null, is copied into the run's
  /// v2 `operators` / `supersteps_profile` sections (callers pass
  /// `&engine.last_profile()` right after the run, before the next run
  /// resets it).
  void AddRun(const std::string& name, const RunStats& stats,
              const std::vector<MachineStats>& machines = {},
              uint64_t network_bytes = 0,
              const gsa::ExecutionProfile* profile = nullptr);

  /// Records a scalar bench result (a printed table cell, a speedup, ...).
  void AddResult(const std::string& name, double value);

  /// Attaches the drift auditor's outcome; emitted as the v4 `audit`
  /// section (omitted entirely when never called).
  void SetAudit(const AuditSection& audit) {
    audit_ = audit;
    has_audit_ = true;
  }

  /// Attaches the serving daemon's final tallies; emitted as the v5
  /// `serving` section (omitted entirely when never called).
  void SetServing(const ServingSection& serving) {
    serving_ = serving;
    has_serving_ = true;
  }

  /// Attaches a load-driver capacity-curve result; emitted as the v7
  /// `load` section (omitted entirely when never called).
  void SetLoad(const LoadSection& load) {
    load_ = load;
    has_load_ = true;
  }

  /// Attaches the alert engine's end-of-run summary; emitted as the v9
  /// `alerts` section (omitted entirely when never called).
  void SetAlerts(const AlertsSection& alerts) {
    alerts_ = alerts;
    has_alerts_ = true;
  }

  std::string ToJson() const;
  Status WriteTo(const std::string& path) const;

  /// Writes iff `path` is non-empty — the direct sink for a
  /// `--metrics-json=<path>` flag value.
  Status MaybeWrite(const std::string& path) const {
    if (path.empty()) return Status::OK();
    return WriteTo(path);
  }

  size_t run_count() const { return runs_.size(); }

 private:
  struct Run {
    std::string name;
    RunStats stats;
    std::vector<MachineStats> machines;
    uint64_t network_bytes = 0;
    bool has_profile = false;
    gsa::ExecutionProfile profile;
  };

  std::string binary_;
  std::vector<Run> runs_;
  std::vector<std::pair<std::string, double>> results_;
  bool has_audit_ = false;
  AuditSection audit_;
  bool has_serving_ = false;
  ServingSection serving_;
  bool has_load_ = false;
  LoadSection load_;
  bool has_alerts_ = false;
  AlertsSection alerts_;
};

}  // namespace itg

#endif  // ITG_HARNESS_RUN_REPORT_H_
