#ifndef ITG_HARNESS_RUN_REPORT_H_
#define ITG_HARNESS_RUN_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace itg {

/// Machine-readable run report (the `--metrics-json=<path>` output of the
/// bench and harness binaries).
///
/// Schema (version 2, validated by tools/trace_summary.py and diffed by
/// tools/report_diff.py; version-1 readers must keep accepting v1 files):
/// ```json
/// {
///   "schema_version": 2,
///   "binary": "fig12_overall",
///   "runs": [
///     {"name": "...", "timestamp": 0, "incremental": false,
///      "supersteps": 3, "seconds": 0.12,
///      "read_bytes": 0, "write_bytes": 0, "network_bytes": 0,
///      "windows_loaded": 0, "edges_scanned": 0, "emissions_applied": 0,
///      "recomputed_vertices": 0,
///      "delta_walks": {"enumerated": 0, "pruned": 0},
///      "threads": 1, "parallel_tasks": 0, "steals": 0,
///      "busy_nanos": 0, "critical_nanos": 0,
///      "machines": [{"seconds": 0.1, "network_bytes": 123}, ...],
///      "operators": [           // v2, present when a profile was attached
///        {"id": 0, "op": "Apply", "detail": "Update",
///         "in_pos": 0, "in_neg": 0, "out_pos": 0, "out_neg": 0,
///         "pruned": 0, "windows": 0, "edges": 0, "evals": 0,
///         "wall_nanos": 0}, ...],
///      "supersteps_profile": [  // v2, the per-superstep timeline
///        {"superstep": 0, "incremental": false, "active_vertices": 0,
///         "frontier": 0, "emissions": 0, "windows": 0, "edges": 0,
///         "wall_nanos": 0, "cpu_nanos": 0, "shuffle_bytes": [..]}, ...]},
///     ...
///   ],
///   "results": {"<bench row name>": <double>, ...},
///   "metrics": {"counters": {...}, "gauges": {...},
///               "histograms": {"name": {"count":, "sum":,
///                              "buckets": [[lower, count], ...]}}},
///   "buffer_pool": {"hits": 0, "misses": 0, "hit_rate": 0.0}
/// }
/// ```
///
/// `metrics` and `buffer_pool` are snapshotted from `GlobalMetrics()` at
/// serialization time, so everything the storage/engine layers registered
/// during the process (page-read latency histograms, Δ-batch sizes, merge
/// decisions) is exported without per-bench plumbing.
class RunReport {
 public:
  explicit RunReport(std::string binary = "") : binary_(std::move(binary)) {}

  void set_binary(std::string binary) { binary_ = std::move(binary); }

  /// Appends one engine run. `network_bytes` is the cluster total;
  /// `machines` carries the per-machine breakdown (empty when the run was
  /// not partitioned). `profile`, when non-null, is copied into the run's
  /// v2 `operators` / `supersteps_profile` sections (callers pass
  /// `&engine.last_profile()` right after the run, before the next run
  /// resets it).
  void AddRun(const std::string& name, const RunStats& stats,
              const std::vector<MachineStats>& machines = {},
              uint64_t network_bytes = 0,
              const gsa::ExecutionProfile* profile = nullptr);

  /// Records a scalar bench result (a printed table cell, a speedup, ...).
  void AddResult(const std::string& name, double value);

  std::string ToJson() const;
  Status WriteTo(const std::string& path) const;

  /// Writes iff `path` is non-empty — the direct sink for a
  /// `--metrics-json=<path>` flag value.
  Status MaybeWrite(const std::string& path) const {
    if (path.empty()) return Status::OK();
    return WriteTo(path);
  }

  size_t run_count() const { return runs_.size(); }

 private:
  struct Run {
    std::string name;
    RunStats stats;
    std::vector<MachineStats> machines;
    uint64_t network_bytes = 0;
    bool has_profile = false;
    gsa::ExecutionProfile profile;
  };

  std::string binary_;
  std::vector<Run> runs_;
  std::vector<std::pair<std::string, double>> results_;
};

}  // namespace itg

#endif  // ITG_HARNESS_RUN_REPORT_H_
