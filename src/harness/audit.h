// Drift auditor: the runtime check that the incremental invariant
// Q(G ∪ ΔG₁..ΔG_t) = Q(G) ∪ ΔQ still holds at timestamp t.
//
// Every K delta batches (`--audit every=K`) the auditor replays the
// one-shot plan from scratch on the materialized snapshot G ∪ ΔG₁..ΔG_t
// in a shadow engine over a throwaway store, and diffs state digests —
// then columns, on mismatch — against the live incremental state. A
// digest mismatch whose per-cell differences stay within tolerance is
// floating-point accumulation noise (incremental PR matches one-shot to
// ~1e-9, not bit-exactly) and counts as a pass-with-flag; anything beyond
// tolerance is a divergence.
//
// On divergence the auditor *bisects*: it re-executes one clean
// incremental chain (same plan, same rounding — so bit-exact against an
// uncorrupted live run for every program, floats included) from the base
// snapshot forward, collecting per-timestamp digests, and binary-searches
// them against the recorded live digests to pinpoint the first offending
// Δ-batch. The clean chain's final state also yields the exact divergent
// vertex/attribute set. The verdict lands in the run report's schema v4
// `audit` section, /statusz, the metrics registry, and a flight-recorder
// dump.
#ifndef ITG_HARNESS_AUDIT_H_
#define ITG_HARNESS_AUDIT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "harness/run_report.h"
#include "storage/graph_store.h"

namespace itg {

class DriftAuditor {
 public:
  struct Options {
    /// Audit every K delta batches (0 = only on explicit AuditNow).
    int every = 0;
    /// Per-cell |live - shadow| allowed before declaring divergence.
    double tolerance = 1e-6;
    /// Cap on the divergent-vertex sample in the report.
    size_t max_divergent_vertices = 32;
    /// Bisect to the first offending batch on divergence.
    bool bisect = true;
    /// Store options for the throwaway shadow/replay stores.
    DynamicGraphStore::Options store;
  };

  /// `store`/`engine` are the live pipeline (not owned); `program_source`
  /// recompiles for shadow engines; `scratch_path` prefixes throwaway
  /// store files.
  DriftAuditor(DynamicGraphStore* store, Engine* engine,
               std::string program_source, std::string scratch_path,
               const Options& options);

  /// Records the live end-of-run digest of timestamp `t`; call right
  /// after every RunOneShot / RunIncremental.
  void OnRun(Timestamp t);

  /// Audits iff `t` lands on the configured cadence. A detected
  /// divergence is a *finding* (recorded in section()), not an error;
  /// the Status reports only infrastructure failures.
  Status MaybeAudit(Timestamp t);

  /// Unconditional audit of timestamp `t`.
  Status AuditNow(Timestamp t);

  const AuditSection& section() const { return section_; }

 private:
  /// Shadow store + engine over the materialized edge set of snapshot
  /// `t`, with every debug/corruption hook cleared.
  StatusOr<std::unique_ptr<Engine>> MakeShadow(
      Timestamp t, bool record_history,
      std::unique_ptr<DynamicGraphStore>* store_out);

  /// Tolerance diff of `shadow` vs the live engine over the audited
  /// attributes. Fills `out` (attrs/vertices/counts) with the
  /// beyond-tolerance cells; `within_tolerance` reports whether every
  /// differing cell stayed under tolerance.
  void DiffColumns(const Engine& shadow, AuditDivergence* out,
                   bool* within_tolerance) const;

  /// Clean forward replay G₀ → t with per-timestamp digests; binary
  /// search against the live digest history for the first bad batch and
  /// the exact divergent set (bit-exact: both sides are incremental runs
  /// with identical accumulation order).
  Status Bisect(Timestamp t, AuditDivergence* out);

  void RecordVerdict(bool ok);

  DynamicGraphStore* store_;
  Engine* engine_;
  std::string source_;
  std::string scratch_path_;
  Options options_;
  AuditSection section_;
  /// Compiled once, shared by every shadow engine (it's immutable).
  std::unique_ptr<CompiledProgram> shadow_program_;
  int shadow_counter_ = 0;
};

}  // namespace itg

#endif  // ITG_HARNESS_AUDIT_H_
