#include "harness/harness.h"

#include <algorithm>

#include "common/logging.h"

namespace itg {

StatusOr<std::unique_ptr<Harness>> Harness::Create(
    const std::string& program_source, VertexId num_vertices,
    std::vector<Edge> all_edges, const HarnessOptions& options) {
  auto harness = std::unique_ptr<Harness>(new Harness());
  harness->options_ = options;
  harness->source_ = program_source;
  harness->num_vertices_ = num_vertices;
  harness->workload_ = std::make_unique<MutationWorkload>(
      std::move(all_edges), options.initial_fraction, options.seed,
      /*canonical=*/options.symmetric);
  harness->current_ = harness->workload_->initial_edges();

  std::vector<Edge> stored = options.symmetric
                                 ? SymmetrizeEdges(harness->current_)
                                 : harness->current_;
  ITG_ASSIGN_OR_RETURN(
      harness->store_,
      DynamicGraphStore::Create(options.path, num_vertices, stored,
                                options.store, &GlobalMetrics()));
  ITG_ASSIGN_OR_RETURN(harness->program_, CompileProgram(program_source));
  harness->engine_ = std::make_unique<Engine>(
      harness->store_.get(), harness->program_.get(), options.engine);
  return harness;
}

Status Harness::Step(size_t batch_size, double insert_ratio) {
  std::vector<EdgeDelta> batch =
      workload_->NextBatch(batch_size, insert_ratio);
  std::vector<EdgeDelta> stored_batch;
  stored_batch.reserve(batch.size() * (options_.symmetric ? 2 : 1));
  for (const EdgeDelta& d : batch) {
    stored_batch.push_back(d);
    if (options_.symmetric) {
      stored_batch.push_back({{d.edge.dst, d.edge.src}, d.mult});
    }
    if (d.mult > 0) {
      current_.push_back(d.edge);
    } else {
      auto it = std::find(current_.begin(), current_.end(), d.edge);
      ITG_CHECK(it != current_.end());
      current_.erase(it);
    }
  }
  ITG_ASSIGN_OR_RETURN(Timestamp t, store_->ApplyMutations(stored_batch));
  timestamp_ = t;
  return engine_->RunIncremental(t);
}

std::vector<Edge> Harness::StoredEdges() const {
  return options_.symmetric ? SymmetrizeEdges(current_) : current_;
}

StatusOr<RunStats> Harness::FreshOneShot() {
  HarnessOptions opts = options_;
  opts.engine.record_history = false;
  ITG_ASSIGN_OR_RETURN(
      auto store,
      DynamicGraphStore::Create(
          options_.path + ".fresh" + std::to_string(fresh_counter_++),
          num_vertices_, StoredEdges(), options_.store, &GlobalMetrics()));
  ITG_ASSIGN_OR_RETURN(auto program, CompileProgram(source_));
  Engine engine(store.get(), program.get(), opts.engine);
  ITG_RETURN_IF_ERROR(engine.RunOneShot(0));
  return engine.last_stats();
}

}  // namespace itg
