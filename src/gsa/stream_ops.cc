#include "gsa/stream_ops.h"

#include <algorithm>

#include "common/logging.h"

namespace itg::gsa {

int TupleStream::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int64_t TupleStream::MultiplicityOf(
    const std::vector<double>& values) const {
  int64_t total = 0;
  for (const Tuple& t : tuples_) {
    if (t.values == values) total += t.mult;
  }
  return total;
}

TupleStream Filter(const TupleStream& input,
                   const std::function<bool(const Tuple&)>& pred) {
  TupleStream out(input.schema());
  for (const Tuple& t : input.tuples()) {
    if (pred(t)) out.Append(t.values, t.mult);
  }
  return out;
}

TupleStream Map(const TupleStream& input, std::vector<std::string> schema,
                const std::function<std::vector<double>(const Tuple&)>& fn) {
  TupleStream out(std::move(schema));
  for (const Tuple& t : input.tuples()) {
    out.Append(fn(t), t.mult);
  }
  return out;
}

StatusOr<TupleStream> Union(const TupleStream& a, const TupleStream& b) {
  if (a.schema() != b.schema()) {
    return Status::InvalidArgument("Union over mismatched schemas");
  }
  TupleStream out(a.schema());
  for (const Tuple& t : a.tuples()) out.Append(t.values, t.mult);
  for (const Tuple& t : b.tuples()) out.Append(t.values, t.mult);
  return out;
}

StatusOr<TupleStream> Difference(const TupleStream& a,
                                 const TupleStream& b) {
  if (a.schema() != b.schema()) {
    return Status::InvalidArgument("Difference over mismatched schemas");
  }
  TupleStream out(a.schema());
  for (const Tuple& t : a.tuples()) out.Append(t.values, t.mult);
  for (const Tuple& t : b.tuples()) out.Append(t.values, -t.mult);
  return out;
}

TupleStream Consolidate(const TupleStream& input) {
  std::map<std::vector<double>, int64_t> net;
  for (const Tuple& t : input.tuples()) {
    net[t.values] += t.mult;
  }
  TupleStream out(input.schema());
  for (const auto& [values, mult] : net) {
    if (mult != 0) out.Append(values, mult);
  }
  return out;
}

TupleStream AssignOperator::Apply(const TupleStream& input) {
  TupleStream changes({"id", "value"});
  for (const Tuple& t : input.tuples()) {
    ITG_CHECK_EQ(t.values.size(), 2u);
    double id = t.values[0];
    double value = t.values[1];
    auto it = state_.find(id);
    if (it != state_.end()) {
      if (it->second == value) continue;
      changes.Append({id, it->second}, -1);
      it->second = value;
    } else {
      state_[id] = value;
    }
    changes.Append({id, value}, +1);
  }
  return changes;
}

double AssignOperator::ValueOf(double id, double absent) const {
  auto it = state_.find(id);
  return it == state_.end() ? absent : it->second;
}

Status AccumulateOperator::Apply(const TupleStream& input) {
  for (const Tuple& t : input.tuples()) {
    if (t.values.size() != 2) {
      return Status::InvalidArgument(
          "Accumulate expects <key, value> tuples");
    }
    double key = t.values[0];
    double value = t.values[1];
    if (lang::IsAbelianGroup(op_)) {
      auto [it, inserted] =
          group_state_.try_emplace(key, GroupState{lang::AccmIdentity(op_)});
      double contribution =
          (t.mult < 0) ? lang::AccmInverse(op_, value) : value;
      for (int64_t i = 0; i < std::abs(t.mult); ++i) {
        lang::AccmApply(op_, &it->second.aggregate, contribution);
      }
      it->second.count += t.mult;
      continue;
    }
    // Monoid: maintain the support multiset exactly.
    auto& support = monoid_support_[key];
    support[value] += t.mult;
    if (support[value] < 0) {
      return Status::InvalidArgument(
          "monoid accumulate: deletion without matching insertion");
    }
    if (support[value] == 0) support.erase(value);
  }
  return Status::OK();
}

double AccumulateOperator::AggregateOf(double key) const {
  if (lang::IsAbelianGroup(op_)) {
    auto it = group_state_.find(key);
    return it == group_state_.end() ? lang::AccmIdentity(op_)
                                    : it->second.aggregate;
  }
  auto it = monoid_support_.find(key);
  if (it == monoid_support_.end() || it->second.empty()) {
    return lang::AccmIdentity(op_);
  }
  // std::map is value-ordered: Min is the first key, Max the last.
  return (op_ == lang::AccmOp::kMin) ? it->second.begin()->first
                                     : it->second.rbegin()->first;
}

int64_t AccumulateOperator::SupportOf(double key) const {
  if (lang::IsAbelianGroup(op_)) {
    auto it = group_state_.find(key);
    return it == group_state_.end() ? 0 : it->second.count;
  }
  auto it = monoid_support_.find(key);
  if (it == monoid_support_.end()) return 0;
  int64_t total = 0;
  for (const auto& [value, mult] : it->second) total += mult;
  return total;
}

bool Equivalent(const TupleStream& a, const TupleStream& b) {
  if (a.schema() != b.schema()) return false;
  TupleStream ca = Consolidate(a);
  TupleStream cb = Consolidate(b);
  if (ca.size() != cb.size()) return false;
  // Consolidate emits rows in map order: element-wise comparison works.
  for (size_t i = 0; i < ca.size(); ++i) {
    if (!(ca.tuples()[i] == cb.tuples()[i])) return false;
  }
  return true;
}

}  // namespace itg::gsa
