#include "gsa/profile.h"

namespace itg::gsa {

void ExecutionProfile::RegisterOp(int id, std::string op,
                                  std::string detail) {
  Entry& e = ops_[id];
  e.op = std::move(op);
  e.detail = std::move(detail);
}

OperatorCounters& ExecutionProfile::Op(int id) {
  return ops_[id].counters;
}

const OperatorCounters* ExecutionProfile::Find(int id) const {
  auto it = ops_.find(id);
  return it == ops_.end() ? nullptr : &it->second.counters;
}

void ExecutionProfile::ResetCounters() {
  for (auto& [id, entry] : ops_) entry.counters = OperatorCounters{};
  supersteps_.clear();
}

void ExecutionProfile::Merge(const ExecutionProfile& o) {
  for (const auto& [id, entry] : o.ops_) {
    Entry& mine = ops_[id];
    if (mine.op.empty()) {
      mine.op = entry.op;
      mine.detail = entry.detail;
    }
    mine.counters.Merge(entry.counters);
  }
  supersteps_.insert(supersteps_.end(), o.supersteps_.begin(),
                     o.supersteps_.end());
}

bool ExecutionProfile::SameWork(const ExecutionProfile& o) const {
  // Ids must match exactly; zero-count entries still participate so a
  // silently-unrecorded operator is a difference, not a pass.
  if (ops_.size() != o.ops_.size()) return false;
  auto a = ops_.begin();
  auto b = o.ops_.begin();
  for (; a != ops_.end(); ++a, ++b) {
    if (a->first != b->first) return false;
    if (!a->second.counters.SameWork(b->second.counters)) return false;
  }
  if (supersteps_.size() != o.supersteps_.size()) return false;
  for (size_t i = 0; i < supersteps_.size(); ++i) {
    if (!supersteps_[i].SameWork(o.supersteps_[i])) return false;
  }
  return true;
}

std::vector<uint64_t> ExecutionProfile::WorkFingerprint() const {
  std::vector<uint64_t> out;
  out.reserve(ops_.size() * 9 + supersteps_.size() * 7);
  for (const auto& [id, entry] : ops_) {
    const OperatorCounters& c = entry.counters;
    out.push_back(static_cast<uint64_t>(id));
    out.push_back(c.in_pos);
    out.push_back(c.in_neg);
    out.push_back(c.out_pos);
    out.push_back(c.out_neg);
    out.push_back(c.pruned);
    out.push_back(c.windows);
    out.push_back(c.edges);
    out.push_back(c.evals);
  }
  for (const SuperstepProfile& s : supersteps_) {
    out.push_back(static_cast<uint64_t>(s.superstep));
    out.push_back(s.incremental ? 1 : 0);
    out.push_back(s.active_vertices);
    out.push_back(s.frontier);
    out.push_back(s.emissions);
    out.push_back(s.windows);
    out.push_back(s.edges);
    for (uint64_t b : s.shuffle_bytes) out.push_back(b);
  }
  return out;
}

}  // namespace itg::gsa
