#ifndef ITG_GSA_PLAN_H_
#define ITG_GSA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "gsa/profile.h"

namespace itg::gsa {

/// A Graph Streaming Algebra operator tree (Table 3 of the paper). The
/// compiler produces one for each UDF (the one-shot plan) and derives the
/// incremental plan by applying the Table-4 incrementalization rules.
///
/// The tree is the *logical* plan: the executor interprets a fused
/// physical form (walk enumeration with inlined filters/maps/accumulates),
/// but the logical tree is what incrementalization rewrites and what
/// `Explain()` prints.
struct PlanNode {
  /// Operator name: Walk, W-Seek, W-Join, Filter, Map, Union, Difference,
  /// Assign, Accumulate, Apply, Stream, DeltaStream.
  std::string op;
  /// Subscript / annotation (predicates, rename lists, stream names).
  std::string detail;
  /// Stable operator id, assigned by `AssignOperatorIds` in pre-order
  /// over the one-shot plan. `Incrementalize` *preserves* ids: a derived
  /// node keeps the id of the one-shot node it was rewritten from, so
  /// runtime counters recorded against the fused physical form annotate
  /// both plans. Nodes introduced by the rewrite (the rule-⑦ Union and
  /// its Walk sub-queries) start at -1 and receive fresh ids afterwards.
  int op_id = -1;
  std::vector<std::unique_ptr<PlanNode>> children;

  static std::unique_ptr<PlanNode> Make(std::string op, std::string detail) {
    auto node = std::make_unique<PlanNode>();
    node->op = std::move(op);
    node->detail = std::move(detail);
    return node;
  }

  std::unique_ptr<PlanNode> Clone() const {
    auto node = Make(op, detail);
    node->op_id = op_id;
    for (const auto& child : children) {
      node->children.push_back(child->Clone());
    }
    return node;
  }
};

/// Pretty-prints a plan tree, one operator per line, indented.
std::string Explain(const PlanNode& root);

/// Assigns ids to every node with `op_id < 0`, pre-order, starting at
/// `*next_id`; advances `*next_id` past the ids consumed. Nodes that
/// already carry an id (inherited through Incrementalize) are skipped,
/// so calling this on the one-shot plan and then on the derived
/// incremental plan yields one consistent id space.
void AssignOperatorIds(PlanNode* root, int* next_id);

/// EXPLAIN ANALYZE: the plan tree annotated with the runtime counters
/// recorded against each operator id — tuple counts split by +/-
/// multiplicity, Δ-walks pruned, window reads, predicate evaluations and
/// wall time. Operators with no recorded work print bare.
std::string ExplainAnalyze(const PlanNode& root,
                           const ExecutionProfile& profile);

/// Graphviz dot export of a plan tree; when `profile` is non-null each
/// node is labeled with its counters (boxes shaded by relative edge-scan
/// work).
std::string PlanToDot(const PlanNode& root, const ExecutionProfile* profile,
                      const std::string& graph_name = "gsa_plan");

/// Applies the GSA incrementalization rules (Table 4) to a one-shot plan:
///   ① Δσ(s) = σ(Δs)        ② ΔΠ(s) = Π(Δs)
///   ③ Δ(s1 ∪ s2) = Δs1 ∪ Δs2  ④ Δ(s1 ⊖ s2) = Δs1 ⊖ Δs2
///   ⑤ Δ(←(s)) = ←(Δs)      ⑥ Δ(⊎(s)) = ⊎(Δs)
///   ⑦ ΔWalk(s1..sn) = ∪_p Walk(s'1.., s'_{p-1}, Δs_p, s_{p+1}, .., s_n)
/// GSA is closed under incrementalization: the result is again a GSA plan.
std::unique_ptr<PlanNode> Incrementalize(const PlanNode& plan);

}  // namespace itg::gsa

#endif  // ITG_GSA_PLAN_H_
