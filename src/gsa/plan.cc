#include "gsa/plan.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace itg::gsa {

namespace {

void ExplainRec(const PlanNode& node, int indent, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << node.op;
  if (!node.detail.empty()) *os << "[" << node.detail << "]";
  *os << "\n";
  for (const auto& child : node.children) {
    ExplainRec(*child, indent + 1, os);
  }
}

std::string FormatNanos(uint64_t nanos) {
  char buf[32];
  if (nanos < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(nanos));
  } else if (nanos < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", nanos / 1e3);
  } else if (nanos < 10'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", nanos / 1e9);
  }
  return buf;
}

/// Counter annotation split into groups; only groups with activity are
/// included, so pass-through logical operators stay visually quiet.
std::vector<std::string> FormatCounterParts(const OperatorCounters& c) {
  std::vector<std::string> parts;
  std::ostringstream os;
  auto take = [&] {
    parts.push_back(os.str());
    os.str("");
  };
  if (c.in_pos != 0 || c.in_neg != 0) {
    os << "in=+" << c.in_pos << "/-" << c.in_neg;
    take();
  }
  if (c.out_pos != 0 || c.out_neg != 0) {
    os << "out=+" << c.out_pos << "/-" << c.out_neg;
    take();
  }
  if (c.pruned != 0) {
    os << "pruned=" << c.pruned;
    const uint64_t enumerated = c.out_pos + c.out_neg;
    char pct[32];
    std::snprintf(pct, sizeof(pct), " (%.1f%% of candidates)",
                  100.0 * static_cast<double>(c.pruned) /
                      static_cast<double>(enumerated + c.pruned));
    os << pct;
    take();
  }
  if (c.windows != 0) {
    os << "windows=" << c.windows;
    take();
  }
  if (c.edges != 0) {
    os << "edges=" << c.edges;
    take();
  }
  if (c.evals != 0) {
    os << "evals=" << c.evals;
    take();
  }
  if (c.wall_nanos != 0) {
    os << "wall=" << FormatNanos(c.wall_nanos);
    take();
  }
  return parts;
}

std::string JoinParts(const std::vector<std::string>& parts,
                      const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

void ExplainAnalyzeRec(const PlanNode& node, const ExecutionProfile& profile,
                       int indent, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << node.op;
  if (!node.detail.empty()) *os << "[" << node.detail << "]";
  if (node.op_id >= 0) {
    *os << "  (#" << node.op_id << ")";
    if (const OperatorCounters* c = profile.Find(node.op_id)) {
      if (!c->IsZero()) *os << " " << JoinParts(FormatCounterParts(*c), " ");
    }
  }
  *os << "\n";
  for (const auto& child : node.children) {
    ExplainAnalyzeRec(*child, profile, indent + 1, os);
  }
}

void DotEscape(const std::string& s, std::ostringstream* os) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') *os << '\\';
    *os << ch;
  }
}

uint64_t MaxEdges(const PlanNode& node, const ExecutionProfile* profile) {
  uint64_t best = 0;
  if (profile && node.op_id >= 0) {
    if (const OperatorCounters* c = profile->Find(node.op_id)) {
      best = c->edges;
    }
  }
  for (const auto& child : node.children) {
    best = std::max(best, MaxEdges(*child, profile));
  }
  return best;
}

int DotRec(const PlanNode& node, const ExecutionProfile* profile,
           uint64_t max_edges, int* next, std::ostringstream* os) {
  const int me = (*next)++;
  *os << "  n" << me << " [label=\"";
  DotEscape(node.op, os);
  if (!node.detail.empty()) {
    *os << "[";
    DotEscape(node.detail, os);
    *os << "]";
  }
  if (node.op_id >= 0) *os << "\\n#" << node.op_id;
  double heat = 0.0;
  if (profile && node.op_id >= 0) {
    if (const OperatorCounters* c = profile->Find(node.op_id)) {
      if (!c->IsZero()) {
        // One counter group per dot label line.
        for (const std::string& part : FormatCounterParts(*c)) {
          *os << "\\n";
          DotEscape(part, os);
        }
        if (max_edges > 0) {
          heat = static_cast<double>(c->edges) /
                 static_cast<double>(max_edges);
        }
      }
    }
  }
  *os << "\"";
  if (heat > 0.0) {
    // Shade hot operators (by edge-scan share) light yellow → orange.
    const int green = 235 - static_cast<int>(heat * 130.0);
    char color[16];
    std::snprintf(color, sizeof(color), "#ff%02xb0", green);
    *os << ", style=filled, fillcolor=\"" << color << "\"";
  }
  *os << "];\n";
  for (const auto& child : node.children) {
    const int c = DotRec(*child, profile, max_edges, next, os);
    // Dataflow direction: tuples flow child → parent.
    *os << "  n" << c << " -> n" << me << ";\n";
  }
  return me;
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::ostringstream os;
  ExplainRec(root, 0, &os);
  return os.str();
}

void AssignOperatorIds(PlanNode* root, int* next_id) {
  if (root->op_id < 0) root->op_id = (*next_id)++;
  for (auto& child : root->children) {
    AssignOperatorIds(child.get(), next_id);
  }
}

std::string ExplainAnalyze(const PlanNode& root,
                           const ExecutionProfile& profile) {
  std::ostringstream os;
  ExplainAnalyzeRec(root, profile, 0, &os);
  return os.str();
}

std::string PlanToDot(const PlanNode& root, const ExecutionProfile* profile,
                      const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  const uint64_t max_edges = MaxEdges(root, profile);
  int next = 0;
  DotRec(root, profile, max_edges, &next, &os);
  os << "}\n";
  return os.str();
}

std::unique_ptr<PlanNode> Incrementalize(const PlanNode& plan) {
  // Leaf streams: Δ(Stream s) = DeltaStream Δs. The derived node keeps
  // the source stream's operator id: at runtime the same physical scan
  // site serves both plans, so its counters annotate both trees.
  if (plan.op == "Stream") {
    auto delta = PlanNode::Make("DeltaStream", "Δ" + plan.detail);
    delta->op_id = plan.op_id;
    return delta;
  }
  if (plan.op == "DeltaStream") {
    ITG_CHECK(false) << "cannot incrementalize an already-incremental plan";
  }
  // Rule ⑦: Walk(s1..sn) -> ∪_p Walk(s'1, .., s'_{p-1}, Δs_p, s_{p+1}, ..).
  if (plan.op == "Walk") {
    auto result = PlanNode::Make("Union", "rule 7");
    const size_t n = plan.children.size();
    for (size_t p = 0; p < n; ++p) {
      auto sub = PlanNode::Make("Walk", plan.detail + " : q" +
                                            std::to_string(p + 1));
      sub->op_id = plan.op_id;
      for (size_t i = 0; i < n; ++i) {
        if (i < p) {
          auto updated = plan.children[i]->Clone();
          updated->detail += "'";  // s'_i = s_i ∪ Δs_i
          sub->children.push_back(std::move(updated));
        } else if (i == p) {
          sub->children.push_back(Incrementalize(*plan.children[i]));
        } else {
          sub->children.push_back(plan.children[i]->Clone());
        }
      }
      result->children.push_back(std::move(sub));
    }
    return result;
  }
  // Rules ①②⑤⑥ (single-input linear operators) and ③④ (binary):
  // push Δ through to every child; the rewritten node inherits its
  // source's id.
  auto node = PlanNode::Make(plan.op, plan.detail);
  node->op_id = plan.op_id;
  for (const auto& child : plan.children) {
    node->children.push_back(Incrementalize(*child));
  }
  return node;
}

}  // namespace itg::gsa
