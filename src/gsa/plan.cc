#include "gsa/plan.h"

#include <sstream>

#include "common/logging.h"

namespace itg::gsa {

namespace {

void ExplainRec(const PlanNode& node, int indent, std::ostringstream* os) {
  for (int i = 0; i < indent; ++i) *os << "  ";
  *os << node.op;
  if (!node.detail.empty()) *os << "[" << node.detail << "]";
  *os << "\n";
  for (const auto& child : node.children) {
    ExplainRec(*child, indent + 1, os);
  }
}

}  // namespace

std::string Explain(const PlanNode& root) {
  std::ostringstream os;
  ExplainRec(root, 0, &os);
  return os.str();
}

std::unique_ptr<PlanNode> Incrementalize(const PlanNode& plan) {
  // Leaf streams: Δ(Stream s) = DeltaStream Δs.
  if (plan.op == "Stream") {
    return PlanNode::Make("DeltaStream", "Δ" + plan.detail);
  }
  if (plan.op == "DeltaStream") {
    ITG_CHECK(false) << "cannot incrementalize an already-incremental plan";
  }
  // Rule ⑦: Walk(s1..sn) -> ∪_p Walk(s'1, .., s'_{p-1}, Δs_p, s_{p+1}, ..).
  if (plan.op == "Walk") {
    auto result = PlanNode::Make("Union", "rule 7");
    const size_t n = plan.children.size();
    for (size_t p = 0; p < n; ++p) {
      auto sub = PlanNode::Make("Walk", plan.detail + " : q" +
                                            std::to_string(p + 1));
      for (size_t i = 0; i < n; ++i) {
        if (i < p) {
          auto updated = plan.children[i]->Clone();
          updated->detail += "'";  // s'_i = s_i ∪ Δs_i
          sub->children.push_back(std::move(updated));
        } else if (i == p) {
          sub->children.push_back(Incrementalize(*plan.children[i]));
        } else {
          sub->children.push_back(plan.children[i]->Clone());
        }
      }
      result->children.push_back(std::move(sub));
    }
    return result;
  }
  // Rules ①②⑤⑥ (single-input linear operators) and ③④ (binary):
  // push Δ through to every child.
  auto node = PlanNode::Make(plan.op, plan.detail);
  for (const auto& child : plan.children) {
    node->children.push_back(Incrementalize(*child));
  }
  return node;
}

}  // namespace itg::gsa
