#ifndef ITG_GSA_STREAM_OPS_H_
#define ITG_GSA_STREAM_OPS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "lang/type.h"

namespace itg::gsa {

/// The stream half of Graph Streaming Algebra (Table 3) as composable
/// operators over materialized tuple streams.
///
/// The engine fuses these into the walk enumeration for performance;
/// this layer is the reference semantics — the operators the
/// incrementalization rules (Table 4) are stated over — and is what the
/// operator unit tests and the algebra property tests exercise. A tuple
/// carries a signed multiplicity, so insertions and deletions flow
/// through the same operators (§4.1).

/// One stream element: a row of doubles with multiplicity m ∈ ℤ \ {0}
/// (the paper's simple-graph model keeps |m| = 1; consolidation can
/// produce other values transiently before they cancel).
struct Tuple {
  std::vector<double> values;
  int64_t mult = 1;

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

/// A finite, materialized stream with a named schema.
class TupleStream {
 public:
  TupleStream() = default;
  explicit TupleStream(std::vector<std::string> schema)
      : schema_(std::move(schema)) {}

  void Append(std::vector<double> values, int64_t mult = 1) {
    tuples_.push_back({std::move(values), mult});
  }

  const std::vector<std::string>& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }

  /// Column index of `name` (-1 if absent).
  int ColumnIndex(const std::string& name) const;

  /// Net multiplicity of a row value (0 if absent after cancellation).
  int64_t MultiplicityOf(const std::vector<double>& values) const;

 private:
  std::vector<std::string> schema_;
  std::vector<Tuple> tuples_;
};

/// σ_p — keeps tuples satisfying `pred` (multiplicity untouched).
TupleStream Filter(const TupleStream& input,
                   const std::function<bool(const Tuple&)>& pred);

/// Π_f — maps each tuple's row through `fn` under a new schema.
TupleStream Map(const TupleStream& input, std::vector<std::string> schema,
                const std::function<std::vector<double>(const Tuple&)>& fn);

/// ∪ — multiset union: concatenation of the two streams (schemas must
/// match).
StatusOr<TupleStream> Union(const TupleStream& a, const TupleStream& b);

/// ⊖ — difference: b's tuples flow with negated multiplicities.
StatusOr<TupleStream> Difference(const TupleStream& a,
                                 const TupleStream& b);

/// Combines equal rows, summing multiplicities and dropping zeros — the
/// normal form under which two streams are compared for equivalence.
TupleStream Consolidate(const TupleStream& input);

/// ←_{id,attr} — the Assign operator: a *stateful* sink mapping vertex id
/// → attribute value. Consuming an input tuple <id, value> emits, per
/// the paper, a deletion of the old value and an insertion of the new
/// one; the emitted change stream is returned.
class AssignOperator {
 public:
  /// Applies a stream of <id, value> tuples; returns the change stream
  /// (<id, old>₋₁, <id, new>₊₁ per modified id).
  TupleStream Apply(const TupleStream& input);

  /// Current value of `id` (or `absent` when never assigned).
  double ValueOf(double id, double absent = 0.0) const;

 private:
  std::map<double, double> state_;
};

/// ⊎_{id,f(attr)} — the Accumulate operator: maintains one aggregate per
/// key under signed input. Abelian-group ops absorb deletions via the
/// inverse; monoid ops keep the full support multiset so deleted minima
/// are replaced exactly (the arrangement the engine's CNT optimization
/// approximates with a counter).
class AccumulateOperator {
 public:
  explicit AccumulateOperator(lang::AccmOp op) : op_(op) {}

  /// Applies a stream of <key, value> tuples with multiplicities.
  Status Apply(const TupleStream& input);

  /// Current aggregate of `key` (identity when no support).
  double AggregateOf(double key) const;

  /// Number of supporting inputs currently held for `key`.
  int64_t SupportOf(double key) const;

 private:
  struct GroupState {
    double aggregate;
    int64_t count = 0;
  };

  lang::AccmOp op_;
  std::map<double, GroupState> group_state_;
  // Monoids: value -> net multiplicity per key.
  std::map<double, std::map<double, int64_t>> monoid_support_;
};

/// Stream equivalence: equal consolidated multisets. The foundation of
/// the incrementalization property tests (Q(G ∪ ΔG) = Q(G) ∪ ΔQ).
bool Equivalent(const TupleStream& a, const TupleStream& b);

}  // namespace itg::gsa

#endif  // ITG_GSA_STREAM_OPS_H_
