#ifndef ITG_GSA_PROFILE_H_
#define ITG_GSA_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace itg::gsa {

/// Runtime work counters of one GSA operator (keyed by the PlanNode's
/// stable `op_id`). The integer fields are *deterministic*: for a given
/// program, graph and mutation stream they are bit-identical across
/// thread counts and machines (enforced by parallel_determinism_test and
/// the report_diff regression gate). `wall_nanos` is measured time and is
/// excluded from determinism comparisons and from the default gate.
struct OperatorCounters {
  /// Input tuples by multiplicity sign (retractions are `neg`).
  uint64_t in_pos = 0;
  uint64_t in_neg = 0;
  /// Output tuples by multiplicity sign.
  uint64_t out_pos = 0;
  uint64_t out_neg = 0;
  /// Candidate extensions rejected by neighbor pruning's allow-sets —
  /// Δ-walks the §6 optimizations saved enumerating.
  uint64_t pruned = 0;
  /// Adjacency window blocks read by this operator's W-Seeks.
  uint64_t windows = 0;
  /// Adjacency entries scanned while joining against those windows.
  uint64_t edges = 0;
  /// L_NGA expression evaluations attributed to this operator
  /// (level predicates / emission guards and values).
  uint64_t evals = 0;
  /// Measured wall time inside the operator. On the parallel path this
  /// sums per-task time over workers, so it can exceed the run's wall
  /// clock — it is a work measure, not a latency.
  uint64_t wall_nanos = 0;

  void Merge(const OperatorCounters& o) {
    in_pos += o.in_pos;
    in_neg += o.in_neg;
    out_pos += o.out_pos;
    out_neg += o.out_neg;
    pruned += o.pruned;
    windows += o.windows;
    edges += o.edges;
    evals += o.evals;
    wall_nanos += o.wall_nanos;
  }

  /// Equality over the deterministic fields only (no wall_nanos).
  bool SameWork(const OperatorCounters& o) const {
    return in_pos == o.in_pos && in_neg == o.in_neg &&
           out_pos == o.out_pos && out_neg == o.out_neg &&
           pruned == o.pruned && windows == o.windows && edges == o.edges &&
           evals == o.evals;
  }

  bool IsZero() const {
    return in_pos == 0 && in_neg == 0 && out_pos == 0 && out_neg == 0 &&
           pruned == 0 && windows == 0 && edges == 0 && evals == 0 &&
           wall_nanos == 0;
  }
};

/// One row of the per-superstep timeline.
struct SuperstepProfile {
  int superstep = 0;
  bool incremental = false;
  /// Vertices with active=true entering the superstep.
  uint64_t active_vertices = 0;
  /// Enumeration frontier: active starts (one-shot) or Δvs changed
  /// starts (incremental).
  uint64_t frontier = 0;
  uint64_t emissions = 0;
  uint64_t windows = 0;
  uint64_t edges = 0;
  /// Wall / CPU time of the superstep (CPU is the calling thread's
  /// CLOCK_THREAD_CPUTIME_ID slice; nondeterministic, never gated).
  uint64_t wall_nanos = 0;
  uint64_t cpu_nanos = 0;
  /// Pre-aggregated shuffle volume sent per simulated partition during
  /// this superstep (empty unless num_partitions > 1).
  std::vector<uint64_t> shuffle_bytes;
  /// Order-independent digest of the audited attribute state after this
  /// superstep (0 unless EngineOptions::digest_per_superstep). A state
  /// fingerprint, not a work counter — excluded from SameWork so the
  /// regression gate keys on work, and digest equality is asserted
  /// separately by the determinism tests.
  uint64_t state_digest = 0;

  bool SameWork(const SuperstepProfile& o) const {
    return superstep == o.superstep && incremental == o.incremental &&
           active_vertices == o.active_vertices && frontier == o.frontier &&
           emissions == o.emissions && windows == o.windows &&
           edges == o.edges && shuffle_bytes == o.shuffle_bytes;
  }
};

/// The runtime profile of one engine run: per-operator counters keyed by
/// the stable operator ids the compiler assigned to the GSA plans, plus
/// the superstep timeline. Operators are registered once (id → name,
/// detail); counters reset per run while the registration survives.
class ExecutionProfile {
 public:
  struct Entry {
    std::string op;      ///< operator name (PlanNode::op, or phase name)
    std::string detail;  ///< subscript (PlanNode::detail)
    OperatorCounters counters;
  };

  /// Registers (or re-labels) an operator id.
  void RegisterOp(int id, std::string op, std::string detail);

  /// Counters of a registered id (registers an unnamed entry on demand so
  /// recording never crashes on an unregistered id).
  OperatorCounters& Op(int id);
  const OperatorCounters* Find(int id) const;

  const std::map<int, Entry>& ops() const { return ops_; }
  std::vector<SuperstepProfile>& supersteps() { return supersteps_; }
  const std::vector<SuperstepProfile>& supersteps() const {
    return supersteps_;
  }

  /// Zeroes all counters and clears the timeline; keeps registrations.
  void ResetCounters();

  /// Folds another profile's counters and timeline into this one
  /// (drivers accumulate a whole-process profile across runs).
  void Merge(const ExecutionProfile& o);

  /// Deterministic-work equality: same ids, same counters (excluding
  /// wall/cpu time), same timeline work columns.
  bool SameWork(const ExecutionProfile& o) const;

  /// The deterministic fields flattened to a stable vector (for
  /// fingerprint-style tests).
  std::vector<uint64_t> WorkFingerprint() const;

 private:
  std::map<int, Entry> ops_;
  std::vector<SuperstepProfile> supersteps_;
};

}  // namespace itg::gsa

#endif  // ITG_GSA_PROFILE_H_
