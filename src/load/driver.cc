#include "load/driver.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "gen/rmat.h"
#include "storage/csr.h"

namespace itg {
namespace load {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t MicrosBetween(Clock::time_point a, Clock::time_point b) {
  if (b <= a) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

/// Mirror of the daemon's LoadGraph + Service::Create normalisation:
/// rmat:<scale> (deterministic seed) or a whitespace edge list, then
/// optional symmetrisation, then dedupe + self-loop drop — yielding the
/// exact `present_` set ingest validation starts from.
StatusOr<std::vector<Edge>> LoadBaseEdges(const std::string& graph,
                                          bool symmetric,
                                          VertexId* num_vertices) {
  std::vector<Edge> edges;
  if (graph.rfind("rmat:", 0) == 0) {
    const int scale = std::stoi(graph.substr(5));
    *num_vertices = RmatVertices(scale);
    edges = GenerateRmat(scale);
  } else {
    std::ifstream in(graph);
    if (!in) {
      return Status::IOError("cannot open graph file '" + graph + "'");
    }
    VertexId max_v = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream row(line);
      Edge e;
      if (row >> e.src >> e.dst) {
        edges.push_back(e);
        max_v = std::max({max_v, e.src, e.dst});
      }
    }
    *num_vertices = max_v + 1;
  }
  if (symmetric) edges = SymmetrizeEdges(edges);
  return edges;
}

}  // namespace

// ---------------------------------------------------------------- Correlator

void Correlator::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  pending_ = 0;
}

void Correlator::RecordLocked(Trace* t, Clock::time_point arrival) {
  recorder_->Record(MicrosBetween(t->intended, arrival));
  ++t->recorded;
}

void Correlator::OnAck(uint64_t trace_id, Clock::time_point intended) {
  if (fanout_ == 0) return;  // nobody subscribed: nothing will arrive
  std::lock_guard<std::mutex> lock(mu_);
  Trace& t = traces_[trace_id];
  t.acked = true;
  t.intended = intended;
  for (Clock::time_point arrival : t.early) RecordLocked(&t, arrival);
  t.early.clear();
  if (t.recorded >= fanout_) {
    traces_.erase(trace_id);
  } else {
    ++pending_;
  }
}

void Correlator::OnDelta(uint64_t trace_id, Clock::time_point arrival) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end()) {
    // Delta raced ahead of the ingester reading its ack: buffer it.
    traces_[trace_id].early.push_back(arrival);
    return;
  }
  Trace& t = it->second;
  if (!t.acked) {
    t.early.push_back(arrival);
    return;
  }
  RecordLocked(&t, arrival);
  if (t.recorded >= fanout_) {
    traces_.erase(it);
    --pending_;
  }
}

size_t Correlator::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

// ---------------------------------------------------------------- LoadDriver

/// One generator lane: its own connection, rng, and the lane's slice of
/// the mirrored edge set (src ≡ lane (mod lanes)).
struct LoadDriver::Lane {
  int index = 0;
  ServeConnection conn;
  std::mt19937_64 rng;
  VertexId num_vertices = 0;
  int lanes = 1;
  /// Edges present on the server with src in this lane: base-graph
  /// members (never deleted by us) and our own acked inserts.
  std::unordered_set<Edge, EdgeHash> base;
  std::unordered_set<Edge, EdgeHash> owned_set;
  std::vector<Edge> owned;

  bool Present(const Edge& e) const {
    return base.count(e) != 0 || owned_set.count(e) != 0;
  }

  /// Draws ops_per_batch fresh mutations without touching the model;
  /// CommitBatch applies them once the server acks.
  bool FillBatch(serve::Request* req, uint64_t ops, double delete_fraction) {
    req->inserts.clear();
    req->deletes.clear();
    std::unordered_set<Edge, EdgeHash> in_batch;
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (uint64_t k = 0; k < ops; ++k) {
      const bool want_delete =
          !owned.empty() &&
          owned.size() > req->deletes.size() + 8 &&
          coin(rng) < delete_fraction;
      if (want_delete) {
        // Sample an owned edge not already deleted in this batch.
        bool picked = false;
        for (int attempt = 0; attempt < 16; ++attempt) {
          const Edge e = owned[rng() % owned.size()];
          if (in_batch.count(e) != 0) continue;
          in_batch.insert(e);
          req->deletes.push_back(e);
          picked = true;
          break;
        }
        if (picked) continue;
        // fall through to an insert
      }
      bool inserted = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        Edge e;
        e.src = static_cast<VertexId>(rng() % static_cast<uint64_t>(
                                                  num_vertices));
        e.src = e.src - (e.src % lanes) + index;
        if (e.src >= num_vertices) continue;
        e.dst = static_cast<VertexId>(rng() % static_cast<uint64_t>(
                                                  num_vertices));
        if (e.src == e.dst || Present(e) || in_batch.count(e) != 0) continue;
        in_batch.insert(e);
        req->inserts.push_back(e);
        inserted = true;
        break;
      }
      if (!inserted && req->inserts.empty() && req->deletes.empty()) {
        return false;  // dense lane: could not produce a single op
      }
    }
    return !req->inserts.empty() || !req->deletes.empty();
  }

  void CommitBatch(const serve::Request& req) {
    for (const Edge& e : req.inserts) {
      owned_set.insert(e);
      owned.push_back(e);
    }
    for (const Edge& e : req.deletes) {
      owned_set.erase(e);
      auto it = std::find(owned.begin(), owned.end(), e);
      if (it != owned.end()) {
        *it = owned.back();
        owned.pop_back();
      }
    }
  }
};

struct LoadDriver::SubConn {
  int index = 0;
  ServeConnection conn;
  std::thread reader;
};

LoadDriver::LoadDriver(DriverOptions options) : options_(std::move(options)) {
  correlator_ = std::make_unique<Correlator>(&recorder_,
                                             options_.subscribers);
}

LoadDriver::~LoadDriver() { Teardown(); }

Status LoadDriver::Setup() {
  if (setup_done_) return Status::OK();
  if (options_.ingesters < 1) {
    return Status::InvalidArgument("need at least one ingest connection");
  }
  VertexId num_vertices = 0;
  auto base_or =
      LoadBaseEdges(options_.graph, options_.symmetric, &num_vertices);
  ITG_RETURN_IF_ERROR(base_or.status());

  ITG_RETURN_IF_ERROR(control_.Connect(options_.port));

  // Subscribers first: their standing queries must exist before load
  // starts, so every Δ-batch fans out to all of them.
  for (int i = 0; i < options_.subscribers; ++i) {
    auto sub = std::make_unique<SubConn>();
    sub->index = i;
    ITG_RETURN_IF_ERROR(sub->conn.Connect(options_.port));
    serve::Request reg;
    reg.op = serve::RequestOp::kRegister;
    reg.query = "lq" + std::to_string(i);
    reg.program = options_.program;
    reg.subscribe = true;
    auto ack_or = sub->conn.Call(reg);
    ITG_RETURN_IF_ERROR(ack_or.status());
    if (ack_or.value().type != serve::ResponseType::kAck) {
      return Status::Internal("register " + reg.query + " failed: " +
                              ack_or.value().code + ": " +
                              ack_or.value().message);
    }
    ITG_RETURN_IF_ERROR(sub->conn.SetRecvTimeout(50));
    subs_.push_back(std::move(sub));
  }

  for (int i = 0; i < options_.ingesters; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->index = i;
    lane->lanes = options_.ingesters;
    lane->num_vertices = num_vertices;
    lane->rng.seed(options_.seed * 0x9e3779b97f4a7c15ull +
                   static_cast<uint64_t>(i));
    for (const Edge& e : base_or.value()) {
      if (e.src == e.dst) continue;  // the daemon drops self-loops too
      if (e.src % options_.ingesters == i) lane->base.insert(e);
    }
    ITG_RETURN_IF_ERROR(lane->conn.Connect(options_.port));
    lanes_.push_back(std::move(lane));
  }

  stop_.store(false, std::memory_order_relaxed);
  for (auto& sub : subs_) {
    SubConn* raw = sub.get();
    sub->reader = std::thread([this, raw] { SubscriberLoop(raw); });
  }
  setup_done_ = true;
  return Status::OK();
}

void LoadDriver::SubscriberLoop(SubConn* sub) {
  while (!stop_.load(std::memory_order_relaxed)) {
    serve::Response resp;
    const ReadOutcome out = sub->conn.Read(&resp);
    if (out == ReadOutcome::kTimeout) continue;
    if (out == ReadOutcome::kClosed || out == ReadOutcome::kError) break;
    if (resp.type == serve::ResponseType::kDelta && resp.trace_id != 0) {
      correlator_->OnDelta(resp.trace_id, Clock::now());
    }
  }
}

StatusOr<serve::Response> LoadDriver::FetchStatus() {
  serve::Request req;
  req.op = serve::RequestOp::kStatus;
  return control_.Call(req);
}

Status LoadDriver::IngestLoop(Lane* lane, double lane_rate,
                              Clock::time_point window_start,
                              Clock::time_point window_end,
                              uint64_t* batches, uint64_t* rejected,
                              uint64_t* queue_depth_max) {
  std::exponential_distribution<double> exp_gap(lane_rate);
  const double uniform_gap_s = 1.0 / lane_rate;
  auto next_gap = [&]() -> Clock::duration {
    const double s = options_.arrival == DriverOptions::Arrival::kPoisson
                         ? exp_gap(lane->rng)
                         : uniform_gap_s;
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(s));
  };

  // The whole schedule derives from window_start: lateness accumulates
  // visibly in the samples instead of silently re-anchoring the clock.
  Clock::time_point intended = window_start + next_gap();
  while (intended < window_end && !stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_until(intended);
    serve::Request req;
    req.op = serve::RequestOp::kIngest;
    if (!lane->FillBatch(&req, options_.ops_per_batch,
                         options_.delete_fraction)) {
      return Status::Internal("lane " + std::to_string(lane->index) +
                              " could not generate a batch (edge space "
                              "exhausted)");
    }
    for (;;) {
      auto ack_or = lane->conn.Call(req);
      ITG_RETURN_IF_ERROR(ack_or.status());
      const serve::Response& ack = ack_or.value();
      if (ack.type == serve::ResponseType::kAck) {
        lane->CommitBatch(req);
        correlator_->OnAck(ack.trace_id, intended);
        ++*batches;
        *queue_depth_max = std::max(*queue_depth_max, ack.queue_depth);
        break;
      }
      if (ack.code == "invalid_mutation") {
        // Model miss (should not happen with disjoint lanes): redraw the
        // whole batch at the SAME intended time, so the retry still pays
        // the full schedule delay.
        ++*rejected;
        if (!lane->FillBatch(&req, options_.ops_per_batch,
                             options_.delete_fraction)) {
          return Status::Internal("lane " + std::to_string(lane->index) +
                                  " could not regenerate a batch");
        }
        continue;
      }
      if (ack.code == "shutting_down") return Status::OK();
      return Status::Internal("ingest rejected: " + ack.code + ": " +
                              ack.message);
    }
    intended += next_gap();
  }
  return Status::OK();
}

StatusOr<WindowResult> LoadDriver::RunWindow(double rate,
                                             uint64_t duration_ms) {
  if (!setup_done_) return Status::Internal("Setup() not called");
  if (rate <= 0) return Status::InvalidArgument("rate must be positive");
  recorder_.Reset();
  correlator_->Reset();

  auto status_before_or = FetchStatus();
  ITG_RETURN_IF_ERROR(status_before_or.status());

  WindowResult result;
  result.offered_rate = rate;
  const double lane_rate = rate / options_.ingesters;
  const Clock::time_point window_start = Clock::now();
  const Clock::time_point window_end =
      window_start + std::chrono::milliseconds(duration_ms);

  // Status poller: samples server queue depth and view staleness while
  // the window runs, so the report carries server-side maxima next to
  // the client-side percentiles.
  std::atomic<bool> poll_stop{false};
  uint64_t polled_queue_max = 0;
  uint64_t polled_lag_max = 0;
  std::thread poller;
  if (options_.status_poll_ms > 0) {
    poller = std::thread([&] {
      while (!poll_stop.load(std::memory_order_relaxed)) {
        auto status_or = FetchStatus();
        if (status_or.ok()) {
          const serve::Response& s = status_or.value();
          polled_queue_max = std::max(polled_queue_max, s.queue_depth);
          for (const serve::QueryRow& q : s.queries) {
            polled_lag_max = std::max(polled_lag_max, q.lag_us);
          }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.status_poll_ms));
      }
    });
  }

  std::vector<std::thread> ingesters;
  std::vector<Status> lane_status(lanes_.size(), Status::OK());
  std::vector<uint64_t> lane_batches(lanes_.size(), 0);
  std::vector<uint64_t> lane_rejected(lanes_.size(), 0);
  std::vector<uint64_t> lane_queue_max(lanes_.size(), 0);
  for (size_t i = 0; i < lanes_.size(); ++i) {
    ingesters.emplace_back([&, i] {
      lane_status[i] =
          IngestLoop(lanes_[i].get(), lane_rate, window_start, window_end,
                     &lane_batches[i], &lane_rejected[i],
                     &lane_queue_max[i]);
    });
  }
  for (std::thread& t : ingesters) t.join();
  const Clock::time_point send_done = Clock::now();

  for (size_t i = 0; i < lanes_.size(); ++i) {
    if (!lane_status[i].ok()) {
      poll_stop.store(true, std::memory_order_relaxed);
      if (poller.joinable()) poller.join();
      return lane_status[i];
    }
    result.batches += lane_batches[i];
    result.rejected_batches += lane_rejected[i];
    result.queue_depth_max =
        std::max(result.queue_depth_max, lane_queue_max[i]);
  }

  // Drain: every acked batch owes one ΔQ record per subscriber; wait for
  // the tail (it is part of the capacity story — a server that cannot
  // drain within the timeout is past its knee).
  const Clock::time_point drain_deadline =
      send_done + std::chrono::milliseconds(options_.drain_timeout_ms);
  while (correlator_->pending() > 0 && Clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  result.drained = correlator_->pending() == 0;

  poll_stop.store(true, std::memory_order_relaxed);
  if (poller.joinable()) poller.join();

  auto status_after_or = FetchStatus();
  ITG_RETURN_IF_ERROR(status_after_or.status());
  result.backpressure_stalls =
      status_after_or.value().backpressure_stalls -
      status_before_or.value().backpressure_stalls;
  result.queue_depth_max = std::max(result.queue_depth_max, polled_queue_max);
  result.view_lag_us_max = polled_lag_max;

  const double elapsed_s =
      static_cast<double>(MicrosBetween(window_start, send_done)) / 1e6;
  result.achieved_rate =
      elapsed_s > 0 ? static_cast<double>(result.batches) / elapsed_s : 0;
  result.latency = recorder_.Snap();
  return result;
}

void LoadDriver::Teardown() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& sub : subs_) {
    if (sub->reader.joinable()) sub->reader.join();
    sub->conn.Close();
  }
  subs_.clear();
  for (auto& lane : lanes_) lane->conn.Close();
  lanes_.clear();
  control_.Close();
  setup_done_ = false;
}

}  // namespace load
}  // namespace itg
