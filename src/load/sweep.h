// Capacity sweep: step the offered Δ-batch rate across a range, run one
// open-loop window per step through LoadDriver, and find the knee — the
// highest offered rate whose notify p99 still meets the SLO while the
// schedule actually keeps up (achieved ≥ 90% of offered; a driver that
// cannot hit its own schedule is already past saturation, whatever the
// surviving samples claim).
#ifndef ITG_LOAD_SWEEP_H_
#define ITG_LOAD_SWEEP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "harness/run_report.h"
#include "load/driver.h"

namespace itg {
namespace load {

struct SweepOptions {
  double min_rate = 20;
  double max_rate = 200;
  int steps = 5;
  /// Per-step measurement window.
  uint64_t step_duration_ms = 2000;
  /// Notify p99 SLO in milliseconds.
  double slo_ms = 50;
};

/// Converts one window's result to a report row, applying the SLO.
LoadPoint ToLoadPoint(const WindowResult& window, double slo_ms);

/// Runs the sweep (driver must be Setup() already). Points are appended
/// in ascending rate order; knee/knee_found/slo_verdict are filled per
/// the header comment. The returned section still needs the generator
/// config (connections/arrival/...) stamped by the caller.
StatusOr<LoadSection> RunSweep(LoadDriver* driver,
                                        const SweepOptions& options);

}  // namespace load
}  // namespace itg

#endif  // ITG_LOAD_SWEEP_H_
