#include "load/connection.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace itg {
namespace load {

Status ServeConnection::Connect(int port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + err);
  }
  fd_ = fd;
  buffer_.clear();
  return Status::OK();
}

Status ServeConnection::SetRecvTimeout(uint64_t millis) {
  if (fd_ < 0) return Status::IOError("not connected");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(millis / 1000);
  tv.tv_usec = static_cast<suseconds_t>((millis % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError("setsockopt(SO_RCVTIMEO): " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status ServeConnection::Send(const serve::Request& req) {
  if (fd_ < 0) return Status::IOError("not connected");
  std::string line = serve::SerializeRequest(req);
  line.push_back('\n');
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t w = ::send(fd_, line.data() + sent, line.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

ReadOutcome ServeConnection::ReadLine(std::string* line) {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      if (line->empty()) continue;  // tolerate blank keep-alive lines
      return ReadOutcome::kOk;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return ReadOutcome::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadOutcome::kTimeout;
    return ReadOutcome::kError;
  }
}

ReadOutcome ServeConnection::Read(serve::Response* resp, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return ReadOutcome::kError;
  }
  std::string line;
  const ReadOutcome out = ReadLine(&line);
  if (out != ReadOutcome::kOk) {
    if (out == ReadOutcome::kError && error != nullptr) {
      *error = std::strerror(errno);
    }
    return out;
  }
  auto resp_or = serve::ParseResponse(line);
  if (!resp_or.ok()) {
    if (error != nullptr) *error = resp_or.status().ToString();
    return ReadOutcome::kError;
  }
  *resp = std::move(resp_or).value();
  return ReadOutcome::kOk;
}

StatusOr<serve::Response> ServeConnection::Call(
    const serve::Request& req,
    const std::function<void(const serve::Response&)>& on_delta) {
  ITG_RETURN_IF_ERROR(Send(req));
  const std::string want = serve::RequestOpName(req.op);
  for (;;) {
    serve::Response resp;
    std::string error;
    const ReadOutcome out = Read(&resp, &error);
    if (out == ReadOutcome::kClosed) {
      return Status::IOError("peer closed mid-call");
    }
    if (out == ReadOutcome::kTimeout) {
      return Status::IOError("recv timeout mid-call");
    }
    if (out == ReadOutcome::kError) return Status::IOError(error);
    // Interleaved subscription traffic: deltas and snapshots stream on
    // the same socket as the ack we are waiting for.
    if (resp.type == serve::ResponseType::kDelta ||
        resp.type == serve::ResponseType::kSnapshot) {
      if (on_delta) on_delta(resp);
      continue;
    }
    if (resp.op == want || resp.op.empty()) return resp;
    if (on_delta) on_delta(resp);
  }
}

void ServeConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

StatusOr<std::string> HttpGet(int port, const std::string& path) {
  ServeConnection conn;
  ITG_RETURN_IF_ERROR(conn.Connect(port));
  const std::string req = "GET " + path +
                          " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t w = ::send(conn.fd(), req.data() + sent, req.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(w);
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn.fd(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      raw.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // peer close ends an HTTP/1.0 response
  }
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::ParseError("malformed HTTP response from telemetry port");
  }
  if (raw.rfind("HTTP/1.0 200", 0) != 0 && raw.rfind("HTTP/1.1 200", 0) != 0) {
    return Status::IOError("telemetry GET " + path + " failed: " +
                           raw.substr(0, raw.find('\r')));
  }
  return raw.substr(header_end + 4);
}

}  // namespace load
}  // namespace itg
