#include "load/sweep.h"

#include <cstdio>

namespace itg {
namespace load {

namespace {

/// A point "keeps up" when the open-loop schedule was actually executed:
/// past saturation the ingesters fall behind their own intended times
/// and the achieved rate collapses below the offered one.
constexpr double kKeepUpFraction = 0.9;

bool KeepsUp(const LoadPoint& p) {
  return p.achieved_rate >= kKeepUpFraction * p.offered_rate;
}

}  // namespace

LoadPoint ToLoadPoint(const WindowResult& window, double slo_ms) {
  LoadPoint p;
  p.offered_rate = window.offered_rate;
  p.achieved_rate = window.achieved_rate;
  p.batches = window.batches;
  p.samples = window.latency.count;
  p.p50_us = window.latency.p50;
  p.p90_us = window.latency.p90;
  p.p99_us = window.latency.p99;
  p.p999_us = window.latency.p999;
  p.max_us = window.latency.max;
  p.backpressure_stalls = window.backpressure_stalls;
  p.queue_depth_max = window.queue_depth_max;
  p.view_lag_us_max = window.view_lag_us_max;
  p.rejected_batches = window.rejected_batches;
  const uint64_t slo_us = static_cast<uint64_t>(slo_ms * 1000.0);
  // An undrained window means notifications were still owed at timeout:
  // the missing tail can only make p99 worse, so it cannot pass.
  p.slo_ok = window.drained && window.latency.count > 0 &&
             window.latency.p99 <= slo_us;
  return p;
}

StatusOr<LoadSection> RunSweep(LoadDriver* driver,
                               const SweepOptions& options) {
  if (options.steps < 1) {
    return Status::InvalidArgument("sweep needs at least one step");
  }
  if (options.max_rate < options.min_rate) {
    return Status::InvalidArgument("sweep max_rate below min_rate");
  }
  LoadSection section;
  section.sweep = true;
  section.slo_ms = options.slo_ms;
  const double span = options.max_rate - options.min_rate;
  for (int step = 0; step < options.steps; ++step) {
    const double rate =
        options.steps == 1
            ? options.min_rate
            : options.min_rate + span * step / (options.steps - 1);
    auto window_or = driver->RunWindow(rate, options.step_duration_ms);
    ITG_RETURN_IF_ERROR(window_or.status());
    const LoadPoint p = ToLoadPoint(window_or.value(), options.slo_ms);
    std::fprintf(stderr,
                 "sweep: rate=%.1f achieved=%.1f p50=%lluus p99=%lluus "
                 "stalls=%llu %s\n",
                 p.offered_rate, p.achieved_rate,
                 static_cast<unsigned long long>(p.p50_us),
                 static_cast<unsigned long long>(p.p99_us),
                 static_cast<unsigned long long>(p.backpressure_stalls),
                 p.slo_ok ? "SLO-ok" : "SLO-miss");
    section.points.push_back(p);
  }
  // Knee: highest offered rate meeting the SLO while keeping up with its
  // own schedule.
  for (const LoadPoint& p : section.points) {
    if (p.slo_ok && KeepsUp(p) && (!section.knee_found ||
                                   p.offered_rate > section.knee.offered_rate)) {
      section.knee_found = true;
      section.knee = p;
    }
  }
  section.slo_verdict = section.knee_found ? "pass" : "fail";
  return section;
}

}  // namespace load
}  // namespace itg
