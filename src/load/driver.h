// Concurrent open-loop load driver for the serving daemon
// (example_itg_serve): M ingest connections stream Δ-batches on a
// Poisson or uniform arrival schedule while S subscriber connections
// hold standing queries and timestamp every ΔQ record they receive.
//
// Coordinated-omission discipline: the arrival schedule is fixed up
// front (open loop) and every latency sample is measured from the
// batch's *intended* send time, never the actual one — a server stall
// that delays the schedule is charged its full queueing delay instead of
// silently thinning the sample stream. See docs/SERVING.md ("Capacity
// planning") for the methodology.
//
// Generator invariants: ingester i only touches edges whose src ≡ i
// (mod M), and mirrors the daemon's ingest-validation edge set for its
// lane (base graph minus self-loops/dupes, plus its own acked inserts).
// Because acks are read synchronously per connection, the mirror is
// exact and `invalid_mutation` rejections cannot occur in steady state;
// they are still handled (regenerate + resend at the same intended time,
// counted as rejected_batches) so a model bug degrades the report
// instead of wedging the run.
#ifndef ITG_LOAD_DRIVER_H_
#define ITG_LOAD_DRIVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/latency_recorder.h"
#include "common/status.h"
#include "common/types.h"
#include "load/connection.h"
#include "serve/protocol.h"

namespace itg {
namespace load {

struct DriverOptions {
  /// Serving daemon's wire port (127.0.0.1).
  int port = 0;
  /// Ingest connections (generator lanes).
  int ingesters = 2;
  /// Subscriber connections; each registers its own standing query
  /// lq<i> and every Δ-batch fans one ΔQ record out to each of them.
  int subscribers = 1;
  /// Program each standing query runs (builtin name, e.g. "wcc").
  std::string program = "wcc";
  /// MUST match the daemon's --graph spec: the driver regenerates the
  /// base edge set locally to mirror ingest validation.
  std::string graph = "rmat:12";
  /// Mirror of the daemon's --symmetric flag.
  bool symmetric = false;
  uint64_t ops_per_batch = 8;
  /// Fraction of ops that delete a previously inserted edge (once the
  /// lane owns enough edges); keeps the edge set from growing without
  /// bound over long sweeps.
  double delete_fraction = 0.25;
  enum class Arrival { kPoisson, kUniform };
  Arrival arrival = Arrival::kPoisson;
  uint64_t seed = 1;
  /// How long to wait after a window for in-flight ΔQ records.
  uint64_t drain_timeout_ms = 15000;
  /// `status` op sampling cadence during a window (queue depth + view
  /// lag maxima); 0 disables the poller.
  uint64_t status_poll_ms = 50;
};

/// One fixed-rate measurement window's results.
struct WindowResult {
  double offered_rate = 0;
  double achieved_rate = 0;
  uint64_t batches = 0;
  uint64_t rejected_batches = 0;
  uint64_t backpressure_stalls = 0;  ///< server-side delta over the window
  uint64_t queue_depth_max = 0;
  uint64_t view_lag_us_max = 0;
  bool drained = true;  ///< all acked batches notified before timeout
  LatencyRecorder::Snapshot latency;
};

/// Matches acked Δ-batches (trace_id -> intended send time) with the ΔQ
/// records observed by subscriber threads. Deltas can race ahead of the
/// ingester reading its ack on another connection, so unmatched arrivals
/// are buffered until the ack lands.
class Correlator {
 public:
  Correlator(LatencyRecorder* recorder, int fanout)
      : recorder_(recorder), fanout_(fanout) {}

  void Reset();
  void OnAck(uint64_t trace_id,
             std::chrono::steady_clock::time_point intended);
  void OnDelta(uint64_t trace_id,
               std::chrono::steady_clock::time_point arrival);
  /// Acked traces still missing at least one ΔQ record.
  size_t pending() const;

 private:
  struct Trace {
    bool acked = false;
    std::chrono::steady_clock::time_point intended;
    int recorded = 0;
    std::vector<std::chrono::steady_clock::time_point> early;
  };

  void RecordLocked(Trace* t,
                    std::chrono::steady_clock::time_point arrival);

  LatencyRecorder* recorder_;
  const int fanout_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Trace> traces_;
  size_t pending_ = 0;
};

class LoadDriver {
 public:
  explicit LoadDriver(DriverOptions options);
  ~LoadDriver();

  LoadDriver(const LoadDriver&) = delete;
  LoadDriver& operator=(const LoadDriver&) = delete;

  /// Connects every lane, registers the standing queries and starts the
  /// subscriber reader threads. Must be called once before RunWindow.
  Status Setup();

  /// Drives one open-loop window at `rate` Δ-batches/s (aggregate across
  /// all ingesters), then drains in-flight notifications.
  StatusOr<WindowResult> RunWindow(double rate, uint64_t duration_ms);

  /// Stops subscriber threads and closes every connection. Idempotent;
  /// the destructor calls it.
  void Teardown();

 private:
  struct Lane;       // per-ingester connection + edge model
  struct SubConn;    // per-subscriber connection + reader thread

  Status IngestLoop(Lane* lane, double lane_rate,
                    std::chrono::steady_clock::time_point window_start,
                    std::chrono::steady_clock::time_point window_end,
                    uint64_t* batches, uint64_t* rejected,
                    uint64_t* queue_depth_max);
  void SubscriberLoop(SubConn* sub);
  StatusOr<serve::Response> FetchStatus();

  DriverOptions options_;
  LatencyRecorder recorder_;
  std::unique_ptr<Correlator> correlator_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::unique_ptr<SubConn>> subs_;
  ServeConnection control_;
  std::atomic<bool> stop_{false};
  bool setup_done_ = false;
};

}  // namespace load
}  // namespace itg

#endif  // ITG_LOAD_DRIVER_H_
