// Client-side transport for the load driver: a blocking loopback TCP
// connection speaking the serving daemon's newline-delimited JSON
// protocol (serve/protocol.h), plus a one-shot HTTP GET used to pull
// /timeseriesz off the daemon's telemetry plane into run reports.
//
// Each driver thread owns its connection outright — there is no shared
// write path, so no locking; the only concurrency is the kernel's. Reads
// honour an optional receive timeout (SO_RCVTIMEO) so subscriber loops
// can poll a stop flag instead of parking forever on a quiet stream.
#ifndef ITG_LOAD_CONNECTION_H_
#define ITG_LOAD_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace itg {
namespace load {

/// Outcome of a buffered line read; distinguishes "nothing arrived
/// within the receive timeout" (retryable) from a closed or broken peer.
enum class ReadOutcome { kOk, kTimeout, kClosed, kError };

class ServeConnection {
 public:
  ServeConnection() = default;
  ~ServeConnection() { Close(); }

  ServeConnection(const ServeConnection&) = delete;
  ServeConnection& operator=(const ServeConnection&) = delete;

  /// Connects to 127.0.0.1:port.
  Status Connect(int port);

  /// Bounds every subsequent recv; 0 restores blocking reads.
  Status SetRecvTimeout(uint64_t millis);

  /// Serializes and sends one request line (blocking until written).
  Status Send(const serve::Request& req);

  /// Reads the next protocol line into *resp. kTimeout leaves *resp
  /// untouched; a malformed line surfaces as kError with the parse
  /// failure in *error.
  ReadOutcome Read(serve::Response* resp, std::string* error = nullptr);

  /// Sends `req` and reads responses until one arrives whose `op`
  /// matches the request (deltas streaming in between are handed to
  /// `on_delta` when non-null, dropped otherwise). This is the RPC
  /// pattern: acks are interleaved with the subscription stream on the
  /// same socket.
  StatusOr<serve::Response> Call(
      const serve::Request& req,
      const std::function<void(const serve::Response&)>& on_delta = nullptr);

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  ReadOutcome ReadLine(std::string* line);

  int fd_ = -1;
  std::string buffer_;
};

/// Minimal HTTP/1.0 GET against the daemon's telemetry port; returns the
/// response body (status-line and headers stripped). Used to splice the
/// server's /timeseriesz ring into the load report.
StatusOr<std::string> HttpGet(int port, const std::string& path);

}  // namespace load
}  // namespace itg

#endif  // ITG_LOAD_CONNECTION_H_
