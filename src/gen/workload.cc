#include "gen/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace itg {

MutationWorkload::MutationWorkload(std::vector<Edge> all_edges,
                                   double initial_fraction, uint64_t seed,
                                   bool canonical)
    : rng_(seed), canonical_(canonical) {
  ITG_CHECK(initial_fraction > 0.0 && initial_fraction <= 1.0);
  if (canonical_) {
    for (Edge& e : all_edges) {
      if (e.src > e.dst) std::swap(e.src, e.dst);
    }
  }
  // Deduplicate defensively; the split must partition distinct edges.
  std::sort(all_edges.begin(), all_edges.end());
  all_edges.erase(std::unique(all_edges.begin(), all_edges.end()),
                  all_edges.end());
  // Fisher-Yates shuffle, then split.
  for (size_t i = all_edges.size(); i > 1; --i) {
    size_t j = rng_.Uniform(i);
    std::swap(all_edges[i - 1], all_edges[j]);
  }
  size_t initial_count =
      static_cast<size_t>(all_edges.size() * initial_fraction);
  initial_.assign(all_edges.begin(),
                  all_edges.begin() + static_cast<long>(initial_count));
  pool_.assign(all_edges.begin() + static_cast<long>(initial_count),
               all_edges.end());
  current_ = initial_;
  current_set_.insert(current_.begin(), current_.end());
  for (const Edge& e : all_edges) {
    max_vertex_ = std::max({max_vertex_, e.src, e.dst});
  }
}

Edge MutationWorkload::RandomNonEdge() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Edge e{static_cast<VertexId>(rng_.Uniform(
               static_cast<uint64_t>(max_vertex_) + 1)),
           static_cast<VertexId>(
               rng_.Uniform(static_cast<uint64_t>(max_vertex_) + 1))};
    if (canonical_ && e.src > e.dst) std::swap(e.src, e.dst);
    if (e.src != e.dst && !current_set_.contains(e)) return e;
  }
  ITG_CHECK(false) << "could not sample a non-edge (graph nearly complete?)";
  return {};
}

std::vector<EdgeDelta> MutationWorkload::NextBatch(size_t size,
                                                   double insert_ratio) {
  std::vector<EdgeDelta> batch;
  batch.reserve(size);
  size_t num_inserts = static_cast<size_t>(
      static_cast<double>(size) * insert_ratio + 0.5);
  num_inserts = std::min(num_inserts, size);
  size_t num_deletes = size - num_inserts;

  // Deletions are sampled before the insertions are applied, so a batch
  // never deletes an edge it inserted itself: every delete targets an
  // edge present before the batch and every insert targets an absent one.
  for (size_t i = 0; i < num_deletes && !current_.empty(); ++i) {
    size_t j = rng_.Uniform(current_.size());
    Edge e = current_[j];
    current_[j] = current_.back();
    current_.pop_back();
    current_set_.erase(e);
    batch.push_back({e, -1});
  }
  for (size_t i = 0; i < num_inserts; ++i) {
    Edge e;
    // Pool edges removed by an earlier deletion batch may be re-inserted;
    // skip any that are currently present.
    while (!pool_.empty() && current_set_.contains(pool_.back())) {
      pool_.pop_back();
    }
    if (!pool_.empty()) {
      e = pool_.back();
      pool_.pop_back();
    } else {
      e = RandomNonEdge();
    }
    batch.push_back({e, +1});
    current_.push_back(e);
    current_set_.insert(e);
  }
  return batch;
}

}  // namespace itg
