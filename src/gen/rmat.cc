#include "gen/rmat.h"

#include "common/logging.h"
#include "common/rng.h"

namespace itg {

std::vector<Edge> GenerateRmatEdges(VertexId num_vertices, size_t num_edges,
                                    const RmatOptions& options) {
  ITG_CHECK_GT(num_vertices, 0);
  ITG_CHECK((num_vertices & (num_vertices - 1)) == 0)
      << "RMAT needs a power-of-two vertex count";
  int levels = 0;
  while ((static_cast<VertexId>(1) << levels) < num_vertices) ++levels;

  Rng rng(options.seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  const double ab = options.a + options.b;
  const double abc = ab + options.c;
  while (edges.size() < num_edges) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int level = 0; level < levels; ++level) {
      double r = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < options.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (options.drop_self_loops && src == dst) continue;
    edges.push_back({src, dst});
  }
  return edges;
}

std::vector<Edge> GenerateRmat(int scale, const RmatOptions& options) {
  ITG_CHECK_GE(scale, 5);
  return GenerateRmatEdges(RmatVertices(scale),
                           static_cast<size_t>(1) << scale, options);
}

}  // namespace itg
