#include "gen/upscale.h"

#include "common/logging.h"
#include "common/rng.h"

namespace itg {

std::vector<Edge> UpscaleGraph(const std::vector<Edge>& edges,
                               VertexId num_vertices, int factor,
                               uint64_t seed, double cross_fraction) {
  ITG_CHECK_GE(factor, 1);
  Rng rng(seed);
  std::vector<Edge> out;
  out.reserve(edges.size() * static_cast<size_t>(factor) +
              static_cast<size_t>(cross_fraction * edges.size()) *
                  static_cast<size_t>(factor));
  // Replicas: copy k lives on vertex ids [k*n, (k+1)*n).
  for (int k = 0; k < factor; ++k) {
    VertexId offset = static_cast<VertexId>(k) * num_vertices;
    for (const Edge& e : edges) {
      out.push_back({e.src + offset, e.dst + offset});
    }
  }
  // Cross edges between consecutive replica pairs. Endpoints are sampled
  // from the edge list itself so high-degree vertices attract cross edges
  // proportionally to their degree (preferential stitching).
  size_t cross_per_pair =
      static_cast<size_t>(cross_fraction * static_cast<double>(edges.size()));
  for (int k = 1; k < factor; ++k) {
    VertexId lo = static_cast<VertexId>(k - 1) * num_vertices;
    VertexId hi = static_cast<VertexId>(k) * num_vertices;
    for (size_t i = 0; i < cross_per_pair; ++i) {
      const Edge& a = edges[rng.Uniform(edges.size())];
      const Edge& b = edges[rng.Uniform(edges.size())];
      out.push_back({a.src + lo, b.dst + hi});
    }
  }
  return out;
}

}  // namespace itg
