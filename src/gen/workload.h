#ifndef ITG_GEN_WORKLOAD_H_
#define ITG_GEN_WORKLOAD_H_

#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace itg {

/// Generates dynamic-graph workloads the way the paper does (§6.1):
/// sample 90% of the edges uniformly at random as the initial graph G_0;
/// the remaining 10% become the insertion pool for ΔG⁺; deletions ΔG⁻ are
/// sampled uniformly from the current edge set. Default mix is
/// |ΔG⁺| : |ΔG⁻| = 75 : 25 (LinkBench-derived) and |ΔG| = 100k scaled to
/// the graph at hand.
class MutationWorkload {
 public:
  /// Splits `all_edges` into G_0 (a `initial_fraction` sample) and the
  /// insertion pool. With `canonical` set (undirected workloads), edges
  /// are kept in (min, max) form and fresh random insertions are drawn
  /// canonically too — otherwise a random (b, a) could alias a present
  /// (a, b).
  MutationWorkload(std::vector<Edge> all_edges, double initial_fraction,
                   uint64_t seed, bool canonical = false);

  /// The initial graph edges (G_0).
  const std::vector<Edge>& initial_edges() const { return initial_; }

  /// Produces the next mutation batch of `size` operations with the given
  /// insertion share (0..1). Insertions come from the held-out pool (or
  /// fresh random non-edges once the pool is exhausted); deletions are
  /// sampled uniformly from edges currently present. The generator keeps
  /// the running edge set consistent across batches: it never inserts a
  /// present edge nor deletes an absent one.
  std::vector<EdgeDelta> NextBatch(size_t size, double insert_ratio);

  /// Number of edges currently present (G_0 plus applied batches).
  size_t current_edge_count() const { return current_.size(); }

  VertexId max_vertex() const { return max_vertex_; }

 private:
  Edge RandomNonEdge();

  Rng rng_;
  bool canonical_ = false;
  std::vector<Edge> initial_;
  std::vector<Edge> pool_;   // held-out insertions, consumed from the back
  std::vector<Edge> current_;  // edges present now (for uniform deletion)
  std::unordered_set<Edge, EdgeHash> current_set_;
  VertexId max_vertex_ = 0;
};

}  // namespace itg

#endif  // ITG_GEN_WORKLOAD_H_
