#ifndef ITG_GEN_RMAT_H_
#define ITG_GEN_RMAT_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace itg {

/// Parameters of the recursive matrix (R-MAT) model [Chakrabarti et al.,
/// SDM'04], the generator family the paper uses for its synthetic graphs
/// (via TrillionG). Defaults are the canonical skewed setting.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  uint64_t seed = 42;
  /// Drop (u, u) edges; the paper models simple graphs.
  bool drop_self_loops = true;
};

/// Generates an RMAT graph at `scale` following the paper's convention:
/// |E| = 2^scale, |V| = 2^(scale-4) (Table 5: RMAT_X has 2^(X-4) vertices
/// and 2^X edges). Duplicates may occur and are deduplicated downstream
/// by CSR construction.
std::vector<Edge> GenerateRmat(int scale, const RmatOptions& options = {});

/// Generates `num_edges` RMAT edges over `num_vertices` vertices
/// (num_vertices must be a power of two).
std::vector<Edge> GenerateRmatEdges(VertexId num_vertices, size_t num_edges,
                                    const RmatOptions& options = {});

/// Number of vertices implied by an RMAT scale.
inline VertexId RmatVertices(int scale) {
  return static_cast<VertexId>(1) << (scale - 4);
}

}  // namespace itg

#endif  // ITG_GEN_RMAT_H_
