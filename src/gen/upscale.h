#ifndef ITG_GEN_UPSCALE_H_
#define ITG_GEN_UPSCALE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace itg {

/// Upscales a graph by an integer factor, in the spirit of EvoGraph
/// [Park & Kim, KDD'18], which the paper uses to produce TWT_X (the
/// X-times upscaled Twitter graph).
///
/// EvoGraph grows a graph while preserving its degree distribution and
/// community structure. This reproduction uses its core recipe: replicate
/// the graph `factor` times and stitch the replicas with cross edges
/// whose endpoints are sampled from the original edge list (so endpoint
/// popularity — the degree skew — is preserved). `cross_fraction` is the
/// number of cross edges per replica pair as a fraction of |E|.
std::vector<Edge> UpscaleGraph(const std::vector<Edge>& edges,
                               VertexId num_vertices, int factor,
                               uint64_t seed, double cross_fraction = 0.1);

}  // namespace itg

#endif  // ITG_GEN_UPSCALE_H_
