#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "compiler/compiled_program.h"
#include "lang/parser.h"
#include "lang/sema.h"

namespace itg {

namespace {

using lang::Expr;
using lang::ExprPtr;
using lang::Stmt;
using lang::StmtPtr;
using lang::VarKind;

ExprPtr CloneExpr(const Expr& expr) {
  auto clone = std::make_unique<Expr>();
  clone->kind = expr.kind;
  clone->loc = expr.loc;
  clone->literal_value = expr.literal_value;
  clone->literal_is_bool = expr.literal_is_bool;
  clone->name = expr.name;
  clone->var_kind = expr.var_kind;
  clone->resolved_index = expr.resolved_index;
  clone->attr = expr.attr;
  clone->resolved_attr = expr.resolved_attr;
  clone->vertex_depth = expr.vertex_depth;
  clone->binary_op = expr.binary_op;
  clone->unary_op = expr.unary_op;
  clone->callee = expr.callee;
  clone->type = expr.type;
  for (const auto& child : expr.children) {
    clone->children.push_back(CloneExpr(*child));
  }
  return clone;
}

/// Replaces Let references with clones of their (already inlined) bound
/// expressions. Purely syntactic: L_NGA expressions are side-effect free,
/// so inlining preserves semantics (the classic view-unfolding step of
/// the paper's Table-2 "bind the variable" rule for Let).
ExprPtr InlineLets(const Expr& expr,
                   const std::map<int, const Expr*>& bindings) {
  if (expr.kind == Expr::Kind::kVarRef && expr.var_kind == VarKind::kLet) {
    auto it = bindings.find(expr.resolved_index);
    ITG_CHECK(it != bindings.end()) << "unbound Let slot";
    return CloneExpr(*it->second);
  }
  ExprPtr clone = CloneExpr(expr);
  clone->children.clear();
  for (const auto& child : expr.children) {
    clone->children.push_back(InlineLets(*child, bindings));
  }
  return clone;
}

/// Rewrites a statement block, dropping Let statements and inlining their
/// bindings downstream (scoped per block). Inlined binding expressions
/// are kept alive in `owned`.
void InlineBlock(std::vector<StmtPtr>* stmts,
                 std::map<int, const Expr*> bindings,
                 std::vector<ExprPtr>* owned) {
  std::vector<StmtPtr> out;
  for (StmtPtr& stmt : *stmts) {
    switch (stmt->kind) {
      case Stmt::Kind::kLet: {
        ExprPtr inlined = InlineLets(*stmt->value, bindings);
        bindings[stmt->let_slot] = inlined.get();
        owned->push_back(std::move(inlined));
        break;  // the Let statement itself disappears
      }
      case Stmt::Kind::kAssign:
      case Stmt::Kind::kAccumulate: {
        stmt->value = InlineLets(*stmt->value, bindings);
        if (stmt->target->kind == Expr::Kind::kIndex) {
          stmt->target->children[1] =
              InlineLets(*stmt->target->children[1], bindings);
        }
        out.push_back(std::move(stmt));
        break;
      }
      case Stmt::Kind::kFor: {
        if (stmt->where != nullptr) {
          stmt->where = InlineLets(*stmt->where, bindings);
        }
        InlineBlock(&stmt->body, bindings, owned);
        out.push_back(std::move(stmt));
        break;
      }
      case Stmt::Kind::kIf: {
        stmt->cond = InlineLets(*stmt->cond, bindings);
        InlineBlock(&stmt->body, bindings, owned);
        InlineBlock(&stmt->else_body, bindings, owned);
        out.push_back(std::move(stmt));
        break;
      }
    }
  }
  *stmts = std::move(out);
}

Status ErrorAt(lang::SourceLoc loc, const std::string& msg) {
  return Status::CompileError(msg + " (line " + std::to_string(loc.line) +
                              ")");
}

void DecomposePredicate(LevelSpec* level, int new_depth);

/// Extracts the Walk spec from the (Let-inlined) Traverse body: one
/// LevelSpec per nested For, guarded emissions per Accumulate. This is
/// the Apply-decorrelation of §4.4 performed structurally: each For is a
/// correlated sub-query over the neighbor stream; collapsing the chain
/// yields one Walk with per-level predicates.
class TraverseExtractor {
 public:
  explicit TraverseExtractor(CompiledProgram* out) : out_(out) {}

  Status Run(const std::vector<StmtPtr>& body) {
    return Visit(body, /*depth=*/0, /*guards=*/{});
  }

 private:
  Status Visit(const std::vector<StmtPtr>& stmts, int depth,
               std::vector<std::pair<const Expr*, bool>> guards) {
    for (const StmtPtr& stmt : stmts) {
      switch (stmt->kind) {
        case Stmt::Kind::kFor: {
          if (static_cast<int>(out_->traverse.levels.size()) != depth) {
            return ErrorAt(stmt->loc,
                           "multiple sibling For loops in Traverse are not "
                           "supported (one walk chain per program)");
          }
          if (!guards.empty()) {
            return ErrorAt(stmt->loc,
                           "For under If is not supported; move the "
                           "condition into the loop's Where clause");
          }
          LevelSpec level;
          level.dir = (stmt->for_source_attr == "in_nbrs") ? Direction::kIn
                                                           : Direction::kOut;
          level.where = stmt->where.get();
          DecomposePredicate(&level, /*new_depth=*/depth + 1);
          out_->traverse.levels.push_back(level);
          ITG_RETURN_IF_ERROR(Visit(stmt->body, depth + 1, guards));
          break;
        }
        case Stmt::Kind::kIf: {
          auto then_guards = guards;
          then_guards.emplace_back(stmt->cond.get(), true);
          ITG_RETURN_IF_ERROR(Visit(stmt->body, depth, then_guards));
          auto else_guards = guards;
          else_guards.emplace_back(stmt->cond.get(), false);
          ITG_RETURN_IF_ERROR(Visit(stmt->else_body, depth, else_guards));
          break;
        }
        case Stmt::Kind::kAccumulate: {
          Emission emission;
          emission.stmt_depth = depth;
          emission.guards = guards;
          emission.value = stmt->value.get();
          emission.width = stmt->target->type.width;
          emission.op = stmt->target->type.accm_op;
          if (stmt->target->kind == Expr::Kind::kVarRef) {
            emission.is_global = true;
            emission.target = stmt->target->resolved_index;
          } else {
            emission.is_global = false;
            emission.target = stmt->target->resolved_attr;
            emission.target_depth = stmt->target->vertex_depth;
          }
          out_->traverse.emissions.push_back(emission);
          break;
        }
        case Stmt::Kind::kLet:
          return ErrorAt(stmt->loc, "Let should have been inlined");
        case Stmt::Kind::kAssign:
          return ErrorAt(stmt->loc, "Assign is not allowed in Traverse");
      }
    }
    return Status::OK();
  }

  CompiledProgram* out_;
};

/// Collects the start-vertex attributes Traverse reads (AttrRef at depth
/// 0, excluding `id`). A change in any of them (or in `active`) makes a
/// vertex a Δvs start for the incremental query.
void CollectReadAttrs(const Expr& expr, std::set<int>* attrs) {
  if (expr.kind == Expr::Kind::kAttrRef && expr.attr != "id") {
    attrs->insert(expr.resolved_attr);
  }
  for (const auto& child : expr.children) CollectReadAttrs(*child, attrs);
}

void CollectReadAttrsStmt(const Stmt& stmt, std::set<int>* attrs) {
  if (stmt.value != nullptr) CollectReadAttrs(*stmt.value, attrs);
  if (stmt.where != nullptr) CollectReadAttrs(*stmt.where, attrs);
  if (stmt.cond != nullptr) CollectReadAttrs(*stmt.cond, attrs);
  for (const auto& child : stmt.body) CollectReadAttrsStmt(*child, attrs);
  for (const auto& child : stmt.else_body) {
    CollectReadAttrsStmt(*child, attrs);
  }
}

/// Position (row depth) denoted by an expression, or -1: a vertex
/// variable or an `id` attribute reference.
int VertexPositionOf(const Expr& e) {
  if (e.kind == Expr::Kind::kVarRef && e.var_kind == VarKind::kVertexVar) {
    return e.resolved_index;
  }
  if (e.kind == Expr::Kind::kAttrRef && e.attr == "id") {
    return e.vertex_depth;
  }
  return -1;
}

void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kBinary &&
      expr.binary_op == lang::BinaryOp::kAnd) {
    SplitConjuncts(*expr.children[0], out);
    SplitConjuncts(*expr.children[1], out);
    return;
  }
  out->push_back(&expr);
}

/// Decomposes a level's Where into fast-path conjuncts over the new
/// position (`new_depth`) plus a general residue.
void DecomposePredicate(LevelSpec* level, int new_depth) {
  if (level->where == nullptr) return;
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(*level->where, &conjuncts);
  for (const Expr* c : conjuncts) {
    bool handled = false;
    if (c->kind == Expr::Kind::kBinary && c->children.size() == 2) {
      int a = VertexPositionOf(*c->children[0]);
      int b = VertexPositionOf(*c->children[1]);
      if (a >= 0 && b >= 0 && (a == new_depth) != (b == new_depth)) {
        int other = (a == new_depth) ? b : a;
        bool new_on_left = (a == new_depth);
        switch (c->binary_op) {
          case lang::BinaryOp::kLt:
            // new < other  |  other < new
            if (new_on_left && level->lt_pos < 0) {
              level->lt_pos = other;
              handled = true;
            } else if (!new_on_left && level->gt_pos < 0) {
              level->gt_pos = other;
              handled = true;
            }
            break;
          case lang::BinaryOp::kGt:
            if (new_on_left && level->gt_pos < 0) {
              level->gt_pos = other;
              handled = true;
            } else if (!new_on_left && level->lt_pos < 0) {
              level->lt_pos = other;
              handled = true;
            }
            break;
          case lang::BinaryOp::kEq:
            if (level->eq_pos < 0) {
              level->eq_pos = other;
              handled = true;
            }
            break;
          default:
            break;
        }
      }
    }
    if (!handled) level->general.push_back(c);
  }
}

/// Detects the closing conjunct `u_{k+1} == u_1` in the innermost Where.
bool HasClosingConjunct(const Expr& expr, int last_depth) {
  if (expr.kind == Expr::Kind::kBinary) {
    if (expr.binary_op == lang::BinaryOp::kAnd) {
      return HasClosingConjunct(*expr.children[0], last_depth) ||
             HasClosingConjunct(*expr.children[1], last_depth);
    }
    if (expr.binary_op == lang::BinaryOp::kEq) {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      auto depth_of = [](const Expr& e) -> int {
        if (e.kind == Expr::Kind::kVarRef &&
            e.var_kind == VarKind::kVertexVar) {
          return e.resolved_index;
        }
        if (e.kind == Expr::Kind::kAttrRef && e.attr == "id") {
          return e.vertex_depth;
        }
        return -1;
      };
      int a = depth_of(lhs);
      int b = depth_of(rhs);
      return (a == last_depth && b == 0) || (a == 0 && b == last_depth);
    }
  }
  return false;
}

/// Builds the logical GSA tree for Traverse:
///   ⊎_target(Π_value(Walk_p(σ_active(vs1), es1, …, es_k)))   per emission,
/// unioned when there are several emissions.
///
/// Also assigns stable operator ids (EXPLAIN ANALYZE) and records the
/// physical → logical mapping into the TraverseSpec. Ids are assigned on
/// the walk chain *before* it is cloned per emission branch: there is one
/// physical walk, so all branches deliberately share its ids.
std::unique_ptr<gsa::PlanNode> BuildTraversePlan(CompiledProgram* program,
                                                 int* next_id) {
  const int k = program->walk_length();
  auto walk = gsa::PlanNode::Make("Walk", "k=" + std::to_string(k));
  auto vs = gsa::PlanNode::Make("Stream", "vs1");
  auto filter = gsa::PlanNode::Make("Filter", "active=true");
  filter->children.push_back(std::move(vs));
  walk->children.push_back(std::move(filter));
  for (int i = 1; i <= k; ++i) {
    std::string name = "es" + std::to_string(i);
    const LevelSpec& level = program->traverse.levels[i - 1];
    std::string detail =
        name + (level.dir == Direction::kIn ? " (in)" : "");
    if (level.where != nullptr) detail += " σ(where)";
    walk->children.push_back(gsa::PlanNode::Make("Stream", detail));
  }
  gsa::AssignOperatorIds(walk.get(), next_id);
  program->traverse.walk_op = walk->op_id;
  program->traverse.start_filter_op = walk->children[0]->op_id;
  program->traverse.start_stream_op = walk->children[0]->children[0]->op_id;
  for (int i = 1; i <= k; ++i) {
    program->traverse.levels[i - 1].op = walk->children[i]->op_id;
  }

  std::vector<std::unique_ptr<gsa::PlanNode>> branches;
  for (Emission& e : program->traverse.emissions) {
    std::string target =
        e.is_global ? program->globals[e.target].name
                    : ("u" + std::to_string(e.target_depth + 1) + "." +
                       program->vertex_attrs[e.target].name);
    auto accm = gsa::PlanNode::Make(
        "Accumulate", target + ", " + lang::AccmOpName(e.op));
    auto map = gsa::PlanNode::Make(
        "Map", "value @ depth " + std::to_string(e.stmt_depth));
    accm->op_id = (*next_id)++;
    map->op_id = (*next_id)++;
    e.accum_op = accm->op_id;
    e.map_op = map->op_id;
    map->children.push_back(walk->Clone());
    accm->children.push_back(std::move(map));
    branches.push_back(std::move(accm));
  }
  if (branches.empty()) {
    return walk;  // a traversal with no emissions (degenerate)
  }
  if (branches.size() == 1) return std::move(branches[0]);
  auto result = gsa::PlanNode::Make("Union", "emissions");
  result->children = std::move(branches);
  return result;
}

void RegisterPlanOps(const gsa::PlanNode& node,
                     gsa::ExecutionProfile* profile) {
  if (node.op_id >= 0) profile->RegisterOp(node.op_id, node.op, node.detail);
  for (const auto& child : node.children) {
    RegisterPlanOps(*child, profile);
  }
}

}  // namespace

std::string CompiledProgram::Explain() const {
  std::ostringstream os;
  os << "=== One-shot Traverse plan (GSA) ===\n"
     << gsa::Explain(*oneshot_plan)
     << "=== Incremental Traverse plan (Table-4 rules) ===\n"
     << gsa::Explain(*incremental_plan)
     << "=== Update plan ===\nApply[Update program](Stream vs_accm)\n";
  return os.str();
}

std::string CompiledProgram::ExplainAnalyze(
    const gsa::ExecutionProfile& profile) const {
  // The Init/Update phases are not part of the Traverse trees; render
  // them as the Apply operators they are so they share the annotation
  // format.
  auto init = gsa::PlanNode::Make("Apply", "Initialize program");
  init->op_id = init_op;
  init->children.push_back(gsa::PlanNode::Make("Stream", "vs"));
  auto update = gsa::PlanNode::Make("Apply", "Update program");
  update->op_id = update_op;
  update->children.push_back(gsa::PlanNode::Make("Stream", "vs_accm"));

  std::ostringstream os;
  os << "=== One-shot Traverse plan (GSA) ===\n"
     << gsa::ExplainAnalyze(*oneshot_plan, profile)
     << "=== Incremental Traverse plan (Table-4 rules) ===\n"
     << gsa::ExplainAnalyze(*incremental_plan, profile)
     << "=== Initialize plan ===\n"
     << gsa::ExplainAnalyze(*init, profile) << "=== Update plan ===\n"
     << gsa::ExplainAnalyze(*update, profile);
  return os.str();
}

void CompiledProgram::RegisterOperators(gsa::ExecutionProfile* profile) const {
  // Incremental first: for ids shared between the plans the one-shot
  // node's name/detail is the canonical label.
  if (incremental_plan != nullptr) RegisterPlanOps(*incremental_plan, profile);
  if (oneshot_plan != nullptr) RegisterPlanOps(*oneshot_plan, profile);
  if (init_op >= 0) profile->RegisterOp(init_op, "Apply", "Initialize");
  if (update_op >= 0) profile->RegisterOp(update_op, "Apply", "Update");
}

StatusOr<std::unique_ptr<CompiledProgram>> CompileProgram(
    const std::string& source) {
  ITG_ASSIGN_OR_RETURN(std::unique_ptr<lang::Program> ast,
                       lang::Parse(source));
  ITG_ASSIGN_OR_RETURN(lang::ProgramInfo info, lang::Analyze(ast.get()));

  auto program = std::make_unique<CompiledProgram>();
  program->ast = std::move(ast);
  program->info = info;

  for (const lang::AttrDecl& decl : program->ast->vertex_attrs) {
    program->vertex_attrs.push_back({decl.name, decl.type});
    if (decl.name == "active") {
      program->active_attr =
          static_cast<int>(program->vertex_attrs.size()) - 1;
    }
  }
  if (program->active_attr < 0) {
    return Status::CompileError(
        "program must declare the predefined attribute 'active'");
  }
  for (const lang::AttrDecl& decl : program->ast->globals) {
    program->globals.push_back({decl.name, decl.type});
  }

  // Let inlining across all three UDFs.
  {
    std::vector<ExprPtr> owned;
    InlineBlock(&program->ast->initialize.body, {}, &owned);
    InlineBlock(&program->ast->traverse.body, {}, &owned);
    InlineBlock(&program->ast->update.body, {}, &owned);
    // Keep inlined expressions alive alongside the AST.
    program->owned_exprs_ = std::move(owned);
  }

  TraverseExtractor extractor(program.get());
  ITG_RETURN_IF_ERROR(extractor.Run(program->ast->traverse.body));

  std::set<int> read_attrs;
  for (const StmtPtr& stmt : program->ast->traverse.body) {
    CollectReadAttrsStmt(*stmt, &read_attrs);
  }
  program->traverse_read_attrs.assign(read_attrs.begin(), read_attrs.end());

  if (!program->traverse.levels.empty()) {
    const LevelSpec& last = program->traverse.levels.back();
    if (last.where != nullptr) {
      program->traverse.closes_to_start =
          HasClosingConjunct(*last.where, program->walk_length());
    }
  }

  program->init_body = &program->ast->initialize.body;
  program->update_body = &program->ast->update.body;

  int next_op_id = 0;
  program->oneshot_plan = BuildTraversePlan(program.get(), &next_op_id);
  // The emission Union root (when present) still carries no id.
  gsa::AssignOperatorIds(program->oneshot_plan.get(), &next_op_id);
  program->incremental_plan = gsa::Incrementalize(*program->oneshot_plan);
  // Fresh ids for the nodes the rewrite introduced (rule-⑦ Unions);
  // everything else inherited its one-shot id.
  gsa::AssignOperatorIds(program->incremental_plan.get(), &next_op_id);
  program->init_op = next_op_id++;
  program->update_op = next_op_id++;
  program->num_operator_ids = next_op_id;
  return program;
}

}  // namespace itg
