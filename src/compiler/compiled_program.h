#ifndef ITG_COMPILER_COMPILED_PROGRAM_H_
#define ITG_COMPILER_COMPILED_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "gsa/plan.h"
#include "lang/ast.h"
#include "lang/sema.h"
#include "storage/edge_delta_store.h"

namespace itg {

/// One value emission of Traverse: `target.Accumulate(value)` reached at
/// loop depth `stmt_depth` under the conjunction of `guards`.
struct Emission {
  /// Loop depth of the statement (0 = outside all loops); the emission
  /// fires once per walk prefix of length stmt_depth + 1.
  int stmt_depth = 0;
  /// If-guards on the path to the statement: (condition, expected value).
  std::vector<std::pair<const lang::Expr*, bool>> guards;
  /// The accumulated expression (Lets inlined).
  const lang::Expr* value = nullptr;
  bool is_global = false;
  /// Vertex attribute index or global index.
  int target = -1;
  /// Row position of the target vertex (vertex emissions only).
  int target_depth = 0;
  lang::AccmOp op = lang::AccmOp::kSum;
  int width = 1;
  /// Operator ids of this emission's logical Map (value computation;
  /// guard/value evaluations are charged here) and Accumulate (tuples
  /// in / applied emissions out). Shared by the one-shot and incremental
  /// plans: physically there is one emission site.
  int map_op = -1;
  int accum_op = -1;
};

/// One traversal level (one For loop of Traverse).
///
/// The Where predicate is decomposed at compile time into fast-path
/// conjuncts over the newly bound position and a residue of general
/// conjuncts:
///  * `next > row[gt_pos]` — ordering constraints like `u1 < u2` turn the
///    adjacency scan into a lower-bound seek over the sorted list;
///  * `next < row[lt_pos]` — upper-bounded scans;
///  * `next == row[eq_pos]` — closing constraints like `u4 == u1` become a
///    binary-search membership probe, which is the compiler's multi-way
///    intersection rewrite of common-neighbor loops (§2).
struct LevelSpec {
  Direction dir = Direction::kOut;
  /// The full Where predicate (Lets inlined); null if absent.
  const lang::Expr* where = nullptr;
  int gt_pos = -1;
  int lt_pos = -1;
  int eq_pos = -1;
  /// Conjuncts not covered by the fast paths (evaluated per candidate).
  std::vector<const lang::Expr*> general;
  /// Operator id of this level's edge stream (the `es_i` Stream node of
  /// the GSA plans); seek/window/edge-scan counters are charged here.
  int op = -1;
};

/// The physical form of the Traverse plan: a single Walk of `levels`
/// with guarded emissions, produced by compiling the nested For loops
/// into the Walk operator via Apply-decorrelation (§4.4).
struct TraverseSpec {
  std::vector<LevelSpec> levels;
  std::vector<Emission> emissions;
  /// True when the innermost Where contains the conjunct
  /// `u_last == u_first` — the walk closes a cycle back to the start.
  /// Enables traversal reordering of the deepest delta sub-query and the
  /// multi-way-intersection rewrite of common-neighbor loops.
  bool closes_to_start = false;

  /// Physical → logical operator-id mapping (EXPLAIN ANALYZE): the Walk
  /// node, the σ_active start filter, and the vs1 start stream. Per-level
  /// and per-emission ids live on LevelSpec::op and Emission::{map_op,
  /// accum_op}. Every emission branch of the logical plan clones one
  /// physical walk, so the clones deliberately share these ids.
  int walk_op = -1;
  int start_filter_op = -1;
  int start_stream_op = -1;
};

/// A fully compiled L_NGA program: resolved AST, physical Traverse spec,
/// interpreted Initialize/Update bodies, and the logical GSA plans (one-
/// shot and automatically incrementalized).
class CompiledProgram {
 public:
  struct AttrMeta {
    std::string name;
    lang::Type type;
  };

  std::unique_ptr<lang::Program> ast;
  lang::ProgramInfo info;

  std::vector<AttrMeta> vertex_attrs;
  std::vector<AttrMeta> globals;
  /// Index of the predefined `active` attribute (declared or implicit).
  int active_attr = -1;
  /// Vertex attribute indices Traverse reads (start-vertex attributes);
  /// a change in any of them makes a vertex a Δvs start.
  std::vector<int> traverse_read_attrs;

  TraverseSpec traverse;

  /// Statement bodies with Lets inlined (owned by `ast`).
  const std::vector<lang::StmtPtr>* init_body = nullptr;
  const std::vector<lang::StmtPtr>* update_body = nullptr;

  /// Logical GSA plans (explain form). Operator ids are assigned on the
  /// one-shot plan and preserved through incrementalization; nodes the
  /// Table-4 rewrite introduces get fresh ids from the same sequence.
  std::unique_ptr<gsa::PlanNode> oneshot_plan;
  std::unique_ptr<gsa::PlanNode> incremental_plan;

  /// Synthetic operator ids for the Initialize / Update Apply phases
  /// (they execute outside the Traverse plan trees).
  int init_op = -1;
  int update_op = -1;
  /// All assigned ids are in [0, num_operator_ids).
  int num_operator_ids = 0;

  int walk_length() const { return static_cast<int>(traverse.levels.size()); }
  int attr_width(int attr) const { return vertex_attrs[attr].type.width; }
  bool attr_is_accumulator(int attr) const {
    return vertex_attrs[attr].type.is_accumulator;
  }

  /// EXPLAIN output for both plans.
  std::string Explain() const;

  /// EXPLAIN ANALYZE: both plans plus the Init/Update Apply phases,
  /// annotated with the runtime counters `profile` recorded per id.
  std::string ExplainAnalyze(const gsa::ExecutionProfile& profile) const;

  /// Registers every operator id (both plans, Init/Update phases) with
  /// its name and detail so profile reports carry labels.
  void RegisterOperators(gsa::ExecutionProfile* profile) const;

  /// Expressions materialized by Let inlining (kept alive with the AST).
  std::vector<lang::ExprPtr> owned_exprs_;
};

/// Parses, analyzes and compiles an L_NGA source program. This is the
/// main entry of the compiler: it performs Let inlining, collapses the
/// nested For loops into a Walk spec (Apply-decorrelation), builds the
/// logical GSA plan, and applies the incrementalization rules.
StatusOr<std::unique_ptr<CompiledProgram>> CompileProgram(
    const std::string& source);

}  // namespace itg

#endif  // ITG_COMPILER_COMPILED_PROGRAM_H_
