#include "engine/msbfs.h"

#include "common/logging.h"

namespace itg {

Status ComputeNeighborPruning(
    const CompiledProgram& program, DynamicGraphStore* store,
    BufferPool* pool, Timestamp current_t, int delta_level,
    std::vector<std::vector<uint8_t>>* allow_by_depth) {
  const int p = delta_level;
  ITG_CHECK_GE(p, 1);
  const VertexId n = store->num_vertices();
  allow_by_depth->assign(static_cast<size_t>(p),
                         std::vector<uint8_t>(static_cast<size_t>(n), 0));

  // X^0: traversal origins of the delta edges (walk depth p-1).
  const Direction delta_dir = program.traverse.levels[p - 1].dir;
  std::vector<VertexId> frontier;
  ITG_RETURN_IF_ERROR(store->DeltaSources(current_t, delta_dir, &frontier));
  std::vector<uint8_t>& x0 = (*allow_by_depth)[p - 1];
  for (VertexId v : frontier) x0[static_cast<size_t>(v)] = 1;

  // X^i: backward through level (p - i), marking depth p-1-i.
  std::vector<VertexId> next;
  std::vector<VertexId> adj;
  for (int i = 1; i <= p - 1; ++i) {
    const LevelSpec& level = program.traverse.levels[p - i - 1];
    Direction back_dir =
        (level.dir == Direction::kOut) ? Direction::kIn : Direction::kOut;
    std::vector<uint8_t>& marks = (*allow_by_depth)[p - 1 - i];
    next.clear();
    for (VertexId x : frontier) {
      ITG_RETURN_IF_ERROR(
          store->GetAdjacency(pool, x, current_t, back_dir, &adj));
      for (VertexId w : adj) {
        uint8_t& mark = marks[static_cast<size_t>(w)];
        if (mark == 0) {
          mark = 1;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return Status::OK();
}

}  // namespace itg
