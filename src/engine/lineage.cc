#include "engine/lineage.h"

#include <algorithm>

#include "storage/graph_store.h"

namespace itg {

LineageTracker::LineageTracker(VertexId num_vertices)
    : ids_(static_cast<size_t>(num_vertices)),
      overflow_(static_cast<size_t>(num_vertices), 0) {}

Status LineageTracker::BeginTimestamp(DynamicGraphStore* store, Timestamp t) {
  edge_ids_.clear();
  uint32_t ordinal = 0;
  ITG_RETURN_IF_ERROR(store->ScanDeltas(
      store->pool(), t, Direction::kOut, [&](Edge e, Multiplicity m) {
        const uint64_t id = MakeId(t, ordinal++);
        edge_ids_.emplace(e, id);
        info_.emplace(id, MutationInfo{t, e, m});
      }));
  return Status::OK();
}

int64_t LineageTracker::DeltaEdgeId(const Edge& stored_edge) const {
  auto it = edge_ids_.find(stored_edge);
  if (it == edge_ids_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

void LineageTracker::Add(std::vector<uint64_t>* set, uint64_t* overflow,
                         uint64_t id) {
  auto it = std::lower_bound(set->begin(), set->end(), id);
  if (it != set->end() && *it == id) return;
  if (set->size() >= kMaxIdsPerVertex) {
    ++*overflow;
    return;
  }
  set->insert(it, id);
}

void LineageTracker::OnEmission(VertexId start, VertexId target,
                                int64_t delta_edge_id) {
  auto* dst = &ids_[static_cast<size_t>(target)];
  auto* ovf = &overflow_[static_cast<size_t>(target)];
  if (delta_edge_id >= 0) {
    Add(dst, ovf, static_cast<uint64_t>(delta_edge_id));
  }
  if (start == target) return;
  // Copy: the start set must not alias the target set while inserting.
  const std::vector<uint64_t> src = ids_[static_cast<size_t>(start)];
  for (uint64_t id : src) Add(dst, ovf, id);
}

const LineageTracker::MutationInfo* LineageTracker::Info(uint64_t id) const {
  auto it = info_.find(id);
  return it == info_.end() ? nullptr : &it->second;
}

std::string LineageTracker::Explain(VertexId v) const {
  const auto& set = ids_[static_cast<size_t>(v)];
  std::string out = "  contributing mutations (" + std::to_string(set.size());
  const uint64_t ovf = overflow_[static_cast<size_t>(v)];
  if (ovf > 0) out += ", +" + std::to_string(ovf) + " dropped at cap";
  out += "):\n";
  if (set.empty()) {
    out += "    (none — value derives from the base graph alone)\n";
    return out;
  }
  // Ids sort by (timestamp, ordinal), so this prints oldest batch first.
  for (uint64_t id : set) {
    const MutationInfo* info = Info(id);
    if (info == nullptr) continue;
    out += "    t=" + std::to_string(info->timestamp) + " #" +
           std::to_string(static_cast<uint32_t>(id)) + ": " +
           (info->mult > 0 ? "+edge " : "-edge ") +
           std::to_string(info->edge.src) + "->" +
           std::to_string(info->edge.dst) + "\n";
  }
  return out;
}

}  // namespace itg
