#ifndef ITG_ENGINE_WALK_H_
#define ITG_ENGINE_WALK_H_

#include <functional>
#include <vector>

#include "common/memory_budget.h"
#include "common/status.h"
#include "common/types.h"
#include "compiler/compiled_program.h"
#include "engine/eval.h"
#include "storage/graph_store.h"

namespace itg {

/// Which edge stream a traversal level reads (incremental sub-queries mix
/// versions per rule ⑦: levels left of the delta position read the
/// current snapshot s'_i = s_i ∪ Δs_i, the delta position reads Δs_p, and
/// levels right of it read the previous snapshot s_i).
enum class LevelStream { kCurrent, kPrevious, kDelta };

/// Receives every enumerated walk prefix: `row[0..depth]` are the bound
/// positions, `mult` is the prefix multiplicity (product of the crossed
/// stream multiplicities; ±1).
using WalkSink =
    std::function<void(const VertexId* row, int depth, int mult)>;

/// Enumerates walks over nested graph windows (§4.2/4.3).
///
/// The enumerator is the physical Walk operator: level by level it
/// W-Seeks the adjacency of a bounded *window* of frontier vertices into
/// memory (reads go through the buffer pool, so cold windows are real
/// IO), W-Joins the loaded lists against the current prefixes, applies
/// the level predicate (with sorted-adjacency fast paths for ordering and
/// closing constraints), fires the sink at every depth, and recurses.
/// Memory is bounded by the window sizes; walks stream out without being
/// materialized — the property that separates the paper's design from
/// the arrangement-keeping Differential-Dataflow baseline.
class WalkEnumerator {
 public:
  struct Options {
    /// Window size (vertices whose adjacency is co-resident per level).
    int window_vertices = 256;
    /// Use the binary-search closing-constraint probe (the compiler's
    /// multi-way intersection rewrite). Off = scan + filter.
    bool eq_fast_path = true;
  };

  /// Per-traversal-level work counters (EXPLAIN ANALYZE): entry i
  /// belongs to level i+1, i.e. the plans' `es_{i+1}` stream operator
  /// (LevelSpec::op). `out_*` counts walk tuples fired at that depth by
  /// multiplicity sign; `evals` counts expression nodes the general-
  /// conjunct residue evaluated; `wall_nanos` is exclusive of deeper
  /// levels. All fields except wall are deterministic.
  struct LevelCounts {
    uint64_t windows = 0;
    uint64_t edges = 0;
    uint64_t pruned = 0;
    uint64_t evals = 0;
    uint64_t out_pos = 0;
    uint64_t out_neg = 0;
    uint64_t wall_nanos = 0;

    void Merge(const LevelCounts& o) {
      windows += o.windows;
      edges += o.edges;
      pruned += o.pruned;
      evals += o.evals;
      out_pos += o.out_pos;
      out_neg += o.out_neg;
      wall_nanos += o.wall_nanos;
    }
  };

  WalkEnumerator(const CompiledProgram* program, DynamicGraphStore* store,
                 BufferPool* pool, const Options& options)
      : program_(program),
        store_(store),
        pool_(pool),
        options_(options),
        level_counts_(static_cast<size_t>(program->walk_length())) {
    if (store_ != nullptr && store_->metrics() != nullptr) {
      // Add-deltas: every live window (one per traversal level per
      // enumerator, worker-thread enumerators included) aggregates into
      // one mem.window_cache gauge pair.
      mem_window_.Bind(&store_->metrics()->registry(), "window_cache");
    }
  }

  /// Redirects window loads through another buffer pool (the distributed
  /// simulation gives every machine its own pool).
  void set_pool(BufferPool* pool) { pool_ = pool; }

  /// Evaluation context for level predicates (start-vertex attribute
  /// reads use these columns; the incremental executor points them at the
  /// right snapshot's values).
  void SetEvalBase(const ColumnSet* columns,
                   const std::vector<std::vector<double>>* globals,
                   double num_vertices, double num_edges) {
    columns_ = columns;
    globals_ = globals;
    num_vertices_ = num_vertices;
    num_edges_ = num_edges;
  }

  /// Enumerates walks from `starts` (already filtered by the caller).
  ///
  /// `streams[j]` selects the graph version of level j+1; `current_t` /
  /// `previous_t` name the snapshots; kDelta levels read the mutation
  /// batch of `current_t`. `level_allow[j]`, when non-null, restricts the
  /// vertex bound at depth j+1 (neighbor pruning's MS-BFS visited sets).
  /// Enumeration extends to `max_depth` levels (≤ program walk length).
  Status Enumerate(const std::vector<VertexId>& starts,
                   const std::vector<LevelStream>& streams,
                   Timestamp current_t, Timestamp previous_t,
                   const std::vector<const std::vector<uint8_t>*>& level_allow,
                   int max_depth, const WalkSink& sink);

  /// Walk-window statistics (for benches/tests).
  uint64_t windows_loaded() const { return windows_loaded_; }
  uint64_t edges_scanned() const { return edges_scanned_; }
  /// Candidate walk extensions rejected by `level_allow` — the walks
  /// neighbor pruning (§5.4's MS-BFS visited sets) saved enumerating.
  uint64_t walks_pruned() const { return walks_pruned_; }

  /// Folds the counters of a worker-thread enumerator into this one (the
  /// parallel executor merges shard counters in deterministic task order).
  void AddCounts(uint64_t windows, uint64_t edges, uint64_t pruned = 0) {
    windows_loaded_ += windows;
    edges_scanned_ += edges;
    walks_pruned_ += pruned;
  }

  /// Walk tuples enumerated at depth 0 (the start-stream output).
  uint64_t starts_enumerated() const { return starts_enumerated_; }
  const std::vector<LevelCounts>& level_counts() const {
    return level_counts_;
  }

  /// Folds a worker enumerator's per-level counters into this one
  /// (order-independent integer sums, so the merged values match a
  /// sequential run regardless of task interleaving).
  void AddLevelCounts(const std::vector<LevelCounts>& levels,
                      uint64_t starts) {
    starts_enumerated_ += starts;
    for (size_t i = 0; i < levels.size() && i < level_counts_.size(); ++i) {
      level_counts_[i].Merge(levels[i]);
    }
  }

 private:
  struct AdjacencyWindow;

  Status Extend(int level, const std::vector<VertexId>& prefixes,
                const std::vector<int8_t>& mults, int prefix_len,
                const std::vector<LevelStream>& streams,
                Timestamp current_t, Timestamp previous_t,
                const std::vector<const std::vector<uint8_t>*>& level_allow,
                int max_depth, const WalkSink& sink);

  Status LoadWindow(const std::vector<VertexId>& vertices, LevelStream stream,
                    Direction dir, Timestamp current_t, Timestamp previous_t,
                    AdjacencyWindow* window);

  const CompiledProgram* program_;
  DynamicGraphStore* store_;
  BufferPool* pool_;
  Options options_;

  const ColumnSet* columns_ = nullptr;
  const std::vector<std::vector<double>>* globals_ = nullptr;
  double num_vertices_ = 0;
  double num_edges_ = 0;

  uint64_t windows_loaded_ = 0;
  uint64_t edges_scanned_ = 0;
  uint64_t walks_pruned_ = 0;
  uint64_t starts_enumerated_ = 0;
  std::vector<LevelCounts> level_counts_;
  ByteGauge mem_window_;  // mem.window_cache.* resident window bytes
};

}  // namespace itg

#endif  // ITG_ENGINE_WALK_H_
