// Δ-record provenance (opt-in --lineage mode): a bounded per-vertex set
// of contributing input-mutation ids, threaded through the emission sink
// of the GSA walk operators. Every mutation of every Δ-batch gets a
// stable id ((timestamp << 32) | ordinal in the stored scan order); when
// a Δ-walk crossing a delta edge applies an emission onto a vertex, the
// target's set absorbs that edge's id plus the walk start's set — so a
// vertex's set names the raw edge mutations its current value derives
// from, and Explain() prints the derivation chain.
//
// The sets are capped (kMaxIdsPerVertex) with an overflow counter, so
// memory stays O(V) no matter how long the mutation stream runs.
#ifndef ITG_ENGINE_LINEAGE_H_
#define ITG_ENGINE_LINEAGE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace itg {

class DynamicGraphStore;

class LineageTracker {
 public:
  static constexpr size_t kMaxIdsPerVertex = 16;

  struct MutationInfo {
    Timestamp timestamp = 0;
    Edge edge;
    Multiplicity mult = 0;
  };

  explicit LineageTracker(VertexId num_vertices);

  /// Registers snapshot t's mutation batch: each mutation gets the id
  /// ((t << 32) | ordinal) in the stored (kOut) scan order, and the
  /// delta-edge → id lookup switches to this batch.
  Status BeginTimestamp(DynamicGraphStore* store, Timestamp t);

  /// Id of a current-batch delta edge in stored (kOut) orientation;
  /// -1 when the edge is not part of the current batch.
  int64_t DeltaEdgeId(const Edge& stored_edge) const;

  /// Records one applied emission: `target` absorbs `start`'s set plus
  /// `delta_edge_id` (ignored when negative), capped with overflow
  /// accounting.
  void OnEmission(VertexId start, VertexId target, int64_t delta_edge_id);

  /// Sorted mutation ids currently attributed to `v`.
  const std::vector<uint64_t>& Ids(VertexId v) const {
    return ids_[static_cast<size_t>(v)];
  }
  /// Ids dropped on `v` because its set was full.
  uint64_t Overflow(VertexId v) const {
    return overflow_[static_cast<size_t>(v)];
  }
  /// Decodes a mutation id (null when never registered).
  const MutationInfo* Info(uint64_t id) const;

  /// Human-readable derivation chain of `v`: one line per contributing
  /// raw edge mutation, oldest batch first.
  std::string Explain(VertexId v) const;

  static uint64_t MakeId(Timestamp t, uint32_t ordinal) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(t)) << 32) | ordinal;
  }

 private:
  void Add(std::vector<uint64_t>* set, uint64_t* overflow, uint64_t id);

  std::vector<std::vector<uint64_t>> ids_;
  std::vector<uint64_t> overflow_;
  // Current batch: stored-orientation delta edge -> mutation id.
  std::unordered_map<Edge, uint64_t, EdgeHash> edge_ids_;
  // All batches: mutation id -> decoded record.
  std::unordered_map<uint64_t, MutationInfo> info_;
};

}  // namespace itg

#endif  // ITG_ENGINE_LINEAGE_H_
