#ifndef ITG_ENGINE_MSBFS_H_
#define ITG_ENGINE_MSBFS_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "compiler/compiled_program.h"
#include "storage/graph_store.h"

namespace itg {

/// Neighbor pruning (§5.3): multi-source backward BFS from the vertices
/// directly affected by the delta stream of sub-query level `p`, yielding
/// per-depth candidate sets.
///
/// X^0 = traversal origins of Δes_p (candidates for walk depth p−1);
/// X^i = backward neighbors of X^{i−1} through level (p−i) reversed over
/// the current snapshot (candidates for depth p−1−i). The result
/// `allow_by_depth[d]` (d in [0, p−1]) is a |V|-sized bitmap restricting
/// the vertex bound at depth d: starts are restricted by
/// `allow_by_depth[0]`, level-j extensions (j < p) by `allow_by_depth[j]`.
///
/// The MS-BFS "programs" are generated from the compiled walk spec (the
/// compiler knows each level's direction); selection conditions are not
/// applied during the BFS, which only makes the candidate sets
/// conservative supersets — pruning stays sound.
Status ComputeNeighborPruning(const CompiledProgram& program,
                              DynamicGraphStore* store, BufferPool* pool,
                              Timestamp current_t, int delta_level,
                              std::vector<std::vector<uint8_t>>* allow_by_depth);

}  // namespace itg

#endif  // ITG_ENGINE_MSBFS_H_
