#include "engine/eval.h"

#include <array>
#include <cmath>

#include "common/logging.h"

namespace itg {

namespace {

using lang::BinaryOp;
using lang::Expr;
using lang::UnaryOp;
using lang::VarKind;

double EvalBinaryScalar(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kAdd: return a + b;
    case BinaryOp::kSub: return a - b;
    case BinaryOp::kMul: return a * b;
    // x/0 and x%0 are defined as 0. Besides avoiding inf/nan in user
    // programs, this makes the Δ-walk decomposition FP-safe: rule ⑦
    // evaluates new attribute values over old edge structure, where a
    // vertex whose edges were all deleted would otherwise contribute
    // ±inf terms that cancel algebraically but not in floating point.
    case BinaryOp::kDiv: return (b == 0.0) ? 0.0 : a / b;
    case BinaryOp::kMod: return (b == 0.0) ? 0.0 : std::fmod(a, b);
    case BinaryOp::kLt: return a < b ? 1.0 : 0.0;
    case BinaryOp::kLe: return a <= b ? 1.0 : 0.0;
    case BinaryOp::kGt: return a > b ? 1.0 : 0.0;
    case BinaryOp::kGe: return a >= b ? 1.0 : 0.0;
    case BinaryOp::kEq: return a == b ? 1.0 : 0.0;
    case BinaryOp::kNe: return a != b ? 1.0 : 0.0;
    case BinaryOp::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case BinaryOp::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace

void Evaluate(const Expr& expr, const EvalContext& ctx, double* out) {
  if (ctx.eval_counter != nullptr) ++*ctx.eval_counter;
  const int width = expr.type.width;
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      out[0] = expr.literal_value;
      return;
    case Expr::Kind::kVarRef:
      switch (expr.var_kind) {
        case VarKind::kVertexVar:
          ITG_CHECK_LT(expr.resolved_index, ctx.row_len);
          out[0] = static_cast<double>(ctx.row[expr.resolved_index]);
          return;
        case VarKind::kGlobal: {
          const std::vector<double>& g = (*ctx.globals)[expr.resolved_index];
          for (int i = 0; i < width; ++i) out[i] = g[i];
          return;
        }
        case VarKind::kBuiltin:
          out[0] = (expr.resolved_index == 0) ? ctx.num_vertices
                                              : ctx.num_edges;
          return;
        case VarKind::kLet:
          // Lets are inlined by the compiler; a surviving reference is a
          // compiler bug.
          ITG_CHECK(false) << "un-inlined Let reference";
          return;
        case VarKind::kUnresolved:
          ITG_CHECK(false) << "unresolved variable '" << expr.name << "'";
          return;
      }
      return;
    case Expr::Kind::kAttrRef: {
      if (expr.attr == "id") {
        ITG_CHECK_LT(expr.vertex_depth, ctx.row_len);
        out[0] = static_cast<double>(ctx.row[expr.vertex_depth]);
        return;
      }
      ITG_CHECK_EQ(expr.vertex_depth, 0);
      const double* cell = ctx.columns->Cell(expr.resolved_attr, ctx.row[0]);
      for (int i = 0; i < width; ++i) out[i] = cell[i];
      return;
    }
    case Expr::Kind::kBinary: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      if (width == 1) {
        // Short-circuit logical operators.
        if (expr.binary_op == BinaryOp::kAnd) {
          double a = EvaluateScalar(lhs, ctx);
          out[0] = (a != 0.0 && EvaluateScalar(rhs, ctx) != 0.0) ? 1.0 : 0.0;
          return;
        }
        if (expr.binary_op == BinaryOp::kOr) {
          double a = EvaluateScalar(lhs, ctx);
          out[0] = (a != 0.0 || EvaluateScalar(rhs, ctx) != 0.0) ? 1.0 : 0.0;
          return;
        }
        out[0] = EvalBinaryScalar(expr.binary_op, EvaluateScalar(lhs, ctx),
                                  EvaluateScalar(rhs, ctx));
        return;
      }
      std::array<double, kMaxAttrWidth> a{};
      std::array<double, kMaxAttrWidth> b{};
      Evaluate(lhs, ctx, a.data());
      Evaluate(rhs, ctx, b.data());
      // Broadcast scalars across the array width.
      for (int i = 0; i < width; ++i) {
        double av = (lhs.type.width == 1) ? a[0] : a[i];
        double bv = (rhs.type.width == 1) ? b[0] : b[i];
        out[i] = EvalBinaryScalar(expr.binary_op, av, bv);
      }
      return;
    }
    case Expr::Kind::kUnary: {
      std::array<double, kMaxAttrWidth> a{};
      Evaluate(*expr.children[0], ctx, a.data());
      for (int i = 0; i < width; ++i) {
        out[i] = (expr.unary_op == UnaryOp::kNeg)
                     ? -a[i]
                     : (a[i] == 0.0 ? 1.0 : 0.0);
      }
      return;
    }
    case Expr::Kind::kCall: {
      std::array<double, kMaxAttrWidth> a{};
      Evaluate(*expr.children[0], ctx, a.data());
      if (expr.callee == "MaxElem") {
        double best = a[0];
        for (int i = 1; i < expr.children[0]->type.width; ++i) {
          best = std::max(best, a[i]);
        }
        out[0] = best;
        return;
      }
      if (expr.callee == "Abs") {
        for (int i = 0; i < width; ++i) out[i] = std::abs(a[i]);
        return;
      }
      if (expr.callee == "Floor") {
        for (int i = 0; i < width; ++i) out[i] = std::floor(a[i]);
        return;
      }
      std::array<double, kMaxAttrWidth> b{};
      Evaluate(*expr.children[1], ctx, b.data());
      const int rhs_width = expr.children[1]->type.width;
      for (int i = 0; i < width; ++i) {
        double bv = (rhs_width == 1) ? b[0] : b[i];
        out[i] = (expr.callee == "Min") ? std::min(a[i], bv)
                                        : std::max(a[i], bv);
      }
      return;
    }
    case Expr::Kind::kIndex: {
      std::array<double, kMaxAttrWidth> base{};
      Evaluate(*expr.children[0], ctx, base.data());
      int idx = static_cast<int>(EvaluateScalar(*expr.children[1], ctx));
      ITG_CHECK_GE(idx, 0);
      ITG_CHECK_LT(idx, expr.children[0]->type.width);
      out[0] = base[static_cast<size_t>(idx)];
      return;
    }
  }
}

double EvaluateScalar(const Expr& expr, const EvalContext& ctx) {
  ITG_CHECK_EQ(expr.type.width, 1);
  double out = 0.0;
  Evaluate(expr, ctx, &out);
  return out;
}

}  // namespace itg
