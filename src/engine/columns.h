// In-memory columnar attribute state A_{t,s}: the per-(snapshot,
// superstep) vertex attribute arrays the BSP executor reads and writes
// (§5.2) and whose after-image diffs the vertex store persists as delta
// chains (§5.1). See ARCHITECTURE.md, layer 4.
#ifndef ITG_ENGINE_COLUMNS_H_
#define ITG_ENGINE_COLUMNS_H_

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace itg {

/// Maximum width of an attribute (Array<_, N> needs N <= kMaxAttrWidth).
/// Bounds the evaluator's stack scratch buffers.
inline constexpr int kMaxAttrWidth = 64;

/// Columnar storage for vertex attribute values at one (snapshot,
/// superstep): one dense double column per attribute (width doubles per
/// vertex). The runtime represents every L_NGA value as doubles — exact
/// for bool/int/long up to 2^53, which the declared types bound.
class ColumnSet {
 public:
  ColumnSet() = default;

  void Init(VertexId num_vertices, const std::vector<int>& widths) {
    num_vertices_ = num_vertices;
    widths_ = widths;
    data_.resize(widths.size());
    for (size_t a = 0; a < widths.size(); ++a) {
      data_[a].assign(
          static_cast<size_t>(num_vertices) * static_cast<size_t>(widths[a]),
          0.0);
    }
  }

  double* Cell(int attr, VertexId v) {
    return data_[attr].data() +
           static_cast<size_t>(v) * static_cast<size_t>(widths_[attr]);
  }
  const double* Cell(int attr, VertexId v) const {
    return data_[attr].data() +
           static_cast<size_t>(v) * static_cast<size_t>(widths_[attr]);
  }

  std::vector<double>& Column(int attr) { return data_[attr]; }
  const std::vector<double>& Column(int attr) const { return data_[attr]; }

  int width(int attr) const { return widths_[attr]; }
  int attr_count() const { return static_cast<int>(widths_.size()); }
  VertexId num_vertices() const { return num_vertices_; }

  /// Resident bytes of all columns (capacity, not logical size — this is
  /// what the allocator actually holds; feeds the memory gauges).
  size_t ByteSize() const {
    size_t bytes = 0;
    for (const auto& col : data_) bytes += col.capacity() * sizeof(double);
    return bytes;
  }

  /// True if the `width(attr)` values of `v` differ between two sets.
  static bool CellDiffers(const ColumnSet& a, const ColumnSet& b, int attr,
                          VertexId v) {
    const double* pa = a.Cell(attr, v);
    const double* pb = b.Cell(attr, v);
    for (int i = 0; i < a.width(attr); ++i) {
      if (pa[i] != pb[i]) return true;
    }
    return false;
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<int> widths_;
  std::vector<std::vector<double>> data_;
};

}  // namespace itg

#endif  // ITG_ENGINE_COLUMNS_H_
