// Interpreter for the Initialize / Update UDF bodies of an L_NGA
// program (§4.2): the vertex-centric assignment half of the BSP
// superstep, compiled by §4.4's rules into the Assign (←) algebra and
// run here directly over the attribute columns. The Traverse UDF does
// *not* go through this path — it is fused into walk enumeration
// (engine.cc / walk.cc, §5.2). See ARCHITECTURE.md, layer 4.
#ifndef ITG_ENGINE_STMT_INTERP_H_
#define ITG_ENGINE_STMT_INTERP_H_

#include <vector>

#include "common/types.h"
#include "engine/columns.h"
#include "lang/ast.h"

namespace itg {

/// Per-vertex execution context for Initialize / Update bodies.
struct StmtContext {
  ColumnSet* columns = nullptr;
  std::vector<std::vector<double>>* globals = nullptr;
  double num_vertices = 0;
  double num_edges = 0;
  VertexId vertex = 0;
  /// Optional EXPLAIN ANALYZE work counters for the owning Apply phase:
  /// expression nodes evaluated and assignments applied. The engine
  /// points these at per-run (or, on the parallel Update path, per-task)
  /// cells so parallel runs sum deterministically.
  uint64_t* eval_counter = nullptr;
  uint64_t* assigns_applied = nullptr;
};

/// Interprets an Initialize/Update body (Lets inlined; statements are
/// Assign and If only — guaranteed by sema + compiler) for one vertex.
/// This is the fused physical form of the UDF's σ/Π/← algebra tree.
void RunStatements(const std::vector<lang::StmtPtr>& body, StmtContext* ctx);

}  // namespace itg

#endif  // ITG_ENGINE_STMT_INTERP_H_
