// L_NGA expression evaluator: the runtime for the P_ω predicates and
// emission values the compiler extracts from Traverse bodies (§4.4),
// shared by walk enumeration, the Δ-walk sub-queries (§5.3), and the
// statement interpreter. Implements the x/0 = 0 rule that keeps rule-⑦
// retract/assert pairs exactly cancelling in floating point
// (DESIGN.md §6.2). Pure w.r.t. engine state, hence safe to run on
// pool workers (ARCHITECTURE.md, threading model).
#ifndef ITG_ENGINE_EVAL_H_
#define ITG_ENGINE_EVAL_H_

#include <vector>

#include "common/types.h"
#include "engine/columns.h"
#include "lang/ast.h"

namespace itg {

/// Everything an L_NGA expression may reference at runtime. Attribute
/// reads other than `id` are bound to the walk's start vertex (row[0]);
/// `columns` selects which version (previous vs. current snapshot) those
/// reads see — the incremental executor swaps it per delta sub-query.
struct EvalContext {
  const ColumnSet* columns = nullptr;
  const std::vector<std::vector<double>>* globals = nullptr;
  double num_vertices = 0;
  double num_edges = 0;
  /// Walk row: row[d] is the vertex bound at loop depth d (0 = start).
  const VertexId* row = nullptr;
  int row_len = 0;
  /// When non-null, incremented once per expression node evaluated — the
  /// EXPLAIN ANALYZE `evals` work counter. Callers point it at the
  /// profile cell of the operator the evaluation belongs to (a level
  /// predicate's es-stream, an emission's Map, an Apply phase). Counts
  /// are deterministic: short-circuiting &&/|| depends only on values.
  uint64_t* eval_counter = nullptr;
};

/// Evaluates `expr` into `out` (expr->type.width doubles; callers provide
/// at least kMaxAttrWidth). Expressions are type-checked by sema, so
/// evaluation cannot fail; violations are programming errors (checked).
void Evaluate(const lang::Expr& expr, const EvalContext& ctx, double* out);

/// Scalar fast path (expr must have width 1).
double EvaluateScalar(const lang::Expr& expr, const EvalContext& ctx);

/// Boolean convenience (expr must be bool-typed).
inline bool EvaluateBool(const lang::Expr& expr, const EvalContext& ctx) {
  return EvaluateScalar(expr, ctx) != 0.0;
}

}  // namespace itg

#endif  // ITG_ENGINE_EVAL_H_
