#ifndef ITG_ENGINE_ENGINE_H_
#define ITG_ENGINE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/memory_budget.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "compiler/compiled_program.h"
#include "engine/columns.h"
#include "engine/lineage.h"
#include "engine/walk.h"
#include "gsa/profile.h"
#include "storage/graph_store.h"

namespace itg {

/// Engine knobs. The optimization flags map to the paper's §6.4.2
/// ablation: traversal reordering (TR), neighbor pruning (NP),
/// seek/window sharing (SWS), MIN-with-counting (CNT); plus the
/// multi-way-intersection compiler rewrite (always on in the paper).
struct EngineOptions {
  int window_vertices = 256;
  bool traversal_reordering = true;
  bool neighbor_pruning = true;
  bool seek_window_sharing = true;
  bool min_counting = true;
  bool multiway_intersection = true;
  /// Run exactly this many supersteps (paper: 10 for PR/LP); -1 = until
  /// convergence.
  int fixed_supersteps = -1;
  int max_supersteps = 500;
  /// Write per-superstep history to the vertex store (required before
  /// RunIncremental; disable for throwaway one-shot comparison runs).
  bool record_history = true;
  /// Distributed simulation (§2 of DESIGN.md): hash-partition the work
  /// over this many simulated machines, each with its own buffer pool and
  /// meters. 1 = plain single-machine execution.
  int num_partitions = 1;
  /// Per-machine buffer pool capacity (pages) in the simulation.
  size_t partition_pool_pages = 512;
  /// Simulated interconnect bandwidth for the distributed time model.
  double network_bytes_per_second = 1.0e9;
  /// Worker threads for intra-machine parallel walk enumeration
  /// (§6.2 "in parallel for non-conflicting walks"). 0 = the ITG_THREADS
  /// env var, else hardware_concurrency(). 1 disables the pool and runs
  /// the byte-for-byte sequential path. Ignored (forced sequential) when
  /// num_partitions > 1 or the program reads accumulator state inside
  /// Traverse (see ARCHITECTURE.md, "Threading model").
  int num_threads = 0;
  /// Test hook for the stall watchdog: sleep this long inside the first
  /// superstep of every run. The sleep is observation-neutral (no work
  /// counter moves), so fingerprints are unaffected. 0 = off.
  uint64_t debug_stall_first_superstep_ms = 0;
  /// Also digest the attribute state after every superstep into the
  /// superstep timeline (the end-of-run digest is always computed).
  /// Observation-only — no work counter or accumulator moves.
  bool digest_per_superstep = false;
  /// Opt-in Δ-record provenance: track a bounded set of contributing
  /// input-mutation ids per vertex (see engine/lineage.h). Forces the
  /// sequential walk path so every applied emission passes through the
  /// tagging sink.
  bool lineage = false;
  /// Drift-injection test hooks (audit_smoke): during
  /// RunIncremental(debug_corrupt_timestamp), superstep 0, add
  /// debug_corrupt_delta to the first audited attribute of
  /// debug_corrupt_vertex right after the ΔUpdate block — and add the
  /// vertex to the ΔUpdate domain so the corrupted after-image persists
  /// into the delta files exactly like real silent state corruption
  /// would. timestamp/vertex = -1 disables.
  Timestamp debug_corrupt_timestamp = -1;
  VertexId debug_corrupt_vertex = -1;
  double debug_corrupt_delta = 0.0;
  /// When non-empty, published as the GlobalLiveStatus query label at the
  /// start of every run. Long-lived drivers with one engine set the label
  /// once themselves; the serving daemon interleaves runs of many
  /// standing views on one thread, so each view's engine retags the live
  /// query as it runs and /statusz always names the view in flight.
  std::string query_label;
};

/// Per-machine outcome of a partitioned run.
struct MachineStats {
  double seconds = 0;          ///< measured compute + IO time of this machine
  uint64_t network_bytes = 0;  ///< pre-aggregated shuffle volume it sent
  /// Modeled BSP barrier wait: time this machine idled at superstep
  /// barriers for the round's slowest machine (skew indicator).
  uint64_t barrier_wait_nanos = 0;
};

/// Statistics of the latest run.
struct RunStats {
  Timestamp timestamp = 0;
  bool incremental = false;
  int supersteps = 0;
  uint64_t emissions_applied = 0;
  uint64_t delta_walk_emissions = 0;
  /// Candidate walk extensions rejected by neighbor pruning's MS-BFS
  /// visited sets (§5.4) — work the Δ-walk decomposition avoided.
  uint64_t delta_walks_pruned = 0;
  uint64_t recomputed_vertices = 0;
  uint64_t windows_loaded = 0;
  uint64_t edges_scanned = 0;
  double seconds = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  /// Worker threads the run was allowed to use (1 when the program or
  /// configuration forces the sequential path).
  int threads = 1;
  /// Walk-shard tasks executed through the thread pool.
  uint64_t parallel_tasks = 0;
  /// Tasks claimed from another worker's queue (imbalance indicator).
  uint64_t steals = 0;
  /// Sum over workers of time spent inside pool tasks.
  uint64_t busy_nanos = 0;
  /// Sum over pool batches of the modeled makespan (Brent's bound,
  /// see ThreadPool::critical_nanos): the wall time of the parallel
  /// sections with one core per worker.
  uint64_t critical_nanos = 0;
  /// Order-independent digest of the audited attribute columns at the
  /// end of the run (Engine::ComputeStateDigest). Deterministic across
  /// thread counts; a state fingerprint, not a work counter.
  uint64_t state_digest = 0;
};

/// The iTurboGraph runtime engine: executes compiled L_NGA programs over
/// the dynamic graph store under the BSP model (§5.2), either one-shot
/// (full enumeration) or incrementally (Δ-walk enumeration with
/// incremental Accumulate, §5.3–5.4).
///
/// Lifecycle: one Engine per (store, program); RunOneShot on the initial
/// snapshot, then RunIncremental once per mutation batch. The engine
/// keeps the current snapshot's final attribute values in memory and the
/// per-superstep history in the vertex store (delta chains).
class Engine {
 public:
  Engine(DynamicGraphStore* store, const CompiledProgram* program,
         const EngineOptions& options);

  /// Full execution at snapshot `t` (normally 0).
  Status RunOneShot(Timestamp t);

  /// Incremental execution at snapshot `t`; requires that the previous
  /// run (one-shot or incremental) executed at `t-1` with history
  /// recording enabled.
  Status RunIncremental(Timestamp t);

  /// Final attribute value of `v` (first element for arrays).
  double AttrValue(int attr, VertexId v) const {
    return cur_cols_.Cell(attr, v)[0];
  }
  const double* AttrCell(int attr, VertexId v) const {
    return cur_cols_.Cell(attr, v);
  }
  /// Final global value (global accumulators total over the whole run —
  /// documented deviation: not reset per superstep).
  const std::vector<double>& GlobalValue(int g) const {
    return cur_globals_[g];
  }

  int AttrIndex(const std::string& name) const;
  int GlobalIndex(const std::string& name) const;

  const RunStats& last_stats() const { return stats_; }
  /// EXPLAIN ANALYZE profile of the last run: per-operator counters keyed
  /// by the compiler's stable plan ids, plus the superstep timeline.
  /// Reset at the start of every Run*; drivers that want whole-process
  /// totals accumulate with ExecutionProfile::Merge. The integer work
  /// counters are bit-identical across thread counts (enforced by
  /// parallel_determinism_test); wall/cpu fields are measured time.
  const gsa::ExecutionProfile& last_profile() const { return profile_; }
  const EngineOptions& options() const { return options_; }
  EngineOptions* mutable_options() { return &options_; }

  /// Per-machine stats of the last run (empty unless num_partitions > 1).
  const std::vector<MachineStats>& machine_stats() const {
    return machine_stats_;
  }
  /// Distributed-time model: max over machines of (measured time +
  /// shuffle volume / bandwidth). Meaningful when num_partitions > 1.
  double SimulatedDistributedSeconds() const;

  // ---- correctness observability ---------------------------------------
  /// Order-independent 64-bit digest of the audited attribute columns of
  /// the current state (common/digest.h). Bit-identical across thread
  /// counts; for integer-valued programs also across partition counts
  /// (floating-point SUM order differs between partitionings).
  /// `per_attr`, when non-null, receives (attribute name, column digest)
  /// pairs in program-attribute order.
  uint64_t ComputeStateDigest(
      std::vector<std::pair<std::string, uint64_t>>* per_attr =
          nullptr) const;
  /// The audit/digest domain: the program's result attributes — non-accm,
  /// non-virtual, minus the activation flag (activation schedules work;
  /// it is not part of the query answer and legitimately differs between
  /// incremental and one-shot execution under fixed_supersteps).
  std::vector<int> AuditedAttrs() const;
  /// Read access to the current attribute state (audit column diffs).
  const ColumnSet& columns() const { return cur_cols_; }
  /// Provenance report for `v`: current audited values plus the
  /// derivation chain of contributing raw edge mutations. Empty string
  /// unless EngineOptions::lineage is set.
  std::string ExplainLineage(VertexId v) const;
  const LineageTracker* lineage() const { return lineage_.get(); }

 private:
  friend class EngineTestPeer;
  // ---- shared helpers -------------------------------------------------
  void FillDegreeColumns(ColumnSet* cols, Timestamp t);
  void RunInitialize(ColumnSet* cols,
                     std::vector<std::vector<double>>* globals, Timestamp t);
  void ResetAccumulators(ColumnSet* cols);
  std::vector<VertexId> ActiveList(const ColumnSet& cols) const;
  void InitGlobals(std::vector<std::vector<double>>* globals);

  /// Applies one emission occurrence (value evaluated against
  /// `eval_cols`/`eval_globals`) onto the *current* accumulator state,
  /// implementing incremental Accumulate (§5.4): Abelian-group inverse on
  /// deletions, support counting / recompute marking for monoids.
  void ApplyEmission(const Emission& emission, const VertexId* row,
                     int row_len, int mult, const ColumnSet& eval_cols,
                     const std::vector<std::vector<double>>& eval_globals,
                     Timestamp t);

  /// The accumulate half of ApplyEmission: applies an already-evaluated
  /// value (expanded to `emission.width` doubles) onto the current
  /// accumulator state. The parallel path evaluates values on worker
  /// threads and replays them through this in sequential emission order,
  /// so floating-point accumulation order is bit-identical to threads=1.
  void ApplyEmissionValue(const Emission& emission, VertexId target,
                          const double* values, int mult);

  // ---- walk-job execution ----------------------------------------------
  /// One enumeration request of a superstep: a start set walked over a
  /// fixed stream assignment with emissions applied against one snapshot's
  /// evaluation state. Supersteps queue jobs and run them as a batch so
  /// the parallel path can shard all of them at once.
  struct WalkJob {
    std::vector<VertexId> starts;
    std::vector<LevelStream> streams;
    std::vector<const std::vector<uint8_t>*> level_allow;
    int max_depth = 0;
    /// Emissions below this depth are owned by another sub-query (SWS).
    int min_emit_depth = 0;
    /// −1 retracts (q_vs pass A); +1 asserts.
    int mult_sign = 1;
    /// Restrict to monoid emissions onto marked targets (recompute jobs).
    bool monoid_only = false;
    /// Delta-stream level of a q_es_p sub-query (depth at which the walk
    /// crosses ΔE); -1 for non-delta jobs. Lineage tagging only.
    int delta_level = -1;
    const std::vector<std::vector<uint8_t>>* target_marks = nullptr;
    const ColumnSet* eval_cols = nullptr;
    const std::vector<std::vector<double>>* eval_globals = nullptr;
    /// Snapshot whose |E| feeds the eval context and ApplyEmission.
    Timestamp eval_t = 0;
    Timestamp current_t = 0;
    Timestamp previous_t = 0;
  };

  /// Runs a batch of jobs: sequentially (exactly the pre-parallel code
  /// path, including the distributed simulation) or sharded over the
  /// thread pool with deterministic replay (see ARCHITECTURE.md).
  Status RunWalkJobs(const std::vector<WalkJob>& jobs);
  Status RunWalkJobsSequential(const std::vector<WalkJob>& jobs);
  Status RunWalkJobsParallel(const std::vector<WalkJob>& jobs,
                             size_t num_tasks);
  WalkSink MakeApplySink(const WalkJob& job);
  /// True when no traverse-level expression (level predicate, emission
  /// guard or value) reads accumulator state — the condition under which
  /// walk evaluation commutes with emission application.
  static bool ProgramParallelSafe(const CompiledProgram& program);
  /// Fills the thread-scaling fields of stats_ from the pool's cumulative
  /// counters (deltas against the given run-start baselines).
  void FillThreadStats(uint64_t steals0, uint64_t busy0, uint64_t crit0);

  // ---- EXPLAIN ANALYZE recording ---------------------------------------
  /// Re-resolves the cached per-operator counter cells (map-node addresses
  /// in profile_ are stable, so this runs once in the constructor).
  void CacheProfileCells();
  /// Start-filter (σ_active) attribution: `in` candidates inspected, `out`
  /// kept as walk starts.
  void RecordStartFilter(uint64_t in, uint64_t out);
  /// Folds the enumerator's per-level counter deltas (against the given
  /// run-start baselines) into the per-operator profile: level i →
  /// LevelSpec::op, plus the Walk roll-up and the start-stream output.
  void FoldWalkCounters(const std::vector<WalkEnumerator::LevelCounts>& base,
                        uint64_t starts0);
  /// Appends one superstep-timeline row; work fields are deltas against
  /// the given superstep-start baselines.
  void RecordSuperstep(Superstep s, bool incremental,
                       uint64_t active_vertices, uint64_t frontier,
                       uint64_t emissions0, uint64_t windows0,
                       uint64_t edges0, uint64_t wall0_nanos,
                       uint64_t cpu0_nanos,
                       const std::vector<uint64_t>& shuffle0);
  /// Per-partition network_bytes snapshot (empty when unpartitioned).
  std::vector<uint64_t> ShuffleSnapshot() const;

  // ---- live telemetry ---------------------------------------------------
  /// Per-machine seconds at superstep start (empty when unpartitioned) —
  /// the baseline for the superstep's barrier-wait model.
  std::vector<double> MachineSecondsSnapshot() const;
  /// End-of-superstep telemetry: folds the barrier-wait model into
  /// machine_stats_, publishes per-partition progress to GlobalLiveStatus,
  /// and refreshes the partition skew and memory gauges in the store's
  /// registry. Observation-only — no work counter or accumulator moves.
  void PublishSuperstepTelemetry(const std::vector<double>& seconds0);
  /// Refreshes the mem.accumulator_columns byte gauge from the resident
  /// column sets.
  void PublishColumnMemory();

  void MarkRecompute(int attr, VertexId v);
  void UnmarkRecompute(int attr, VertexId v);
  void ClearRecomputeState();

  /// End-of-run digest: fills RunStats::state_digest and mirrors it into
  /// the metrics registry and GlobalLiveStatus. Observation-only.
  void PublishStateDigest(Timestamp t);

  /// Runs Update for every touched vertex of `cols` in place (clears all
  /// activations first; Update re-activates).
  void RunUpdatePhase(ColumnSet* cols,
                      std::vector<std::vector<double>>* globals, Timestamp t);

  /// Vertices where any of `attrs` differs between two column sets.
  void CollectChanged(const ColumnSet& a, const ColumnSet& b,
                      const std::vector<int>& attrs,
                      std::vector<VertexId>* out) const;

  /// Writes F(t, s) files for `attrs`: after-images of candidate vertices
  /// whose value differs from either reference (both null = keep all).
  Status WriteDeltaFiles(Timestamp t, Superstep s,
                         const std::vector<int>& attrs,
                         const std::vector<VertexId>& candidates,
                         const ColumnSet& values, const ColumnSet* reference_a,
                         const ColumnSet* reference_b);

  // ---- incremental machinery ------------------------------------------
  Status RunDeltaTraverse(Timestamp t, Superstep s,
                          const std::vector<VertexId>& changed_starts,
                          const std::vector<VertexId>& cur_active);
  Status RunAnchoredClosing(Timestamp t, int p);
  Status RunMonoidRecompute(Timestamp t, Superstep s);

  // Attribute layout: program attrs [0, num_program_attrs), then hidden
  // contribs column, then per-monoid support columns.
  int num_program_attrs() const {
    return static_cast<int>(program_->vertex_attrs.size());
  }
  bool IsMonoidScalar(int attr) const;
  bool IsAccmMonoid(int attr) const;
  const std::vector<int>& NonAccmAttrs() const;
  const std::vector<int>& AttrFileAttrs() const;
  const std::vector<int>& AccmFileAttrs() const;

  DynamicGraphStore* store_;
  const CompiledProgram* program_;
  EngineOptions options_;
  WalkEnumerator enumerator_;

  // ---- intra-machine parallelism ---------------------------------------
  bool parallel_safe_ = false;
  // Update bodies with no global assignment write disjoint per-vertex
  // cells, so the Update phase can shard over vertices directly.
  bool update_parallel_safe_ = false;
  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_threads_;  // lazily created

  std::vector<int> all_widths_;       // program + hidden columns
  int contribs_attr_ = -1;            // hidden: per-vertex contribution count
  std::vector<int> support_attr_;     // per program attr: hidden support or -1
  std::vector<int> accm_attrs_;       // program attrs that are accumulators
  mutable std::vector<int> non_accm_attrs_;
  mutable std::vector<int> attr_file_attrs_;
  mutable std::vector<int> accm_file_attrs_;

  ColumnSet cur_cols_;
  ColumnSet prev_cols_;
  std::vector<std::vector<double>> cur_globals_;
  std::vector<std::vector<double>> prev_globals_;

  // Monoid recompute tracking (per program attr; cleared per superstep).
  std::vector<std::vector<uint8_t>> monoid_marks_;
  std::vector<std::vector<VertexId>> recompute_sets_;
  // Adjacency scratch for the anchored enumeration (indexed by depth).
  std::vector<std::vector<VertexId>> adj_stack_;

  // ---- distributed simulation ------------------------------------------
  int OwnerOf(VertexId v) const {
    return static_cast<int>(v % options_.num_partitions);
  }
  /// Runs `enumerate(starts_subset)` once per machine with that machine's
  /// pool and stopwatch (identity pass-through when num_partitions == 1).
  Status PartitionedEnumerate(
      const std::vector<VertexId>& starts,
      const std::function<Status(const std::vector<VertexId>&)>& enumerate);
  void ResetMachineStats();

  std::vector<std::unique_ptr<BufferPool>> machine_pools_;
  std::vector<MachineStats> machine_stats_;
  int current_machine_ = 0;
  // Distinct (machine, target) pairs per superstep for pre-aggregated
  // shuffle accounting.
  std::unordered_set<uint64_t> remote_seen_;

  Timestamp last_run_t_ = -1;
  Superstep prev_supersteps_ = 0;
  RunStats stats_;

  // Δ-record provenance (null unless options_.lineage).
  std::unique_ptr<LineageTracker> lineage_;

  // Resident accumulator-column bytes (cur + prev column sets), mirrored
  // into mem.accumulator_columns.* of the store's registry.
  ByteGauge mem_columns_;

  // ---- EXPLAIN ANALYZE profile -----------------------------------------
  gsa::ExecutionProfile profile_;
  // Cached cells of profile_ for the hot recording paths (std::map node
  // addresses are stable; entries are created by RegisterOperators in the
  // constructor and survive ResetCounters). Null when the program has no
  // such operator.
  std::vector<gsa::OperatorCounters*> emission_map_cells_;
  std::vector<gsa::OperatorCounters*> emission_accum_cells_;
  gsa::OperatorCounters* init_cell_ = nullptr;
  gsa::OperatorCounters* update_cell_ = nullptr;
  gsa::OperatorCounters* start_filter_cell_ = nullptr;
  gsa::OperatorCounters* start_stream_cell_ = nullptr;
  gsa::OperatorCounters* walk_cell_ = nullptr;
};

}  // namespace itg

#endif  // ITG_ENGINE_ENGINE_H_
