#include "engine/walk.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace itg {

/// One loaded graph window gw_i: the adjacency lists (with multiplicities)
/// of up to `window_vertices` frontier vertices, resident in memory.
struct WalkEnumerator::AdjacencyWindow {
  // Per-vertex range into the backing arrays.
  std::unordered_map<VertexId, std::pair<uint32_t, uint32_t>> ranges;
  std::vector<VertexId> dsts;   // sorted within each range
  std::vector<int8_t> mults;

  // mem.window_cache accounting (RAII: whatever this window charged is
  // released when it goes out of scope, early error returns included).
  ByteGauge* gauge = nullptr;
  int64_t charged = 0;

  ~AdjacencyWindow() {
    if (gauge != nullptr && charged != 0) gauge->Add(-charged);
  }

  void Recharge() {
    if (gauge == nullptr) return;
    const int64_t bytes = static_cast<int64_t>(
        dsts.capacity() * sizeof(VertexId) +
        mults.capacity() * sizeof(int8_t) +
        ranges.size() *
            (sizeof(VertexId) + sizeof(std::pair<uint32_t, uint32_t>) +
             2 * sizeof(void*)));
    gauge->Add(bytes - charged);
    charged = bytes;
  }
};

Status WalkEnumerator::LoadWindow(const std::vector<VertexId>& vertices,
                                  LevelStream stream, Direction dir,
                                  Timestamp current_t, Timestamp previous_t,
                                  AdjacencyWindow* window) {
  // W-Seek: load the frontier chunk's adjacency into the window.
  TraceSpan span("seek", "walk", static_cast<int64_t>(vertices.size()));
  ++windows_loaded_;
  window->ranges.clear();
  window->dsts.clear();
  window->mults.clear();
  std::vector<VertexId> adj;
  std::vector<std::pair<VertexId, Multiplicity>> delta_adj;
  for (VertexId u : vertices) {
    uint32_t begin = static_cast<uint32_t>(window->dsts.size());
    switch (stream) {
      case LevelStream::kCurrent:
      case LevelStream::kPrevious: {
        Timestamp t =
            (stream == LevelStream::kCurrent) ? current_t : previous_t;
        ITG_RETURN_IF_ERROR(store_->GetAdjacency(pool_, u, t, dir, &adj));
        for (VertexId v : adj) {
          window->dsts.push_back(v);
          window->mults.push_back(1);
        }
        break;
      }
      case LevelStream::kDelta: {
        ITG_RETURN_IF_ERROR(
            store_->GetDeltaAdjacency(pool_, u, current_t, dir, &delta_adj));
        for (const auto& [v, m] : delta_adj) {
          window->dsts.push_back(v);
          window->mults.push_back(m);
        }
        break;
      }
    }
    window->ranges.emplace(
        u, std::make_pair(begin, static_cast<uint32_t>(window->dsts.size())));
  }
  if (window->gauge == nullptr && mem_window_.bound()) {
    window->gauge = &mem_window_;
  }
  window->Recharge();
  return Status::OK();
}

Status WalkEnumerator::Enumerate(
    const std::vector<VertexId>& starts,
    const std::vector<LevelStream>& streams, Timestamp current_t,
    Timestamp previous_t,
    const std::vector<const std::vector<uint8_t>*>& level_allow,
    int max_depth, const WalkSink& sink) {
  ITG_CHECK_LE(max_depth, program_->walk_length());
  const size_t block = static_cast<size_t>(options_.window_vertices);
  for (size_t begin = 0; begin < starts.size(); begin += block) {
    size_t end = std::min(starts.size(), begin + block);
    std::vector<VertexId> prefixes(starts.begin() + begin,
                                   starts.begin() + end);
    std::vector<int8_t> mults(prefixes.size(), 1);
    starts_enumerated_ += prefixes.size();
    for (size_t i = 0; i < prefixes.size(); ++i) {
      sink(&prefixes[i], 0, 1);
    }
    if (max_depth >= 1) {
      ITG_RETURN_IF_ERROR(Extend(1, prefixes, mults, 1, streams, current_t,
                                 previous_t, level_allow, max_depth, sink));
    }
  }
  return Status::OK();
}

Status WalkEnumerator::Extend(
    int level, const std::vector<VertexId>& prefixes,
    const std::vector<int8_t>& mults, int prefix_len,
    const std::vector<LevelStream>& streams, Timestamp current_t,
    Timestamp previous_t,
    const std::vector<const std::vector<uint8_t>*>& level_allow,
    int max_depth, const WalkSink& sink) {
  const LevelSpec& spec = program_->traverse.levels[level - 1];
  const LevelStream stream = streams[level - 1];
  const std::vector<uint8_t>* allow = level_allow[level - 1];
  LevelCounts& lc = level_counts_[static_cast<size_t>(level - 1)];
  const size_t num_prefixes = prefixes.size() / prefix_len;
  if (num_prefixes == 0) return Status::OK();

  // Distinct frontier vertices (the W-Seek input).
  std::vector<VertexId> frontier;
  frontier.reserve(num_prefixes);
  for (size_t i = 0; i < num_prefixes; ++i) {
    frontier.push_back(prefixes[i * prefix_len + (prefix_len - 1)]);
  }
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());

  EvalContext ctx;
  ctx.columns = columns_;
  ctx.globals = globals_;
  ctx.num_vertices = num_vertices_;
  ctx.num_edges = num_edges_;
  ctx.eval_counter = &lc.evals;

  std::vector<VertexId> row(static_cast<size_t>(prefix_len) + 1);
  AdjacencyWindow window;

  const size_t chunk = static_cast<size_t>(options_.window_vertices);
  for (size_t cb = 0; cb < frontier.size(); cb += chunk) {
    size_t ce = std::min(frontier.size(), cb + chunk);
    std::vector<VertexId> chunk_vertices(frontier.begin() + cb,
                                         frontier.begin() + ce);
    Stopwatch level_timer;
    ITG_RETURN_IF_ERROR(LoadWindow(chunk_vertices, stream, spec.dir,
                                   current_t, previous_t, &window));
    ++lc.windows;

    std::vector<VertexId> next_prefixes;
    std::vector<int8_t> next_mults;
    {
    // W-Join: probe every live prefix against the loaded window (scoped so
    // the span ends before recursing into the next level).
    TraceSpan join_span("join", "walk", static_cast<int64_t>(num_prefixes));
    for (size_t i = 0; i < num_prefixes; ++i) {
      const VertexId* prefix = prefixes.data() + i * prefix_len;
      auto rit = window.ranges.find(prefix[prefix_len - 1]);
      if (rit == window.ranges.end()) continue;
      uint32_t begin = rit->second.first;
      uint32_t end = rit->second.second;
      if (begin == end) continue;
      std::copy(prefix, prefix + prefix_len, row.begin());
      ctx.row = row.data();
      ctx.row_len = prefix_len + 1;

      const VertexId* dsts = window.dsts.data();
      // Fast paths over the sorted list: lower-bound seek for
      // `next > row[gt]`, early stop for `next < row[lt]`, binary probe
      // for the closing constraint `next == row[eq]`.
      if (spec.eq_pos >= 0 && options_.eq_fast_path) {
        VertexId want = row[spec.eq_pos];
        if (spec.gt_pos >= 0 && want <= row[spec.gt_pos]) continue;
        if (spec.lt_pos >= 0 && want >= row[spec.lt_pos]) continue;
        const VertexId* lo = dsts + begin;
        const VertexId* hi = dsts + end;
        const VertexId* it = std::lower_bound(lo, hi, want);
        ++edges_scanned_;
        ++lc.edges;
        // Duplicated dsts cannot occur in base lists; delta segments may
        // repeat a dst across insert/delete of the same batch.
        for (; it != hi && *it == want; ++it) {
          uint32_t j = static_cast<uint32_t>(it - dsts);
          row[prefix_len] = want;
          if (allow != nullptr && !(*allow)[static_cast<size_t>(want)]) {
            ++walks_pruned_;
            ++lc.pruned;
            break;
          }
          bool ok = true;
          for (const lang::Expr* cond : spec.general) {
            if (!EvaluateBool(*cond, ctx)) {
              ok = false;
              break;
            }
          }
          if (!ok) continue;
          int m = mults[i] * window.mults[j];
          (m > 0 ? lc.out_pos : lc.out_neg) += 1;
          sink(row.data(), prefix_len, m);
          if (level < max_depth) {
            next_prefixes.insert(next_prefixes.end(), row.begin(),
                                 row.begin() + prefix_len + 1);
            next_mults.push_back(static_cast<int8_t>(m));
          }
        }
        continue;
      }

      uint32_t j = begin;
      if (spec.gt_pos >= 0) {
        const VertexId* lo = dsts + begin;
        const VertexId* hi = dsts + end;
        j = static_cast<uint32_t>(
            std::upper_bound(lo, hi, row[spec.gt_pos]) - dsts);
      }
      for (; j < end; ++j) {
        VertexId v = dsts[j];
        if (spec.lt_pos >= 0 && v >= row[spec.lt_pos]) break;
        ++edges_scanned_;
        ++lc.edges;
        if (allow != nullptr && !(*allow)[static_cast<size_t>(v)]) {
          ++walks_pruned_;
          ++lc.pruned;
          continue;
        }
        row[prefix_len] = v;
        if (spec.eq_pos >= 0 && v != row[spec.eq_pos]) continue;
        bool ok = true;
        for (const lang::Expr* cond : spec.general) {
          if (!EvaluateBool(*cond, ctx)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        int m = mults[i] * window.mults[j];
        (m > 0 ? lc.out_pos : lc.out_neg) += 1;
        sink(row.data(), prefix_len, m);
        if (level < max_depth) {
          next_prefixes.insert(next_prefixes.end(), row.begin(),
                               row.begin() + prefix_len + 1);
          next_mults.push_back(static_cast<int8_t>(m));
        }
      }
    }
    }
    // Exclusive time: the timer stops before recursing into deeper levels.
    lc.wall_nanos += static_cast<uint64_t>(level_timer.ElapsedNanos());
    if (level < max_depth && !next_prefixes.empty()) {
      ITG_RETURN_IF_ERROR(Extend(level + 1, next_prefixes, next_mults,
                                 prefix_len + 1, streams, current_t,
                                 previous_t, level_allow, max_depth, sink));
    }
  }
  return Status::OK();
}

}  // namespace itg
