#include "engine/stmt_interp.h"

#include <array>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "engine/eval.h"

namespace itg {

namespace {

using lang::Expr;
using lang::Stmt;
using lang::StmtPtr;

void RunBlock(const std::vector<StmtPtr>& body, StmtContext* ctx,
              const EvalContext& eval_ctx) {
  std::array<double, kMaxAttrWidth> value{};
  for (const StmtPtr& stmt : body) {
    switch (stmt->kind) {
      case Stmt::Kind::kAssign: {
        if (ctx->assigns_applied != nullptr) ++*ctx->assigns_applied;
        Evaluate(*stmt->value, eval_ctx, value.data());
        const Expr* target = stmt->target.get();
        if (target->kind == Expr::Kind::kIndex) {
          const Expr* base = target->children[0].get();
          int idx = static_cast<int>(
              EvaluateScalar(*target->children[1], eval_ctx));
          ITG_CHECK_GE(idx, 0);
          ITG_CHECK_LT(idx, base->type.width);
          if (base->kind == Expr::Kind::kAttrRef) {
            ctx->columns->Cell(base->resolved_attr, ctx->vertex)[idx] =
                value[0];
          } else {
            (*ctx->globals)[base->resolved_index][static_cast<size_t>(idx)] =
                value[0];
          }
          break;
        }
        if (target->kind == Expr::Kind::kAttrRef) {
          double* cell =
              ctx->columns->Cell(target->resolved_attr, ctx->vertex);
          const int width = target->type.width;
          const int value_width = stmt->value->type.width;
          for (int i = 0; i < width; ++i) {
            cell[i] = (value_width == 1) ? value[0] : value[i];
          }
        } else {
          std::vector<double>& g = (*ctx->globals)[target->resolved_index];
          const int value_width = stmt->value->type.width;
          for (size_t i = 0; i < g.size(); ++i) {
            g[i] = (value_width == 1) ? value[0] : value[i];
          }
        }
        break;
      }
      case Stmt::Kind::kIf: {
        if (EvaluateBool(*stmt->cond, eval_ctx)) {
          RunBlock(stmt->body, ctx, eval_ctx);
        } else {
          RunBlock(stmt->else_body, ctx, eval_ctx);
        }
        break;
      }
      case Stmt::Kind::kLet:
      case Stmt::Kind::kFor:
      case Stmt::Kind::kAccumulate:
        ITG_CHECK(false) << "statement kind not allowed here";
    }
  }
}

}  // namespace

void RunStatements(const std::vector<StmtPtr>& body, StmtContext* ctx) {
  // One relaxed add per interpreted vertex body — cheap next to the
  // statement evaluation itself, and it gives run reports the per-run
  // Update/Initialize call volume (paper §6.2 Group 3's CPU work driver).
  static Counter* const calls = GlobalRegistry().counter("interp.body_runs");
  calls->Increment();
  EvalContext eval_ctx;
  eval_ctx.columns = ctx->columns;
  eval_ctx.globals = ctx->globals;
  eval_ctx.num_vertices = ctx->num_vertices;
  eval_ctx.num_edges = ctx->num_edges;
  eval_ctx.eval_counter = ctx->eval_counter;
  VertexId row[1] = {ctx->vertex};
  eval_ctx.row = row;
  eval_ctx.row_len = 1;
  RunBlock(body, ctx, eval_ctx);
}

}  // namespace itg
